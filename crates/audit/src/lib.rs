//! # parj-audit — deep structural invariant auditing
//!
//! The engine's hot paths *assume* the physical data structures are
//! well-formed: replicas are CSR arrays with strictly increasing keys
//! and per-group values, the S-O and O-S replicas of a partition hold
//! the same triple multiset, every stored id decodes through the
//! dictionary, and snapshots round-trip byte-for-byte. Loading a
//! snapshot validates each replica *structurally* (linear cost — enough
//! to keep every later array access in bounds); the cross-structure
//! checks cost `O(n log n)` and live here, run on demand:
//!
//! * [`audit_store`] — CSR shape, ID-to-Position lookup consistency,
//!   replica-pair triple-multiset equality, id ranges against the
//!   dictionary universe, partition/predicate alignment;
//! * [`audit_dictionary`] — id↔key bijectivity, term decode validity,
//!   encode/decode byte stability;
//! * [`audit_snapshot_roundtrip`] — serialize → load → re-serialize
//!   byte equality;
//! * [`audit_plan`] — plan-shape validation against a store (the
//!   [`PhysicalPlan`] fields are public, so a plan mutated after
//!   construction can drift out of shape);
//! * [`audit_delta`] — delta-overlay invariants plus merged-view
//!   equivalence: the incremental `(CSR ∪ delta) − tombstones` view
//!   must equal, as a triple multiset, a store rebuilt from scratch
//!   out of the merged triples;
//! * [`audit_all`] — every base-store check (the engine adds
//!   [`audit_delta`] when its overlay is dirty).
//!
//! Every violation carries machine-readable coordinates (predicate,
//! replica order, position) so a corrupt store can be localized without
//! a debugger. The CLI surfaces this as `parj audit <snapshot>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parj_dict::{Dictionary, Id};
use parj_join::{Atom, PhysicalPlan};
use parj_store::{DeltaOverlay, Replica, SortOrder, StoreBuilder, TripleStore};

/// Where in the physical layout a violation was found.
///
/// Fields are filled from the outside in: a dictionary violation has
/// only `position`, a replica violation has `predicate`, `order` and
/// usually `position`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coordinates {
    /// Predicate id of the offending partition.
    pub predicate: Option<Id>,
    /// Which replica of the partition.
    pub order: Option<SortOrder>,
    /// Key position, row index, or id — whichever the check names;
    /// the message spells out which.
    pub position: Option<usize>,
}

impl std::fmt::Display for Coordinates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut wrote = false;
        if let Some(p) = self.predicate {
            write!(f, "pred {p}")?;
            wrote = true;
        }
        if let Some(o) = self.order {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "{o}")?;
            wrote = true;
        }
        if let Some(pos) = self.position {
            if wrote {
                write!(f, " ")?;
            }
            write!(f, "@{pos}")?;
            wrote = true;
        }
        if !wrote {
            write!(f, "store")?;
        }
        Ok(())
    }
}

/// One failed invariant, with coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable machine-readable check name (e.g. `csr.keys_sorted`).
    pub check: &'static str,
    /// Where the violation sits.
    pub at: Coordinates,
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.check, self.at, self.message)
    }
}

/// Outcome of an audit run: checks performed and violations found.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Number of individual invariant checks evaluated.
    pub checks_run: u64,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: AuditReport) {
        self.checks_run += other.checks_run;
        self.violations.extend(other.violations);
    }

    fn tick(&mut self) {
        self.checks_run += 1;
    }

    fn fail(&mut self, check: &'static str, at: Coordinates, message: String) {
        self.violations.push(Violation { check, at, message });
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(f, "audit clean: {} checks passed", self.checks_run)
        } else {
            writeln!(
                f,
                "audit FAILED: {} violation(s) in {} checks",
                self.violations.len(),
                self.checks_run
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

fn coords(predicate: Id, order: SortOrder, position: usize) -> Coordinates {
    Coordinates {
        predicate: Some(predicate),
        order: Some(order),
        position: Some(position),
    }
}

/// Audits one replica: CSR shape, group sortedness, id ranges against
/// the dictionary universe, and ID-to-Position lookup consistency.
fn audit_replica(
    report: &mut AuditReport,
    predicate: Id,
    order: SortOrder,
    r: &Replica,
    universe: usize,
) {
    let keys = r.keys();
    let offsets = r.offsets();
    // Decodes when the replica is block-compressed (borrow when raw), so
    // every CSR check below audits the *logical* content either way.
    let decoded = r.decoded_values();
    let values: &[Id] = &decoded;

    report.tick();
    if offsets.len() != keys.len() + 1 && !(keys.is_empty() && offsets.len() == 1) {
        report.fail(
            "csr.offsets_len",
            coords(predicate, order, offsets.len()),
            format!("offsets len {} != keys len {} + 1", offsets.len(), keys.len()),
        );
        // The CSR frame is broken; positional checks below would index
        // out of bounds, so stop at this replica.
        return;
    }
    report.tick();
    if offsets.first() != Some(&0) {
        report.fail(
            "csr.offsets_head",
            coords(predicate, order, 0),
            format!("offsets[0] = {:?}, expected 0", offsets.first()),
        );
    }
    report.tick();
    if let Some(&tail) = offsets.last() {
        if tail as usize != values.len() {
            report.fail(
                "csr.offsets_tail",
                coords(predicate, order, offsets.len() - 1),
                format!("offsets tail {tail} != values len {}", values.len()),
            );
            return;
        }
    }
    report.tick();
    for (i, w) in keys.windows(2).enumerate() {
        if w[0] >= w[1] {
            report.fail(
                "csr.keys_sorted",
                coords(predicate, order, i + 1),
                format!("keys[{}]={} !< keys[{}]={}", i, w[0], i + 1, w[1]),
            );
            break;
        }
    }
    report.tick();
    for (i, w) in offsets.windows(2).enumerate() {
        if w[0] >= w[1] {
            report.fail(
                "csr.offsets_monotone",
                coords(predicate, order, i + 1),
                format!("offsets[{}]={} !< offsets[{}]={} (empty group)", i, w[0], i + 1, w[1]),
            );
            return;
        }
    }
    report.tick();
    'groups: for g in 0..r.num_keys() {
        let group = &values[offsets[g] as usize..offsets[g + 1] as usize];
        for (j, w) in group.windows(2).enumerate() {
            if w[0] >= w[1] {
                report.fail(
                    "csr.group_sorted",
                    coords(predicate, order, g),
                    format!("group {g} values[{}]={} !< values[{}]={}", j, w[0], j + 1, w[1]),
                );
                break 'groups;
            }
        }
    }

    // Block codec integrity: on a compressed replica, every packed
    // group must decode to exactly the raw group and answer membership
    // probes for its own boundary values (first, last, block edges).
    if r.is_compressed() {
        report.tick();
        'packed: for g in 0..r.num_keys() {
            let expect = &values[offsets[g] as usize..offsets[g + 1] as usize];
            let group = r.group_at(g);
            if group.len() != expect.len()
                || group.iter().zip(expect.iter()).any(|(a, &b)| a != b)
            {
                report.fail(
                    "codec.block_roundtrip",
                    coords(predicate, order, g),
                    format!("compressed group {g} decodes differently from raw"),
                );
                break 'packed;
            }
            let m = expect.len();
            for &probe_at in &[0, m / 2, m.saturating_sub(1), parj_store::BLOCK_LEN.min(m) - 1] {
                let v = expect[probe_at];
                if !group.contains(v) {
                    report.fail(
                        "codec.block_probe",
                        coords(predicate, order, g),
                        format!("compressed group {g} misses its own value {v}"),
                    );
                    break 'packed;
                }
            }
        }
    }

    // Id ranges: keys are sorted so the last bounds them all; values
    // need a full scan (group sortedness only bounds within a group).
    report.tick();
    if let Some(&k) = keys.last() {
        if k as usize >= universe {
            report.fail(
                "ids.key_range",
                coords(predicate, order, keys.len() - 1),
                format!("key {k} outside dictionary universe {universe}"),
            );
        }
    }
    report.tick();
    if let Some((row, &v)) = values
        .iter()
        .enumerate()
        .find(|&(_, &v)| v as usize >= universe)
    {
        report.fail(
            "ids.value_range",
            coords(predicate, order, row),
            format!("value {v} at row {row} outside dictionary universe {universe}"),
        );
    }

    // ID-to-Position: every key must look up to its own position, and
    // a sample of absent ids must miss.
    if let Some(idx) = r.idpos() {
        report.tick();
        for (pos, &k) in keys.iter().enumerate() {
            if idx.lookup(k) != Some(pos) {
                report.fail(
                    "idpos.lookup",
                    coords(predicate, order, pos),
                    format!("idpos lookup({k}) = {:?}, expected Some({pos})", idx.lookup(k)),
                );
                break;
            }
        }
    }
}

/// Audits every partition of a store plus store-level alignment:
/// partitions indexed by predicate id, the partition count matching the
/// dictionary, per-partition SO/OS multiset agreement, and the cached
/// triple count.
pub fn audit_store(store: &TripleStore) -> AuditReport {
    let mut report = AuditReport::default();
    let universe = store.dict().num_resources();

    report.tick();
    if store.num_predicates() != store.dict().num_predicates() {
        report.fail(
            "store.partition_count",
            Coordinates::default(),
            format!(
                "{} partitions but {} dictionary predicates",
                store.num_predicates(),
                store.dict().num_predicates()
            ),
        );
    }

    let mut counted = 0usize;
    for (idx, part) in store.partitions().iter().enumerate() {
        report.tick();
        if part.predicate() as usize != idx {
            report.fail(
                "store.partition_alignment",
                Coordinates {
                    predicate: Some(part.predicate()),
                    order: None,
                    position: Some(idx),
                },
                format!("partition {idx} stores predicate {}", part.predicate()),
            );
        }
        let pred = part.predicate();
        let so = part.replica(SortOrder::SO);
        let os = part.replica(SortOrder::OS);
        audit_replica(&mut report, pred, SortOrder::SO, so, universe);
        audit_replica(&mut report, pred, SortOrder::OS, os, universe);

        // Replica-pair agreement: same cardinality, same triple multiset.
        report.tick();
        if so.num_triples() != os.num_triples() {
            report.fail(
                "pair.cardinality",
                Coordinates {
                    predicate: Some(pred),
                    order: None,
                    position: None,
                },
                format!("SO has {} triples, OS has {}", so.num_triples(), os.num_triples()),
            );
        } else {
            report.tick();
            let mut from_so: Vec<(Id, Id)> = so.iter_pairs().collect();
            let mut from_os: Vec<(Id, Id)> = os.iter_pairs().map(|(o, s)| (s, o)).collect();
            from_so.sort_unstable();
            from_os.sort_unstable();
            if let Some(row) = (0..from_so.len()).find(|&i| from_so[i] != from_os[i]) {
                report.fail(
                    "pair.multiset",
                    Coordinates {
                        predicate: Some(pred),
                        order: None,
                        position: Some(row),
                    },
                    format!(
                        "replicas disagree at sorted row {row}: SO has {:?}, OS has {:?}",
                        from_so[row], from_os[row]
                    ),
                );
            }
        }
        counted += part.num_triples();
    }

    report.tick();
    if counted != store.num_triples() {
        report.fail(
            "store.triple_count",
            Coordinates::default(),
            format!("store reports {} triples, partitions hold {counted}", store.num_triples()),
        );
    }
    report
}

/// Audits a dictionary: dense id coverage, id↔key bijectivity, term
/// decode validity, and encode/decode byte stability.
pub fn audit_dictionary(dict: &Dictionary) -> AuditReport {
    let mut report = AuditReport::default();

    // Resources: every id decodes, and its key maps back to the id.
    report.tick();
    for (id, term) in dict.resources() {
        match dict.resource_id(&term) {
            Some(back) if back == id => {}
            other => {
                report.fail(
                    "dict.resource_bijective",
                    Coordinates {
                        position: Some(id as usize),
                        ..Coordinates::default()
                    },
                    format!("resource id {id} decodes to {term:?} but maps back to {other:?}"),
                );
                break;
            }
        }
    }
    report.tick();
    if let Some(id) = (0..dict.num_resources() as Id).find(|&id| dict.decode_resource(id).is_err())
    {
        report.fail(
            "dict.resource_decodes",
            Coordinates {
                position: Some(id as usize),
                ..Coordinates::default()
            },
            format!("resource id {id} fails to decode: {:?}", dict.decode_resource(id).err()),
        );
    }

    // Predicates: same two checks on the second namespace.
    report.tick();
    for (id, term) in dict.predicates() {
        match dict.predicate_id(&term) {
            Some(back) if back == id => {}
            other => {
                report.fail(
                    "dict.predicate_bijective",
                    Coordinates {
                        position: Some(id as usize),
                        ..Coordinates::default()
                    },
                    format!("predicate id {id} decodes to {term:?} but maps back to {other:?}"),
                );
                break;
            }
        }
    }
    report.tick();
    if let Some(id) = (0..dict.num_predicates() as Id).find(|&id| dict.decode_predicate(id).is_err())
    {
        report.fail(
            "dict.predicate_decodes",
            Coordinates {
                position: Some(id as usize),
                ..Coordinates::default()
            },
            format!("predicate id {id} fails to decode: {:?}", dict.decode_predicate(id).err()),
        );
    }

    // Byte stability: encode → decode → encode is the identity on
    // bytes (snapshots depend on this for deterministic output).
    report.tick();
    let mut first = Vec::new();
    dict.encode_into(&mut first);
    match Dictionary::decode_from(&mut first.as_slice()) {
        Ok(back) => {
            let mut second = Vec::new();
            back.encode_into(&mut second);
            if first != second {
                report.fail(
                    "dict.byte_stable",
                    Coordinates::default(),
                    format!(
                        "re-encoded dictionary differs: {} vs {} bytes",
                        first.len(),
                        second.len()
                    ),
                );
            }
        }
        Err(e) => {
            report.fail(
                "dict.byte_stable",
                Coordinates::default(),
                format!("dictionary does not decode from its own encoding: {e}"),
            );
        }
    }
    report
}

/// Audits snapshot round-trip stability: serialize → load → serialize
/// must reproduce the bytes exactly.
pub fn audit_snapshot_roundtrip(store: &TripleStore) -> AuditReport {
    let mut report = AuditReport::default();
    report.tick();
    let first = store.to_snapshot_bytes();
    match TripleStore::from_snapshot_bytes(&first) {
        Ok(back) => {
            let second = back.to_snapshot_bytes();
            if first != second {
                let at = first
                    .iter()
                    .zip(second.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| first.len().min(second.len()));
                report.fail(
                    "snapshot.byte_stable",
                    Coordinates {
                        position: Some(at),
                        ..Coordinates::default()
                    },
                    format!(
                        "re-serialized snapshot diverges at byte {at} ({} vs {} bytes)",
                        first.len(),
                        second.len()
                    ),
                );
            }
        }
        Err(e) => {
            report.fail(
                "snapshot.loads",
                Coordinates::default(),
                format!("store does not load from its own snapshot: {e}"),
            );
        }
    }
    report
}

/// Audits a physical plan's shape against a store. [`PhysicalPlan`]
/// validates on construction, but its fields are public — a plan
/// assembled or mutated by hand can reference missing predicates,
/// out-of-range variables, or probe keys no earlier step binds.
pub fn audit_plan(plan: &PhysicalPlan, store: &TripleStore) -> AuditReport {
    let mut report = AuditReport::default();
    report.tick();
    if plan.steps.is_empty() {
        report.fail(
            "plan.nonempty",
            Coordinates::default(),
            "plan has no steps".to_string(),
        );
        return report;
    }
    let universe = store.dict().num_resources();
    let mut bound = vec![false; plan.num_vars];
    for (i, step) in plan.steps.iter().enumerate() {
        report.tick();
        if store.partition(step.predicate).is_none() {
            report.fail(
                "plan.predicate_exists",
                Coordinates {
                    predicate: Some(step.predicate),
                    order: Some(step.order),
                    position: Some(i),
                },
                format!("step {i} names predicate {} with no partition", step.predicate),
            );
        }
        for (which, atom) in [("key", step.key), ("value", step.value)] {
            report.tick();
            match atom {
                Atom::Var(v) => {
                    if v as usize >= plan.num_vars {
                        report.fail(
                            "plan.var_range",
                            Coordinates {
                                predicate: Some(step.predicate),
                                order: Some(step.order),
                                position: Some(i),
                            },
                            format!("step {i} {which} ?{v} >= num_vars {}", plan.num_vars),
                        );
                    } else if which == "key" && i > 0 && !bound[v as usize] {
                        report.fail(
                            "plan.key_bound",
                            Coordinates {
                                predicate: Some(step.predicate),
                                order: Some(step.order),
                                position: Some(i),
                            },
                            format!("step {i} probes unbound ?{v}"),
                        );
                    }
                }
                Atom::Const(c) => {
                    if c as usize >= universe {
                        report.fail(
                            "plan.const_range",
                            Coordinates {
                                predicate: Some(step.predicate),
                                order: Some(step.order),
                                position: Some(i),
                            },
                            format!("step {i} {which} constant {c} outside universe {universe}"),
                        );
                    }
                }
            }
        }
        for atom in [step.key, step.value] {
            if let Atom::Var(v) = atom {
                if (v as usize) < plan.num_vars {
                    bound[v as usize] = true;
                }
            }
        }
    }
    for &v in &plan.projection {
        report.tick();
        if v as usize >= plan.num_vars || !bound[v as usize] {
            report.fail(
                "plan.projection_bound",
                Coordinates {
                    position: Some(v as usize),
                    ..Coordinates::default()
                },
                format!("projection ?{v} is out of range or never bound"),
            );
        }
    }
    report
}

/// Audits a delta overlay against its base store.
///
/// Two layers of checks:
///
/// 1. **Overlay invariants** (`delta.invariants`): every resident run
///    is a well-formed partition, `add` runs are disjoint from the
///    effective base, tombstones are subsets of it, and the cached net
///    triple count is consistent — delegated to
///    [`DeltaOverlay::check_invariants`].
/// 2. **Merged-view equivalence**: the incremental
///    `(CSR ∪ delta) − tombstones` view must equal, predicate by
///    predicate and pair by pair, a store **rebuilt from scratch** out
///    of the merged triples (through the folded dictionary). This is
///    the oracle the whole incremental design answers to: probing the
///    base plus overlay must be indistinguishable from having rebuilt.
///    Any
///    mismatch carries [`Coordinates`] naming the predicate and the
///    first diverging sorted row.
pub fn audit_delta(base: &TripleStore, overlay: &DeltaOverlay) -> AuditReport {
    let mut report = AuditReport::default();

    report.tick();
    if let Err(e) = overlay.check_invariants(base) {
        report.fail("delta.invariants", Coordinates::default(), e);
        // With broken runs the merged iteration below is meaningless.
        return report;
    }

    // From-scratch oracle: fold the dictionary delta, re-add every
    // merged triple to a fresh builder, and build with the base's
    // options so replica shapes are comparable.
    let mut b = StoreBuilder::new();
    {
        let mut folded = base.dict().clone();
        overlay.dict().fold_into(&mut folded);
        *b.dict_mut() = folded;
    }
    for t in overlay.iter_merged_triples(base) {
        b.add_encoded(t);
    }
    let rebuilt = b.build_with(base.options());

    report.tick();
    let merged_preds = overlay.num_predicates(base);
    if rebuilt.num_predicates() != merged_preds {
        report.fail(
            "delta.predicate_count",
            Coordinates::default(),
            format!(
                "merged view spans {merged_preds} predicates, rebuild has {}",
                rebuilt.num_predicates()
            ),
        );
    }

    report.tick();
    if overlay.visible_triples(base) != rebuilt.num_triples() {
        report.fail(
            "delta.visible_count",
            Coordinates::default(),
            format!(
                "overlay reports {} visible triples, rebuild holds {}",
                overlay.visible_triples(base),
                rebuilt.num_triples()
            ),
        );
    }

    for pred in 0..merged_preds as Id {
        let merged = overlay.merged_so_pairs(base, pred);

        // The merged iteration must itself be strictly sorted — the
        // executor's two-pointer probes rely on it, and it is what
        // makes "multiset equal" checkable as "pairwise equal".
        report.tick();
        if let Some(i) = merged.windows(2).position(|w| w[0] >= w[1]) {
            report.fail(
                "delta.merged_sorted",
                coords(pred, SortOrder::SO, i + 1),
                format!(
                    "merged pairs not strictly increasing: {:?} !< {:?}",
                    merged[i],
                    merged[i + 1]
                ),
            );
            continue;
        }

        let from_rebuild: Vec<(Id, Id)> = rebuilt
            .replica(pred, SortOrder::SO)
            .map(|r| r.iter_pairs().collect())
            .unwrap_or_default();
        report.tick();
        if merged.len() != from_rebuild.len() {
            report.fail(
                "delta.merged_cardinality",
                Coordinates {
                    predicate: Some(pred),
                    order: None,
                    position: None,
                },
                format!(
                    "merged view has {} pairs, rebuild has {}",
                    merged.len(),
                    from_rebuild.len()
                ),
            );
        } else if let Some(row) = (0..merged.len()).find(|&i| merged[i] != from_rebuild[i]) {
            report.fail(
                "delta.merged_multiset",
                coords(pred, SortOrder::SO, row),
                format!(
                    "merged view and rebuild disagree at sorted row {row}: {:?} vs {:?}",
                    merged[row], from_rebuild[row]
                ),
            );
        }
    }

    report
}

/// Runs every audit — store structure, dictionary, snapshot round-trip.
pub fn audit_all(store: &TripleStore) -> AuditReport {
    let mut report = audit_store(store);
    report.merge(audit_dictionary(store.dict()));
    report.merge(audit_snapshot_roundtrip(store));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_join::PlanStep;
    use parj_store::StoreBuilder;

    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..40u32 {
            b.add_term_triple(
                &Term::iri(format!("http://e/s{}", i % 7)),
                &Term::iri(format!("http://e/p{}", i % 3)),
                &Term::iri(format!("http://e/o{}", i % 11)),
            );
        }
        b.build()
    }

    #[test]
    fn clean_store_audits_clean() {
        let s = store();
        let report = audit_all(&s);
        assert!(report.is_clean(), "{report}");
        assert!(report.checks_run > 10);
        assert!(report.to_string().contains("audit clean"));
    }

    #[test]
    fn empty_store_audits_clean() {
        let s = StoreBuilder::new().build();
        assert!(audit_all(&s).is_clean());
    }

    #[test]
    fn compressed_store_audits_clean_and_checks_codec() {
        let mut b = StoreBuilder::new();
        for i in 0..3000u32 {
            b.add_term_triple(
                &Term::iri(format!("http://e/s{}", i % 4)),
                &Term::iri("http://e/p"),
                &Term::iri(format!("http://e/o{i}")),
            );
        }
        let mut s = b.build();
        assert!(s.compress_values(32) > 0);
        let report = audit_all(&s);
        assert!(report.is_clean(), "{report}");

        // Corrupt one byte inside a packed block tail via a forged
        // snapshot round-trip… snapshots decode first, so instead prove
        // the codec check runs by counting: a compressed store audits
        // strictly more checks than the same store raw.
        let mut b = StoreBuilder::new();
        for i in 0..3000u32 {
            b.add_term_triple(
                &Term::iri(format!("http://e/s{}", i % 4)),
                &Term::iri("http://e/p"),
                &Term::iri(format!("http://e/o{i}")),
            );
        }
        let raw = b.build();
        assert!(audit_store(&s).checks_run > audit_store(&raw).checks_run);
    }

    #[test]
    fn out_of_universe_value_is_located() {
        // Forge a snapshot whose last OS value is a huge id: every
        // per-replica invariant still holds (the group stays sorted),
        // so the loader accepts it — the deep audit must localize it.
        let s = store();
        let mut bytes = s.to_snapshot_bytes();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let corrupt = TripleStore::from_snapshot_bytes(&bytes).expect("loads structurally");
        let report = audit_store(&corrupt);
        assert!(!report.is_clean());
        let checks: Vec<&str> = report.violations.iter().map(|v| v.check).collect();
        assert!(checks.contains(&"ids.value_range"), "{report}");
        assert!(checks.contains(&"pair.multiset"), "{report}");
        let v = report
            .violations
            .iter()
            .find(|v| v.check == "ids.value_range")
            .unwrap();
        let last_pred = (corrupt.num_predicates() - 1) as Id;
        assert_eq!(v.at.predicate, Some(last_pred));
        assert_eq!(v.at.order, Some(SortOrder::OS));
        assert!(v.at.position.is_some());
    }

    #[test]
    fn dictionary_audit_is_clean_and_counts() {
        let s = store();
        let report = audit_dictionary(s.dict());
        assert!(report.is_clean(), "{report}");
        assert!(report.checks_run >= 5);
    }

    #[test]
    fn plan_audit_flags_drifted_plans() {
        let s = store();
        let mut plan = PhysicalPlan::new(
            vec![PlanStep {
                predicate: 0,
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            }],
            2,
            vec![0, 1],
        )
        .unwrap();
        assert!(audit_plan(&plan, &s).is_clean());

        // Drift the public fields out of shape.
        plan.steps.push(PlanStep {
            predicate: 999,
            order: SortOrder::OS,
            key: Atom::Var(7),
            value: Atom::Const(1_000_000),
        });
        let report = audit_plan(&plan, &s);
        let checks: Vec<&str> = report.violations.iter().map(|v| v.check).collect();
        assert!(checks.contains(&"plan.predicate_exists"), "{report}");
        assert!(checks.contains(&"plan.var_range"), "{report}");
        assert!(checks.contains(&"plan.const_range"), "{report}");
    }

    #[test]
    fn clean_delta_audits_clean() {
        let s = store();
        let mut ov = DeltaOverlay::new(&s);
        // Tombstone one stored pair and insert one fresh pair on the
        // first predicate.
        let (ds, dobj) = s
            .replica(0, SortOrder::SO)
            .unwrap()
            .iter_pairs()
            .next()
            .unwrap();
        let universe = s.dict().num_resources() as Id;
        let part = s.partition(0).unwrap();
        let fresh = (0..universe)
            .flat_map(|a| (0..universe).map(move |b| (a, b)))
            .find(|&(a, b)| !part.contains(a, b))
            .unwrap();
        ov.apply_pred(&s, 0, &[fresh], &[(ds, dobj)]);
        let report = audit_delta(&s, &ov);
        assert!(report.is_clean(), "{report}");
        assert!(report.checks_run >= 3);

        // Compaction folds the runs into a replacement partition; the
        // merged view must still match the from-scratch rebuild.
        ov.compact_pred(&s, 0);
        let report = audit_delta(&s, &ov);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn empty_overlay_audits_clean() {
        let s = store();
        let ov = DeltaOverlay::new(&s);
        assert!(audit_delta(&s, &ov).is_clean());
    }

    #[test]
    fn overlay_against_the_wrong_base_is_flagged() {
        let s = store();
        let mut ov = DeltaOverlay::new(&s);
        let (ds, dobj) = s
            .replica(0, SortOrder::SO)
            .unwrap()
            .iter_pairs()
            .next()
            .unwrap();
        ov.apply_pred(&s, 0, &[], &[(ds, dobj)]);
        assert!(audit_delta(&s, &ov).is_clean());

        // Audit the same overlay against a base that never held the
        // tombstoned triple: the subset invariant must localize it.
        let other = StoreBuilder::new().build();
        let report = audit_delta(&other, &ov);
        assert!(!report.is_clean());
        assert_eq!(report.violations[0].check, "delta.invariants");
        assert!(report.violations[0].message.contains("tombstone"), "{report}");
    }

    #[test]
    fn report_merge_accumulates() {
        let s = store();
        let mut a = audit_store(&s);
        let b = audit_dictionary(s.dict());
        let total = a.checks_run + b.checks_run;
        a.merge(b);
        assert_eq!(a.checks_run, total);
        assert!(a.is_clean());
    }
}
