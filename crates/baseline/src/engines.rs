//! The baseline execution engines: hash join, sort-merge join, nested
//! loops — all with full intermediate materialization, in contrast to
//! PARJ's pipelined probes.

use std::collections::HashMap;

use parj_dict::Id;
use parj_join::{Atom, VarId};
use parj_optimizer::Pattern;
use parj_store::TripleStore;

use crate::relation::Relation;

/// Common interface of the competitor stand-ins.
pub trait BaselineEngine {
    /// Engine name for reports.
    fn name(&self) -> &'static str;

    /// Evaluates the ordered pattern list and returns all solution rows
    /// over the relation's variables.
    fn run(&self, store: &TripleStore, patterns: &[Pattern]) -> Relation;

    /// Solution count (SPARQL multiset semantics, no projection).
    fn run_count(&self, store: &TripleStore, patterns: &[Pattern]) -> u64 {
        let rel = self.run(store, patterns);
        if rel.vars.is_empty() {
            // All patterns fully constant: 1 if non-contradictory.
            u64::from(!rel.data.is_empty())
        } else {
            rel.len() as u64
        }
    }
}

/// Shared join columns between two relations: `(left_col, right_col)`.
fn shared_cols(left: &Relation, right: &Relation) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (rc, &rv) in right.vars.iter().enumerate() {
        if let Some(lc) = left.col_of(rv) {
            out.push((lc, rc));
        }
    }
    out
}

/// Output schema of a natural join: left vars then right-only vars; the
/// second element lists right columns to append.
fn output_schema(left: &Relation, right: &Relation) -> (Vec<VarId>, Vec<usize>) {
    let mut vars = left.vars.clone();
    let mut extra = Vec::new();
    for (rc, &rv) in right.vars.iter().enumerate() {
        if left.col_of(rv).is_none() {
            vars.push(rv);
            extra.push(rc);
        }
    }
    (vars, extra)
}

/// Fully-constant patterns act as boolean filters; evaluate them first.
/// Returns `false` if any fails (empty result).
fn apply_constant_patterns(store: &TripleStore, patterns: &[Pattern]) -> (Vec<Pattern>, bool) {
    let mut rest = Vec::with_capacity(patterns.len());
    for p in patterns {
        if matches!((p.s, p.o), (Atom::Const(_), Atom::Const(_))) {
            if !Relation::exists(store, p) {
                return (rest, false);
            }
        } else {
            rest.push(*p);
        }
    }
    (rest, true)
}

/// Builds a hash key from join columns.
#[inline]
fn key_of(row: &[Id], cols: &[usize]) -> Vec<Id> {
    cols.iter().map(|&c| row[c]).collect()
}

/// TriAD stand-in: every join materializes both inputs and builds a hash
/// table on the smaller one. No order is exploited; every intermediate
/// result lives in memory at once (this is why the paper's TriAD runs
/// out of memory on WatDiv IL-3-8).
///
/// The probe phase optionally runs on `threads` workers (chunked over
/// the probe side), modelling TriAD's parallel workers; the build phase
/// stays serial, modelling its per-join synchronization barrier.
#[derive(Debug, Clone, Copy)]
pub struct HashJoinEngine {
    /// Probe-phase worker threads (1 = serial).
    pub threads: usize,
}

impl Default for HashJoinEngine {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

impl HashJoinEngine {
    /// A hash-join engine probing with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl BaselineEngine for HashJoinEngine {
    fn name(&self) -> &'static str {
        "hash-join"
    }

    fn run(&self, store: &TripleStore, patterns: &[Pattern]) -> Relation {
        let (rest, ok) = apply_constant_patterns(store, patterns);
        if !ok {
            return Relation::default();
        }
        if rest.is_empty() {
            // Purely constant query that held: encode "one empty row".
            return Relation {
                vars: Vec::new(),
                data: vec![0],
            };
        }
        let mut acc = Relation::scan_pattern(store, &rest[0]);
        for pat in &rest[1..] {
            let right = Relation::scan_pattern(store, pat);
            acc = hash_join_n(&acc, &right, self.threads);
            if acc.is_empty() {
                return acc;
            }
        }
        acc
    }
}

fn hash_join(left: &Relation, right: &Relation) -> Relation {
    hash_join_n(left, right, 1)
}

/// Hash join with a parallel probe phase: the build side is hashed
/// serially (TriAD's synchronization barrier), then `threads` workers
/// probe disjoint chunks and their outputs are concatenated.
fn hash_join_n(left: &Relation, right: &Relation, threads: usize) -> Relation {
    let joins = shared_cols(left, right);
    let (vars, extra) = output_schema(left, right);
    let mut out = Relation {
        vars,
        data: Vec::new(),
    };
    if joins.is_empty() {
        // Cross product.
        for li in 0..left.len() {
            for ri in 0..right.len() {
                out.data.extend_from_slice(left.row(li));
                for &rc in &extra {
                    out.data.push(right.row(ri)[rc]);
                }
            }
        }
        return out;
    }
    let lcols: Vec<usize> = joins.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = joins.iter().map(|&(_, r)| r).collect();
    // Build on the smaller input (standard practice; TriAD does the
    // same per worker). Normalize so `build` is the hashed side.
    let build_is_left = left.len() <= right.len();
    let (build, bcols, probe, pcols) = if build_is_left {
        (left, &lcols, right, &rcols)
    } else {
        (right, &rcols, left, &lcols)
    };
    let mut table: HashMap<Vec<Id>, Vec<usize>> = HashMap::new();
    for bi in 0..build.len() {
        table.entry(key_of(build.row(bi), bcols)).or_default().push(bi);
    }
    // Emits the output row for a (left-index, right-index) match.
    let emit = |li: usize, ri: usize, data: &mut Vec<Id>| {
        data.extend_from_slice(left.row(li));
        for &rc in &extra {
            data.push(right.row(ri)[rc]);
        }
    };
    let probe_chunk = |range: std::ops::Range<usize>| -> Vec<Id> {
        let mut data = Vec::new();
        for pi in range {
            if let Some(bs) = table.get(&key_of(probe.row(pi), pcols)) {
                for &bi in bs {
                    let (li, ri) = if build_is_left { (bi, pi) } else { (pi, bi) };
                    emit(li, ri, &mut data);
                }
            }
        }
        data
    };
    let n = probe.len();
    if threads <= 1 || n < 1024 {
        out.data = probe_chunk(0..n);
    } else {
        let chunk = n.div_ceil(threads);
        let parts: Vec<Vec<Id>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = (t * chunk).min(n);
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || probe_chunk(lo..hi))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("probe worker")).collect()
        });
        for part in parts {
            out.data.extend_from_slice(&part);
        }
    }
    out
}

/// RDF-3X stand-in: sort-merge joins. Each step sorts both the
/// accumulated intermediate and the pattern extension on the join
/// columns, then merges. Unlike PARJ it cannot reuse partial order
/// across steps — the sorts are the architectural cost the adaptive
/// method avoids (§2: "it exploits initial ordering ... such that it
/// completely avoids hashing or sorting during query execution").
#[derive(Debug, Clone, Copy)]
pub struct MergeJoinEngine;

impl BaselineEngine for MergeJoinEngine {
    fn name(&self) -> &'static str {
        "merge-join"
    }

    fn run(&self, store: &TripleStore, patterns: &[Pattern]) -> Relation {
        let (rest, ok) = apply_constant_patterns(store, patterns);
        if !ok {
            return Relation::default();
        }
        if rest.is_empty() {
            return Relation {
                vars: Vec::new(),
                data: vec![0],
            };
        }
        let mut acc = Relation::scan_pattern(store, &rest[0]);
        for pat in &rest[1..] {
            let right = Relation::scan_pattern(store, pat);
            acc = merge_join(acc, right);
            if acc.is_empty() {
                return acc;
            }
        }
        acc
    }
}

fn merge_join(mut left: Relation, mut right: Relation) -> Relation {
    let joins = shared_cols(&left, &right);
    if joins.is_empty() {
        return hash_join(&left, &right); // cross product path
    }
    let lcols: Vec<usize> = joins.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = joins.iter().map(|&(_, r)| r).collect();
    left.sort_by_cols(&lcols);
    right.sort_by_cols(&rcols);
    let (vars, extra) = output_schema(&left, &right);
    let mut out = Relation {
        vars,
        data: Vec::new(),
    };
    let cmp = |l: &[Id], r: &[Id]| -> std::cmp::Ordering {
        for (&lc, &rc) in lcols.iter().zip(&rcols) {
            match l[lc].cmp(&r[rc]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    };
    let (mut li, mut ri) = (0usize, 0usize);
    while li < left.len() && ri < right.len() {
        match cmp(left.row(li), right.row(ri)) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                // Find both runs of equal keys and emit their product.
                let mut le = li + 1;
                while le < left.len() && cmp(left.row(le), right.row(ri)).is_eq() {
                    le += 1;
                }
                let mut re = ri + 1;
                while re < right.len() && cmp(left.row(li), right.row(re)).is_eq() {
                    re += 1;
                }
                for l in li..le {
                    for r in ri..re {
                        out.data.extend_from_slice(left.row(l));
                        for &rc in &extra {
                            out.data.push(right.row(r)[rc]);
                        }
                    }
                }
                li = le;
                ri = re;
            }
        }
    }
    out
}

/// Quadratic nested-loops control (tests and tiny inputs only).
#[derive(Debug, Clone, Copy)]
pub struct NestedLoopEngine;

impl BaselineEngine for NestedLoopEngine {
    fn name(&self) -> &'static str {
        "nested-loop"
    }

    fn run(&self, store: &TripleStore, patterns: &[Pattern]) -> Relation {
        let (rest, ok) = apply_constant_patterns(store, patterns);
        if !ok {
            return Relation::default();
        }
        if rest.is_empty() {
            return Relation {
                vars: Vec::new(),
                data: vec![0],
            };
        }
        let mut acc = Relation::scan_pattern(store, &rest[0]);
        for pat in &rest[1..] {
            let right = Relation::scan_pattern(store, pat);
            let joins = shared_cols(&acc, &right);
            let (vars, extra) = output_schema(&acc, &right);
            let mut out = Relation {
                vars,
                data: Vec::new(),
            };
            for li in 0..acc.len() {
                let lrow = acc.row(li);
                'rows: for ri in 0..right.len() {
                    let rrow = right.row(ri);
                    for &(lc, rc) in &joins {
                        if lrow[lc] != rrow[rc] {
                            continue 'rows;
                        }
                    }
                    out.data.extend_from_slice(lrow);
                    for &rc in &extra {
                        out.data.push(rrow[rc]);
                    }
                }
            }
            acc = out;
            if acc.is_empty() {
                return acc;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_eval;
    use parj_dict::Term;
    use parj_store::StoreBuilder;

    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for (s, p, o) in [
            ("s1", "teaches", "c1"),
            ("s1", "teaches", "c2"),
            ("s2", "teaches", "c1"),
            ("s3", "teaches", "c3"),
            ("s1", "works", "u1"),
            ("s2", "works", "u2"),
            ("s3", "works", "u2"),
            ("t1", "takes", "c1"),
            ("t1", "takes", "c3"),
            ("t2", "takes", "c2"),
        ] {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        }
        b.build()
    }

    fn pid(s: &TripleStore, n: &str) -> Id {
        s.dict().predicate_id(&Term::iri(n)).unwrap()
    }

    fn rid(s: &TripleStore, n: &str) -> Id {
        s.dict().resource_id(&Term::iri(n)).unwrap()
    }

    fn engines() -> Vec<Box<dyn BaselineEngine>> {
        vec![
            Box::new(HashJoinEngine::default()),
            Box::new(MergeJoinEngine),
            Box::new(NestedLoopEngine),
        ]
    }

    fn check(store: &TripleStore, patterns: &[Pattern], num_vars: usize) {
        let expected = reference_eval(store, patterns, num_vars).len() as u64;
        for e in engines() {
            assert_eq!(
                e.run_count(store, patterns),
                expected,
                "{} disagreed with oracle",
                e.name()
            );
        }
    }

    #[test]
    fn two_way_subject_join() {
        let s = store();
        check(
            &s,
            &[
                Pattern {
                    s: Atom::Var(0),
                    p: pid(&s, "teaches"),
                    o: Atom::Var(1),
                },
                Pattern {
                    s: Atom::Var(0),
                    p: pid(&s, "works"),
                    o: Atom::Var(2),
                },
            ],
            3,
        );
    }

    #[test]
    fn object_object_join() {
        let s = store();
        check(
            &s,
            &[
                Pattern {
                    s: Atom::Var(0),
                    p: pid(&s, "teaches"),
                    o: Atom::Var(1),
                },
                Pattern {
                    s: Atom::Var(2),
                    p: pid(&s, "takes"),
                    o: Atom::Var(1),
                },
            ],
            3,
        );
    }

    #[test]
    fn constant_filter_and_chain() {
        let s = store();
        check(
            &s,
            &[
                Pattern {
                    s: Atom::Var(0),
                    p: pid(&s, "works"),
                    o: Atom::Const(rid(&s, "u2")),
                },
                Pattern {
                    s: Atom::Var(0),
                    p: pid(&s, "teaches"),
                    o: Atom::Var(1),
                },
                Pattern {
                    s: Atom::Var(2),
                    p: pid(&s, "takes"),
                    o: Atom::Var(1),
                },
            ],
            3,
        );
    }

    #[test]
    fn fully_constant_patterns() {
        let s = store();
        let present = Pattern {
            s: Atom::Const(rid(&s, "s1")),
            p: pid(&s, "works"),
            o: Atom::Const(rid(&s, "u1")),
        };
        let absent = Pattern {
            s: Atom::Const(rid(&s, "s1")),
            p: pid(&s, "works"),
            o: Atom::Const(rid(&s, "u2")),
        };
        let var_pat = Pattern {
            s: Atom::Var(0),
            p: pid(&s, "teaches"),
            o: Atom::Var(1),
        };
        for e in engines() {
            assert_eq!(e.run_count(&s, &[present]), 1, "{}", e.name());
            assert_eq!(e.run_count(&s, &[absent]), 0, "{}", e.name());
            assert_eq!(e.run_count(&s, &[present, var_pat]), 4, "{}", e.name());
            assert_eq!(e.run_count(&s, &[absent, var_pat]), 0, "{}", e.name());
        }
    }

    #[test]
    fn cross_product() {
        let s = store();
        // works(?0, u1) × takes(?1, ?2): 1 × 3 rows.
        check(
            &s,
            &[
                Pattern {
                    s: Atom::Var(0),
                    p: pid(&s, "works"),
                    o: Atom::Const(rid(&s, "u1")),
                },
                Pattern {
                    s: Atom::Var(1),
                    p: pid(&s, "takes"),
                    o: Atom::Var(2),
                },
            ],
            3,
        );
    }

    #[test]
    fn empty_result_short_circuits() {
        let s = store();
        for e in engines() {
            let rel = e.run(
                &s,
                &[
                    Pattern {
                        s: Atom::Var(0),
                        p: pid(&s, "teaches"),
                        o: Atom::Const(rid(&s, "u1")), // nobody teaches u1
                    },
                    Pattern {
                        s: Atom::Var(0),
                        p: pid(&s, "works"),
                        o: Atom::Var(1),
                    },
                ],
            );
            assert!(rel.is_empty(), "{}", e.name());
        }
    }
}
