//! # parj-baseline — baseline join engines and the reference evaluator
//!
//! The PARJ paper evaluates against RDFox, RDF-3X and TriAD — closed or
//! unmaintained systems that cannot ship inside this reproduction. What
//! the paper's comparison actually isolates is *architectural*:
//!
//! * **TriAD-style relational processing** materializes intermediate
//!   relations and joins them with hash joins (plus inter-worker
//!   rehash barriers in the distributed case);
//! * **RDF-3X-style processing** leans on sort-merge joins, paying a
//!   sort for every intermediate that is not already ordered;
//! * **PARJ** pipelines index-nested-loop probes with the adaptive
//!   binary/sequential switch, materializing nothing.
//!
//! This crate provides those competitor *architectures* over the exact
//! same [`parj_store::TripleStore`], so benchmark shapes (who wins,
//! where, by how much) reflect the paper's comparison without
//! pretending to reproduce absolute numbers of foreign systems:
//!
//! * [`HashJoinEngine`] — full materialization + hash joins (TriAD
//!   stand-in),
//! * [`MergeJoinEngine`] — full materialization + sort-merge joins
//!   (RDF-3X stand-in),
//! * [`NestedLoopEngine`] — quadratic control,
//! * [`reference_eval`] — a deliberately simple brute-force BGP matcher
//!   used as the **correctness oracle** by tests across the workspace.
//!
//! All engines consume the same ordered pattern list (callers typically
//! pass the PARJ optimizer's order) and return counts or materialized
//! rows, so differences measure execution strategy only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engines;
mod reference;
mod relation;

pub use engines::{BaselineEngine, HashJoinEngine, MergeJoinEngine, NestedLoopEngine};
pub use reference::reference_eval;
pub use relation::Relation;
