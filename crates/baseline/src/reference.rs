//! The brute-force reference evaluator — the workspace's correctness
//! oracle.
//!
//! Deliberately the simplest possible BGP matcher: try every stored
//! triple against every pattern, recursively. Quadratic and slow, but
//! its correctness is inspectable at a glance, which is the point — the
//! sophisticated engines (PARJ and the baselines) are tested against it
//! on thousands of generated cases.

use parj_dict::{EncodedTriple, Id};
use parj_join::Atom;
use parj_optimizer::Pattern;
use parj_store::TripleStore;

/// Evaluates `patterns` by exhaustive search. Returns one row per
/// solution mapping (SPARQL multiset semantics, all `num_vars` variables
/// per row; variables never bound stay 0 — callers project as needed).
pub fn reference_eval(
    store: &TripleStore,
    patterns: &[Pattern],
    num_vars: usize,
) -> Vec<Vec<Id>> {
    let triples: Vec<EncodedTriple> = store.iter_triples().collect();
    let mut results = Vec::new();
    let mut bindings: Vec<Option<Id>> = vec![None; num_vars];
    recurse(patterns, &triples, &mut bindings, &mut results);
    results
}

fn recurse(
    patterns: &[Pattern],
    triples: &[EncodedTriple],
    bindings: &mut Vec<Option<Id>>,
    results: &mut Vec<Vec<Id>>,
) {
    let Some(pat) = patterns.first() else {
        results.push(bindings.iter().map(|b| b.unwrap_or(0)).collect());
        return;
    };
    for t in triples {
        if t.p != pat.p {
            continue;
        }
        let saved = bindings.clone();
        if matches(pat.s, t.s, bindings) && matches(pat.o, t.o, bindings) {
            recurse(&patterns[1..], triples, bindings, results);
        }
        *bindings = saved;
    }
}

fn matches(atom: Atom, id: Id, bindings: &mut [Option<Id>]) -> bool {
    match atom {
        Atom::Const(c) => c == id,
        Atom::Var(v) => match bindings[v as usize] {
            Some(existing) => existing == id,
            None => {
                bindings[v as usize] = Some(id);
                true
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_store::StoreBuilder;

    #[test]
    fn simple_join() {
        let mut b = StoreBuilder::new();
        for (s, p, o) in [("a", "p", "b"), ("b", "p", "c"), ("c", "p", "a")] {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        }
        let store = b.build();
        let p = store.dict().predicate_id(&Term::iri("p")).unwrap();
        // Length-2 paths: ?x p ?y . ?y p ?z — the 3-cycle has 3.
        let rows = reference_eval(
            &store,
            &[
                Pattern {
                    s: Atom::Var(0),
                    p,
                    o: Atom::Var(1),
                },
                Pattern {
                    s: Atom::Var(1),
                    p,
                    o: Atom::Var(2),
                },
            ],
            3,
        );
        assert_eq!(rows.len(), 3);
        // Triangles: ?x p ?y . ?y p ?z . ?z p ?x — the cycle itself, 3
        // rotations.
        let rows = reference_eval(
            &store,
            &[
                Pattern {
                    s: Atom::Var(0),
                    p,
                    o: Atom::Var(1),
                },
                Pattern {
                    s: Atom::Var(1),
                    p,
                    o: Atom::Var(2),
                },
                Pattern {
                    s: Atom::Var(2),
                    p,
                    o: Atom::Var(0),
                },
            ],
            3,
        );
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn repeated_variable_consistency() {
        let mut b = StoreBuilder::new();
        for (s, o) in [("a", "a"), ("a", "b"), ("b", "b")] {
            b.add_term_triple(&Term::iri(s), &Term::iri("p"), &Term::iri(o));
        }
        let store = b.build();
        let rows = reference_eval(
            &store,
            &[Pattern {
                s: Atom::Var(0),
                p: 0,
                o: Atom::Var(0),
            }],
            1,
        );
        assert_eq!(rows.len(), 2); // a-a and b-b
    }
}
