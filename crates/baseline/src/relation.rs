//! Materialized intermediate relations for the baseline engines.

use parj_dict::Id;
use parj_join::{Atom, VarId};
use parj_optimizer::Pattern;
use parj_store::{SortOrder, TripleStore};

/// A materialized relation: a flat row-major buffer with a variable per
/// column. This is exactly what the pipelined PARJ executor *avoids*
/// building; baselines build one per join step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// Variable ids, one per column.
    pub vars: Vec<VarId>,
    /// Row-major data, `vars.len()` ids per row.
    pub data: Vec<Id>,
}

impl Relation {
    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.vars.is_empty() {
            // A zero-column relation encodes its cardinality separately;
            // engines avoid this by keeping at least one column, so an
            // empty schema means empty.
            0
        } else {
            self.data.len() / self.vars.len()
        }
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[Id] {
        let w = self.vars.len();
        &self.data[i * w..(i + 1) * w]
    }

    /// Column index of `var`, if present.
    pub fn col_of(&self, var: VarId) -> Option<usize> {
        self.vars.iter().position(|&v| v == var)
    }

    /// Materializes the full extension of one triple pattern: one row
    /// per matching triple, with columns for the pattern's variables
    /// (deduplicated if the same variable occurs twice).
    ///
    /// Constants are applied as filters during the scan; a repeated
    /// variable (`?x p ?x`) keeps a single column and filters `s == o`.
    pub fn scan_pattern(store: &TripleStore, pat: &Pattern) -> Relation {
        let mut vars: Vec<VarId> = Vec::new();
        if let Atom::Var(v) = pat.s {
            vars.push(v);
        }
        if let Atom::Var(v) = pat.o {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let mut rel = Relation {
            vars,
            data: Vec::new(),
        };
        let Some(replica) = store.replica(pat.p, SortOrder::SO) else {
            return rel;
        };
        // Constant-key fast paths keep baselines honest (no artificial
        // handicap): a constant subject/object restricts the scan.
        match (pat.s, pat.o) {
            (Atom::Const(cs), Atom::Const(co)) => {
                if replica.values_for_key(cs).binary_search(&co).is_ok() {
                    // Zero variables: encode existence as one empty row
                    // via a sentinel column-less relation; callers use
                    // `exists` on patterns like this instead.
                    rel.vars = Vec::new();
                    rel.data = Vec::new();
                }
                rel
            }
            (Atom::Const(cs), Atom::Var(_)) => {
                rel.data.extend_from_slice(replica.values_for_key(cs));
                rel
            }
            (Atom::Var(_), Atom::Const(co)) => {
                let os = store
                    .replica(pat.p, SortOrder::OS)
                    .expect("partition has both replicas");
                rel.data.extend_from_slice(os.values_for_key(co));
                rel
            }
            (Atom::Var(a), Atom::Var(b)) if a == b => {
                for (s, os) in replica.iter_groups() {
                    if os.binary_search(&s).is_ok() {
                        rel.data.push(s);
                    }
                }
                rel
            }
            (Atom::Var(_), Atom::Var(_)) => {
                for (s, o) in replica.iter_pairs() {
                    rel.data.push(s);
                    rel.data.push(o);
                }
                rel
            }
        }
    }

    /// Existence of a fully-constant pattern.
    pub fn exists(store: &TripleStore, pat: &Pattern) -> bool {
        match (pat.s, pat.o) {
            (Atom::Const(cs), Atom::Const(co)) => store
                .replica(pat.p, SortOrder::SO)
                .is_some_and(|r| r.values_for_key(cs).binary_search(&co).is_ok()),
            _ => panic!("exists() requires a fully-constant pattern"),
        }
    }

    /// Sorts rows by the given columns (for merge joins).
    pub fn sort_by_cols(&mut self, cols: &[usize]) {
        let w = self.vars.len();
        if w == 0 || self.data.is_empty() {
            return;
        }
        let mut rows: Vec<&[Id]> = self.data.chunks_exact(w).collect();
        rows.sort_by(|a, b| {
            for &c in cols {
                match a[c].cmp(&b[c]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut data = Vec::with_capacity(self.data.len());
        for r in rows {
            data.extend_from_slice(r);
        }
        self.data = data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_store::StoreBuilder;

    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for (s, p, o) in [
            ("a", "p", "x"),
            ("a", "p", "y"),
            ("b", "p", "x"),
            ("c", "q", "c"),
            ("c", "q", "d"),
        ] {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        }
        b.build()
    }

    fn rid(s: &TripleStore, n: &str) -> Id {
        s.dict().resource_id(&Term::iri(n)).unwrap()
    }

    fn pid(s: &TripleStore, n: &str) -> Id {
        s.dict().predicate_id(&Term::iri(n)).unwrap()
    }

    #[test]
    fn scan_full_pattern() {
        let s = store();
        let rel = Relation::scan_pattern(
            &s,
            &Pattern {
                s: Atom::Var(0),
                p: pid(&s, "p"),
                o: Atom::Var(1),
            },
        );
        assert_eq!(rel.vars, vec![0, 1]);
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn scan_with_const_subject_and_object() {
        let s = store();
        let rel = Relation::scan_pattern(
            &s,
            &Pattern {
                s: Atom::Const(rid(&s, "a")),
                p: pid(&s, "p"),
                o: Atom::Var(0),
            },
        );
        assert_eq!(rel.vars, vec![0]);
        assert_eq!(rel.len(), 2);
        let rel = Relation::scan_pattern(
            &s,
            &Pattern {
                s: Atom::Var(0),
                p: pid(&s, "p"),
                o: Atom::Const(rid(&s, "x")),
            },
        );
        assert_eq!(rel.len(), 2); // a and b point at x
    }

    #[test]
    fn scan_self_loop() {
        let s = store();
        let rel = Relation::scan_pattern(
            &s,
            &Pattern {
                s: Atom::Var(0),
                p: pid(&s, "q"),
                o: Atom::Var(0),
            },
        );
        assert_eq!(rel.vars, vec![0]);
        assert_eq!(rel.len(), 1); // only c q c
    }

    #[test]
    fn exists_check() {
        let s = store();
        assert!(Relation::exists(
            &s,
            &Pattern {
                s: Atom::Const(rid(&s, "a")),
                p: pid(&s, "p"),
                o: Atom::Const(rid(&s, "x")),
            }
        ));
        assert!(!Relation::exists(
            &s,
            &Pattern {
                s: Atom::Const(rid(&s, "b")),
                p: pid(&s, "p"),
                o: Atom::Const(rid(&s, "y")),
            }
        ));
    }

    #[test]
    fn sort_by_cols() {
        let mut rel = Relation {
            vars: vec![0, 1],
            data: vec![3, 1, 1, 2, 3, 0, 1, 1],
        };
        rel.sort_by_cols(&[0, 1]);
        assert_eq!(rel.data, vec![1, 1, 1, 2, 3, 0, 3, 1]);
        rel.sort_by_cols(&[1]);
        assert_eq!(rel.data, vec![3, 0, 1, 1, 3, 1, 1, 2]);
    }
}
