//! Criterion end-to-end query benchmarks: representative queries from
//! both workloads under every probe strategy (silent mode), plus a
//! parse+optimize-only benchmark isolating the preparation cost the
//! paper discusses in §5.2.3 (query S1: "more than 40 milliseconds of
//! the reported time of 49 milliseconds is spent on producing the join
//! order in the optimizer").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parj_core::{EngineConfig, Parj, ProbeStrategy};
use parj_datagen::{lubm, watdiv};

fn lubm_engine() -> Parj {
    Parj::from_store(
        lubm::generate_store(&lubm::LubmConfig {
            universities: 4,
            seed: 42,
        }),
        EngineConfig::default(),
    )
}

fn watdiv_engine() -> Parj {
    Parj::from_store(
        watdiv::generate_store(&watdiv::WatDivConfig { scale: 8, seed: 42 }),
        EngineConfig::default(),
    )
}

fn bench_lubm_queries(c: &mut Criterion) {
    let mut engine = lubm_engine();
    let queries = lubm::queries();
    let mut group = c.benchmark_group("lubm_silent");
    for name in ["LUBM2", "LUBM4", "LUBM9"] {
        let q = queries.iter().find(|q| q.name == name).expect("exists");
        for strategy in ProbeStrategy::TABLE5 {
            group.bench_with_input(
                BenchmarkId::new(name, strategy.label()),
                &q.sparql,
                |b, sparql| {
                    b.iter(|| {
                        black_box(
                            engine
                                .request(sparql)
                                .threads(1)
                                .strategy(strategy)
                                .count_only()
                                .run()
                                .expect("runs")
                                .count,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_watdiv_queries(c: &mut Criterion) {
    let mut engine = watdiv_engine();
    let mut group = c.benchmark_group("watdiv_silent");
    let picks: Vec<_> = watdiv::all_queries()
        .into_iter()
        .filter(|q| matches!(q.name.as_str(), "S1" | "C3" | "IL-3-7" | "ML-2-7"))
        .collect();
    for q in &picks {
        group.bench_function(&q.name, |b| {
            b.iter(|| {
                black_box(
                    engine
                        .request(&q.sparql)
                        .threads(1)
                        .count_only()
                        .run()
                        .expect("runs")
                        .count,
                )
            });
        });
    }
    group.finish();
}

fn bench_prepare_only(c: &mut Criterion) {
    let mut engine = watdiv_engine();
    let s1 = watdiv::basic_workload()
        .into_iter()
        .find(|q| q.name == "S1")
        .expect("S1 exists");
    c.bench_function("prepare_only_S1", |b| {
        b.iter(|| black_box(engine.explain(&s1.sparql).expect("plans")));
    });
}

criterion_group!(
    benches,
    bench_lubm_queries,
    bench_watdiv_queries,
    bench_prepare_only
);
criterion_main!(benches);
