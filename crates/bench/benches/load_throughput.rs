//! Criterion benchmarks for the staged parallel bulk-load pipeline:
//! chunked N-Triples parsing, sharded two-phase dictionary encoding,
//! and per-predicate pair routing, at a 1/2/4/8 load-thread ladder.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use parj_core::Parj;
use parj_datagen::lubm;

fn lubm_text(universities: usize) -> String {
    let cfg = lubm::LubmConfig {
        universities,
        seed: lubm::LubmConfig::default().seed,
    };
    let mut bytes = Vec::new();
    lubm::write_ntriples(&cfg, &mut bytes).expect("in-memory write cannot fail");
    String::from_utf8(bytes).expect("generator emits UTF-8")
}

fn bench_bulk_load(c: &mut Criterion) {
    let text = lubm_text(4);
    let n = text.lines().count() as u64;
    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("lubm4_{threads}t"), |b| {
            b.iter(|| {
                let mut engine = Parj::builder().load_threads(threads).build();
                engine
                    .load_ntriples_str(&text)
                    .expect("generated dataset parses");
                black_box(engine.num_triples())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_load);
criterion_main!(benches);
