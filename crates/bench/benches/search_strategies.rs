//! Criterion micro-benchmarks for the adaptive search (Algorithm 1):
//! probe cost of each strategy as a function of probe locality.
//!
//! The paper's core claim is a crossover: for probes landing *near* the
//! cursor, sequential search wins; for far probes, binary search (or the
//! ID-to-Position index) wins; the adaptive switch should track the
//! better of the two at every stride. Sweeping the probe stride makes
//! that crossover visible in one chart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parj_join::{adaptive_search, ProbeStrategy, SearchStats};
use parj_store::IdPosIndex;

const ARRAY_LEN: u32 = 1 << 20;
/// Values are spaced by 4, like a predicate whose subjects are every
/// fourth dictionary id.
const GAP: u32 = 4;

fn setup() -> (Vec<u32>, IdPosIndex) {
    let keys: Vec<u32> = (0..ARRAY_LEN).map(|i| i * GAP).collect();
    let universe = (ARRAY_LEN * GAP) as usize;
    let idx = IdPosIndex::build(&keys, universe, 512);
    (keys, idx)
}

fn bench_probe_strides(c: &mut Criterion) {
    let (keys, idx) = setup();
    let mut group = c.benchmark_group("probe_stride");
    // Strides in positions between consecutive probes: 1 (merge-like),
    // 16, 256 (near the paper's binary threshold), 4096 (random-ish).
    for stride in [1u32, 16, 256, 4096] {
        for strategy in [
            ProbeStrategy::AlwaysSequential,
            ProbeStrategy::AlwaysBinary,
            ProbeStrategy::AlwaysIndex,
            ProbeStrategy::AdaptiveBinary,
            ProbeStrategy::AdaptiveIndex,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), stride),
                &stride,
                |b, &stride| {
                    // Threshold: 200 positions in value space, the
                    // paper's measured default.
                    let threshold = (200 * GAP) as i64;
                    b.iter(|| {
                        let mut stats = SearchStats::default();
                        let mut cursor = 0usize;
                        let mut probe = 0u32;
                        let mut found = 0u64;
                        for _ in 0..1024 {
                            if adaptive_search(
                                &keys,
                                probe,
                                &mut cursor,
                                threshold,
                                strategy,
                                Some(&idx),
                                &mut stats,
                            )
                            .is_some()
                            {
                                found += 1;
                            }
                            probe = probe.wrapping_add(stride * GAP) % (ARRAY_LEN * GAP);
                        }
                        black_box(found)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_idpos_vs_binary(c: &mut Criterion) {
    let (keys, idx) = setup();
    let mut group = c.benchmark_group("random_lookup");
    group.bench_function("binary_search", |b| {
        let mut x = 12345u32;
        b.iter(|| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let probe = x % (ARRAY_LEN * GAP);
            black_box(keys.binary_search(&probe).ok())
        });
    });
    group.bench_function("idpos_lookup", |b| {
        let mut x = 12345u32;
        b.iter(|| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let probe = x % (ARRAY_LEN * GAP);
            black_box(idx.lookup(probe))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_probe_strides, bench_idpos_vs_binary);
criterion_main!(benches);
