//! Criterion benchmarks for the storage substrate: CSR partition build
//! throughput, ID-to-Position index construction, and snapshot
//! encode/decode — the load-time costs §3/§4.2 of the paper trade
//! against query speed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use parj_datagen::lubm;
use parj_store::{IdPosIndex, Partition, TripleStore};

fn pairs(n: u32) -> Vec<(u32, u32)> {
    // Deterministic pseudo-random (subject, object) pairs with fan-out
    // skew comparable to a real predicate.
    let mut x = 0x9e3779b9u32;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let s = x % (n / 4).max(1);
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let o = x % n.max(1);
            (s, o)
        })
        .collect()
}

fn bench_partition_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_build");
    for n in [10_000u32, 100_000] {
        let input = pairs(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("{n}_pairs"), |b| {
            b.iter_batched(
                || input.clone(),
                |input| black_box(Partition::build(0, &input)),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_idpos_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("idpos_build");
    for universe in [1usize << 16, 1 << 20] {
        let keys: Vec<u32> = (0..universe as u32).step_by(4).collect();
        group.throughput(Throughput::Elements(universe as u64));
        group.bench_function(format!("universe_{universe}"), |b| {
            b.iter(|| black_box(IdPosIndex::build(&keys, universe, 512)));
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 2,
        seed: 42,
    });
    let bytes = store.to_snapshot_bytes();
    let mut group = c.benchmark_group("snapshot");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| black_box(store.to_snapshot_bytes()));
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(TripleStore::from_snapshot_bytes(&bytes).expect("valid")));
    });
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    // Algorithm 2 is a load-time cost; it must stay tiny relative to
    // partition building.
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities: 2,
        seed: 42,
    });
    let cfg = parj_join::CalibrationConfig {
        no_of_searches: 500,
        ..parj_join::CalibrationConfig::default()
    };
    c.bench_function("calibrate_algorithm2", |b| {
        b.iter(|| black_box(parj_join::calibrate(&store, &cfg)));
    });
}

criterion_group!(
    benches,
    bench_partition_build,
    bench_idpos_build,
    bench_snapshot,
    bench_calibration
);
criterion_main!(benches);
