//! Ablation studies for PARJ's design choices (beyond the paper's own
//! tables, but directly probing the decisions its Sections 3–4 make):
//!
//! * **A1 — adaptive window**: sweep the calibrated position window
//!   (Algorithm 2's output) and measure the LUBM workload; shows the
//!   sequential/binary trade the calibration navigates and why the
//!   paper's ≈200 default sits on the plateau.
//! * **A2 — ID-to-Position interval**: sweep the §4.2 block interval;
//!   shows the memory/lookup-cost trade against the paper's choice of
//!   480 (ours: 512).
//! * **A3 — shards per thread**: sweep the over-subscription factor of
//!   the shard distribution; shows load balance vs. cursor-restart
//!   overhead (§3's "degree of parallelism depends on the number of
//!   different shards").
//! * **A4 — histogram resolution**: sweep equi-depth bucket counts;
//!   shows the optimizer's sensitivity to statistics quality (§4.3
//!   "estimates based on such histograms may not be accurate").

use parj_core::{Parj, RunOverrides};
use parj_datagen::lubm;
use parj_join::{
    execute_count_with, CalibrationResult, ExecOptions, ProbeStrategy, ThresholdTable,
};
use parj_optimizer::{optimize, Stats};
use parj_store::{SortOrder, StoreBuilder, StoreOptions};
use serde_json::json;

use crate::report::{fmt_ms, Table};
use crate::setup::{encode_bgp, lubm_engine, Args};
use crate::timing::measure_ms;

/// All four ablations; returns the tables and a JSON record.
pub fn ablation(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut tables = Vec::new();
    let mut records = serde_json::Map::new();

    // Shared dataset.
    let cfg = lubm::LubmConfig {
        universities: args.scale,
        seed: lubm::LubmConfig::default().seed,
    };
    let queries = lubm::queries();

    // ---- A1: adaptive window sweep -----------------------------------
    {
        let store = lubm::generate_store(&cfg);
        let stats = Stats::build(&store);
        let mut engine_for_encoding = lubm_engine(args.scale, args.engine_config());
        // Optimize each query once (plans are window-independent).
        let plans: Vec<_> = queries
            .iter()
            .filter_map(|q| {
                let (patterns, num_vars) = encode_bgp(&mut engine_for_encoding, &q.sparql)?;
                optimize(&stats, &patterns, num_vars, vec![]).ok()
            })
            .collect();
        let mut t = Table::new(
            format!("Ablation A1 — adaptive window sweep (LUBM U={}, AdBinary, 1 thread)", args.scale),
            &["workload ms", "#sequential", "#binary"],
        );
        let mut rows = Vec::new();
        for window in [0usize, 1, 10, 50, 200, 1000, 10_000] {
            let cal = CalibrationResult {
                window_binary: window,
                window_index: window / 10,
                iterations_binary: 0,
                iterations_index: 0,
            };
            let thresholds = ThresholdTable::from_calibration(&store, &cal);
            let opts = ExecOptions::builder()
                .strategy(ProbeStrategy::AdaptiveBinary)
                .build()
                .expect("valid options");
            let mut seq = 0u64;
            let mut bin = 0u64;
            let m = measure_ms(args.runs, || {
                seq = 0;
                bin = 0;
                for plan in &plans {
                    let (_, s) = execute_count_with(&store, plan, &opts, &thresholds).expect("runs");
                    seq += s.sequential_searches;
                    bin += s.binary_searches;
                }
            });
            t.row(
                format!("window {window}"),
                vec![fmt_ms(m.avg_ms), seq.to_string(), bin.to_string()],
            );
            rows.push(json!({"window": window, "ms": m.avg_ms, "sequential": seq, "binary": bin}));
        }
        tables.push(t);
        records.insert("window_sweep".into(), json!(rows));
    }

    // ---- A2: ID-to-Position interval sweep ----------------------------
    {
        let mut t = Table::new(
            format!("Ablation A2 — ID-to-Position interval (LUBM U={}, AlwaysIndex, 1 thread)", args.scale),
            &["workload ms", "index MiB"],
        );
        let mut rows = Vec::new();
        for interval in [64usize, 256, 512, 2048, 8192] {
            let mut builder = StoreBuilder::new();
            lubm::generate(&cfg, |s, p, o| {
                builder.add_term_triple(&s, &p, &o);
            });
            let store = builder.build_with(StoreOptions {
                build_idpos: true,
                idpos_interval: interval,
                ..StoreOptions::default()
            });
            let index_bytes: usize = store
                .partitions()
                .iter()
                .flat_map(|p| {
                    [SortOrder::SO, SortOrder::OS]
                        .map(|o| p.replica(o).idpos().map_or(0, |i| i.memory_bytes()))
                })
                .sum();
            let stats = Stats::build(&store);
            let mut engine_for_encoding = lubm_engine(args.scale, args.engine_config());
            let plans: Vec<_> = queries
                .iter()
                .filter_map(|q| {
                    let (patterns, num_vars) = encode_bgp(&mut engine_for_encoding, &q.sparql)?;
                    optimize(&stats, &patterns, num_vars, vec![]).ok()
                })
                .collect();
            let thresholds = ThresholdTable::from_calibration(&store, &CalibrationResult::paper_defaults());
            let opts = ExecOptions::builder()
                .strategy(ProbeStrategy::AlwaysIndex)
                .build()
                .expect("valid options");
            let m = measure_ms(args.runs, || {
                for plan in &plans {
                    execute_count_with(&store, plan, &opts, &thresholds).expect("runs");
                }
            });
            let mib = index_bytes as f64 / (1 << 20) as f64;
            t.row(
                format!("interval {interval}"),
                vec![fmt_ms(m.avg_ms), format!("{mib:.2}")],
            );
            rows.push(json!({"interval": interval, "ms": m.avg_ms, "index_bytes": index_bytes}));
        }
        tables.push(t);
        records.insert("idpos_interval".into(), json!(rows));
    }

    // ---- A3: morsel size ------------------------------------------------
    {
        let mut t = Table::new(
            format!(
                "Ablation A3 — morsel size (LUBM U={}, LUBM9, {} threads)",
                args.scale, args.threads
            ),
            &["ms", "speedup bound", "morsels"],
        );
        let lubm9 = &queries[8];
        let mut rows = Vec::new();
        for morsel_size in [1_024usize, 4_096, 16_384, 65_536] {
            let mut engine = Parj::from_store(
                lubm::generate_store(&cfg),
                parj_core::EngineConfig {
                    morsel_size,
                    ..args.engine_config()
                },
            );
            let over = RunOverrides::threads(args.threads).with_morsel_size(morsel_size);
            let mut count = 0;
            let m = measure_ms(args.runs, || {
                count = engine
                    .request(&lubm9.sparql)
                    .threads(args.threads)
                    .count_only()
                    .run()
                    .expect("runs")
                    .count;
            });
            let loads = engine.morsel_loads(&lubm9.sparql, &over).expect("runs");
            let loads = &loads[0];
            let total: u64 = loads.iter().sum();
            let max_morsel = loads.iter().copied().max().unwrap_or(1);
            let bound = total as f64
                / (total as f64 / args.threads as f64).max(max_morsel as f64).max(1.0);
            t.row(
                format!("{morsel_size} keys/morsel"),
                vec![
                    fmt_ms(m.avg_ms),
                    format!("{bound:.2}x"),
                    loads.len().to_string(),
                ],
            );
            rows.push(json!({"morsel_size": morsel_size, "ms": m.avg_ms, "bound": bound}));
        }
        tables.push(t);
        records.insert("morsel_size".into(), json!(rows));
    }

    // ---- A4: histogram resolution --------------------------------------
    {
        let mut t = Table::new(
            format!("Ablation A4 — histogram buckets (LUBM U={}, full workload, 1 thread)", args.scale),
            &["workload ms"],
        );
        let mut rows = Vec::new();
        for buckets in [2usize, 8, 64, 256] {
            let mut engine = Parj::from_store(
                lubm::generate_store(&cfg),
                parj_core::EngineConfig {
                    histogram_buckets: buckets,
                    threads: 1,
                    ..args.engine_config()
                },
            );
            let m = measure_ms(args.runs, || {
                for q in &queries {
                    engine.request(&q.sparql).count_only().run().expect("runs");
                }
            });
            t.row(format!("{buckets} buckets"), vec![fmt_ms(m.avg_ms)]);
            rows.push(json!({"buckets": buckets, "ms": m.avg_ms}));
        }
        tables.push(t);
        records.insert("histogram_buckets".into(), json!(rows));
    }

    (
        tables,
        json!({
            "experiment": "ablation", "dataset": "lubm", "scale": args.scale,
            "runs": args.runs, "threads": args.threads,
            "results": serde_json::Value::Object(records),
        }),
    )
}
