//! Ablation studies of PARJ's design choices (adaptive window,
//! ID-to-Position interval, shard over-subscription, histogram
//! resolution). See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("ablation"));
    let (tables, json) = parj_bench::ablation::ablation(&args);
    parj_bench::write_outputs(&args.out, "ablation", &tables, json);
}
