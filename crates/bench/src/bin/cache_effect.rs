//! Measures the plan/result cache's speedup on a 90 %-repeat query
//! mix. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("cache_effect"));
    let (tables, json) = parj_bench::experiments::cache_effect(&args);
    parj_bench::write_outputs(&args.out, "cache_effect", &tables, json);
}
