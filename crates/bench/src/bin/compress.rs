//! Replica block-compression report: bytes per triple raw vs packed
//! (≥2× value-store bar asserted) plus probe throughput over the same
//! data in both representations. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("compress"));
    let (tables, json) = parj_bench::compress::compress(&args);
    parj_bench::write_outputs(&args.out, "compress", &tables, json);
}
