//! Measures write throughput of the delta store: `mutate()` batches vs
//! rebuild-per-batch on a large base. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("delta"));
    let (tables, json) = parj_bench::experiments::delta(&args);
    parj_bench::write_outputs(&args.out, "delta", &tables, json);
}
