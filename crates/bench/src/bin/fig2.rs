//! Regenerates the paper's fig2Figure 2 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("fig2"));
    let (tables, json) = parj_bench::experiments::fig2(&args);
    parj_bench::write_outputs(&args.out, "fig2", &tables, json);
}
