//! Regenerates the paper's fig3Figure 3 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("fig3"));
    let (tables, json) = parj_bench::experiments::fig3(&args);
    parj_bench::write_outputs(&args.out, "fig3", &tables, json);
}
