//! Measures bulk-load throughput across the load-thread ladder. See
//! EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("load_throughput"));
    let (tables, json) = parj_bench::experiments::load_throughput(&args);
    parj_bench::write_outputs(&args.out, "load_throughput", &tables, json);
}
