//! Ordered-lock wrapper overhead guardrail plus a per-hierarchy-level
//! lock-wait profile of the pooled closed loop. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("locks"));
    let (tables, json) = parj_bench::locks::locks(&args);
    parj_bench::write_outputs(&args.out, "locks", &tables, json);
}
