//! Measures the observability registry's recording overhead. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("metrics_overhead"));
    let (tables, json) = parj_bench::experiments::metrics_overhead(&args);
    parj_bench::write_outputs(&args.out, "metrics_overhead", &tables, json);
}
