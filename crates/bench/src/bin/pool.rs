//! Closed-loop comparison of persistent-pool vs spawn-per-query worker
//! dispatch on selective queries. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("pool"));
    let (tables, json) = parj_bench::serve::pool(&args);
    parj_bench::write_outputs(&args.out, "pool", &tables, json);
}
