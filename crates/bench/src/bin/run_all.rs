//! Runs every experiment (Tables 2-6, Figures 2-3) in sequence, writing
//! all artifacts under the output directory. See EXPERIMENTS.md.
/// An experiment entry point: args in, tables + JSON record out.
type Experiment = fn(&parj_bench::Args) -> (Vec<parj_bench::Table>, serde_json::Value);

fn main() {
    let base = parj_bench::Args::parse(0);
    let experiments: [(&str, Experiment); 16] = [
        ("table2", parj_bench::experiments::table2),
        ("table3", parj_bench::experiments::table3),
        ("table4", parj_bench::experiments::table4),
        ("table5", parj_bench::experiments::table5),
        ("table6", parj_bench::experiments::table6),
        ("fig2", parj_bench::experiments::fig2),
        ("fig3", parj_bench::experiments::fig3),
        ("ablation", parj_bench::ablation::ablation),
        ("load_throughput", parj_bench::experiments::load_throughput),
        ("metrics_overhead", parj_bench::experiments::metrics_overhead),
        ("cache_effect", parj_bench::experiments::cache_effect),
        ("delta", parj_bench::experiments::delta),
        ("serve", parj_bench::serve::serve),
        ("pool", parj_bench::serve::pool),
        ("locks", parj_bench::locks::locks),
        ("compress", parj_bench::compress::compress),
    ];
    for (name, f) in experiments {
        let mut args = base.clone();
        if base.scale == 0 {
            args.scale = parj_bench::default_scale(name);
        }
        eprintln!("== running {name} (scale {}) ==", args.scale);
        let (tables, json) = f(&args);
        parj_bench::write_outputs(&args.out, name, &tables, json);
    }
}
