//! Closed-loop multi-client benchmark of the HTTP serving layer. See
//! EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("serve"));
    let (tables, json) = parj_bench::serve::serve(&args);
    parj_bench::write_outputs(&args.out, "serve", &tables, json);
}
