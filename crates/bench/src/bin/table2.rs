//! Regenerates the paper's Table 2table2 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("table2"));
    let (tables, json) = parj_bench::experiments::table2(&args);
    parj_bench::write_outputs(&args.out, "table2", &tables, json);
}
