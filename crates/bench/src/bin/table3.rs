//! Regenerates the paper's Table 3table3 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("table3"));
    let (tables, json) = parj_bench::experiments::table3(&args);
    parj_bench::write_outputs(&args.out, "table3", &tables, json);
}
