//! Regenerates the paper's Table 4table4 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("table4"));
    let (tables, json) = parj_bench::experiments::table4(&args);
    parj_bench::write_outputs(&args.out, "table4", &tables, json);
}
