//! Regenerates the paper's Table 5table5 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("table5"));
    let (tables, json) = parj_bench::experiments::table5(&args);
    parj_bench::write_outputs(&args.out, "table5", &tables, json);
}
