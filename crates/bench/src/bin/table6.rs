//! Regenerates the paper's Table 6table6 artifact. See EXPERIMENTS.md.
fn main() {
    let args = parj_bench::Args::parse(parj_bench::default_scale("table6"));
    let (tables, json) = parj_bench::experiments::table6(&args);
    parj_bench::write_outputs(&args.out, "table6", &tables, json);
}
