//! Block-compression memory/throughput report (`results/compress.md`,
//! `BENCH_compress.json`).
//!
//! The tentpole claim behind `EngineConfig::compress_replicas`: the
//! frame-of-reference + bitpacked block codec shrinks the per-key
//! sorted value runs — the dominant term of replica memory — without
//! changing a single answered row. Three phases:
//!
//! 1. **Bytes per triple.** Build the LUBM base once, snapshot the
//!    value-store and total partition footprint, compress in place,
//!    snapshot again. The run *asserts* the value-store shrinks by at
//!    least 2× — the codec's reason to exist — so a format regression
//!    fails the bench instead of silently shipping a fatter store.
//! 2. **Probe throughput.** The full LUBM query mix over two engines
//!    holding identical data (raw vs compressed replicas), single- and
//!    multi-thread, reporting ms per query and aggregate rows/s.
//! 3. **Byte identity.** Every query's id rows are compared across the
//!    two engines (and thread counts) before any timing is trusted;
//!    the record also carries whether the SIMD kernels or the scalar
//!    fallback decoded the blocks (`PARJ_NO_SIMD` selects the latter —
//!    the numbers must differ, the rows must not).

use parj_core::{EngineConfig, Parj};
use parj_datagen::lubm;
use serde_json::json;

use crate::report::Table;
use crate::timing::measure_ms;
use crate::Args;

/// Replica-size threshold for the compressed engine: low enough that
/// every benchmark-relevant replica compresses, so the report measures
/// the codec rather than the threshold.
const MIN_VALUES: usize = 64;

fn lubm_store(universities: usize) -> parj_core::TripleStore {
    lubm::generate_store(&lubm::LubmConfig {
        universities,
        seed: lubm::LubmConfig::default().seed,
    })
}

/// Value-store bytes summed over every replica of `store`.
fn value_bytes(store: &parj_core::TripleStore) -> usize {
    store
        .partitions()
        .iter()
        .flat_map(|p| {
            [parj_core::SortOrder::SO, parj_core::SortOrder::OS]
                .map(|o| p.replica(o).value_bytes())
        })
        .sum()
}

/// Compressed-replica count across `store`.
fn compressed_replicas(store: &parj_core::TripleStore) -> usize {
    store
        .partitions()
        .iter()
        .flat_map(|p| [parj_core::SortOrder::SO, parj_core::SortOrder::OS].map(|o| p.replica(o)))
        .filter(|r| r.is_compressed())
        .count()
}

/// Block-compression bench: bytes-per-triple before/after plus probe
/// throughput and row byte-identity over the same data raw vs packed.
pub fn compress(args: &Args) -> (Vec<Table>, serde_json::Value) {
    // Phase 1 — memory, measured on one store compressed in place so
    // "before" and "after" hold byte-for-byte the same triples.
    let mut store = lubm_store(args.scale);
    let triples = store.num_triples();
    let raw_value_bytes = value_bytes(&store);
    let raw_total_bytes = store.partitions_memory_bytes();
    let compressed = store.compress_values(MIN_VALUES);
    let packed_value_bytes = value_bytes(&store);
    let packed_total_bytes = store.partitions_memory_bytes();
    assert!(compressed > 0, "no replica crossed the {MIN_VALUES}-value threshold");
    assert_eq!(compressed, compressed_replicas(&store));

    let raw_vpt = raw_value_bytes as f64 / triples as f64;
    let packed_vpt = packed_value_bytes as f64 / triples as f64;
    let value_ratio = raw_value_bytes as f64 / packed_value_bytes as f64;
    let total_ratio = raw_total_bytes as f64 / packed_total_bytes as f64;
    // The acceptance bar: the value store — what the codec compresses —
    // must shrink at least 2×.
    assert!(
        value_ratio >= 2.0,
        "value-store compression ratio {value_ratio:.2}× is below the 2× bar \
         ({raw_value_bytes} -> {packed_value_bytes} bytes over {triples} triples)"
    );

    let mut mem = Table::new(
        format!(
            "Value-run block compression — LUBM U={} ({} triples), \
             FOR + bitpacked deltas, {}-value blocks",
            args.scale,
            triples,
            parj_store::BLOCK_LEN
        ),
        &["raw", "compressed", "ratio"],
    );
    mem.row(
        "value-store bytes/triple",
        vec![
            format!("{raw_vpt:.2}"),
            format!("{packed_vpt:.2}"),
            format!("{value_ratio:.2}x"),
        ],
    );
    mem.row(
        "total partition bytes/triple",
        vec![
            format!("{:.2}", raw_total_bytes as f64 / triples as f64),
            format!("{:.2}", packed_total_bytes as f64 / triples as f64),
            format!("{total_ratio:.2}x"),
        ],
    );
    mem.row(
        "compressed replicas",
        vec![String::new(), compressed.to_string(), String::new()],
    );

    // Phases 2 & 3 — probe throughput and byte identity. Fresh engines
    // so each side owns its representation end to end.
    let raw_cfg = EngineConfig {
        compress_replicas: false,
        cache: false,
        ..args.engine_config()
    };
    let packed_cfg = EngineConfig {
        compress_replicas: true,
        compress_min_values: MIN_VALUES,
        cache: false,
        ..args.engine_config()
    };
    let mut raw_engine = Parj::from_store(lubm_store(args.scale), raw_cfg);
    let mut packed_engine = Parj::from_store(lubm_store(args.scale), packed_cfg);
    assert_eq!(compressed_replicas(raw_engine.store()), 0);
    assert!(compressed_replicas(packed_engine.store()) > 0);

    let queries = lubm::queries();
    let thread_cols = [1usize, args.threads.max(2)];

    // Byte identity first: timing an engine that answers differently
    // would be measuring a bug.
    for q in &queries {
        for threads in thread_cols {
            let rows = |e: &mut Parj| {
                e.request(&q.sparql)
                    .threads(threads)
                    .ids_only()
                    .run()
                    .expect("benchmark query must run")
                    .ids
                    .expect("ids mode returns ids")
            };
            let raw_rows = rows(&mut raw_engine);
            let packed_rows = rows(&mut packed_engine);
            assert_eq!(
                raw_rows, packed_rows,
                "{} t={threads}: compressed rows diverged from raw",
                q.name
            );
        }
    }

    let mut probe = Table::new(
        format!(
            "Probe throughput — LUBM mix, avg of {} runs (cache off, \
             adaptive strategy, {} decode)",
            args.runs,
            if parj_store::simd_active() { "SIMD" } else { "scalar" }
        ),
        &[
            "raw 1T (ms)",
            "packed 1T (ms)",
            "raw MT (ms)",
            "packed MT (ms)",
        ],
    );
    let mut per_query = Vec::new();
    let mut total_rows = 0u64;
    let mut raw_mt_ms_sum = 0.0f64;
    let mut packed_mt_ms_sum = 0.0f64;
    for q in &queries {
        let mut cells = Vec::new();
        let mut entry = serde_json::Map::new();
        entry.insert("query".into(), json!(q.name));
        let count = raw_engine
            .request(&q.sparql)
            .threads(1)
            .count_only()
            .run()
            .expect("count runs")
            .count;
        total_rows += count * args.runs as u64;
        entry.insert("rows".into(), json!(count));
        for (label, threads) in [("1t", thread_cols[0]), ("mt", thread_cols[1])] {
            for (side, engine) in [("raw", &mut raw_engine), ("packed", &mut packed_engine)] {
                let m = measure_ms(args.runs, || {
                    engine
                        .request(&q.sparql)
                        .threads(threads)
                        .count_only()
                        .run()
                        .expect("benchmark query must run");
                });
                let ms = m.avg_ms;
                cells.push(crate::report::fmt_ms(ms));
                entry.insert(format!("{side}_{label}_ms"), json!(ms));
                if label == "mt" {
                    if side == "raw" {
                        raw_mt_ms_sum += ms;
                    } else {
                        packed_mt_ms_sum += ms;
                    }
                }
            }
        }
        probe.row(&q.name, cells);
        per_query.push(serde_json::Value::Object(entry));
    }
    probe.separator();
    probe.row(
        "**mix total (MT)**",
        vec![
            String::new(),
            String::new(),
            crate::report::fmt_ms(raw_mt_ms_sum),
            crate::report::fmt_ms(packed_mt_ms_sum),
        ],
    );

    (
        vec![mem, probe],
        json!({
            "experiment": "compress", "dataset": "lubm", "scale": args.scale,
            "triples": triples,
            "block_len": parj_store::BLOCK_LEN,
            "compress_min_values": MIN_VALUES,
            "simd_active": parj_store::simd_active(),
            "memory": {
                "raw_value_bytes": raw_value_bytes,
                "packed_value_bytes": packed_value_bytes,
                "raw_total_bytes": raw_total_bytes,
                "packed_total_bytes": packed_total_bytes,
                "raw_value_bytes_per_triple": raw_vpt,
                "packed_value_bytes_per_triple": packed_vpt,
                "value_compression_ratio": value_ratio,
                "total_compression_ratio": total_ratio,
                "compressed_replicas": compressed,
                "bar": "value-store ratio >= 2.0 (asserted)",
            },
            "probe": {
                "runs": args.runs,
                "threads_multi": thread_cols[1],
                "rows_checked_identical": true,
                "raw_mix_total_mt_ms": raw_mt_ms_sum,
                "packed_mix_total_mt_ms": packed_mt_ms_sum,
                "approx_total_rows_counted": total_rows,
                "per_query": per_query,
            },
        }),
    )
}
