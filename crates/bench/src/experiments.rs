//! The seven experiment implementations (Tables 2–6, Figures 2–3).
//!
//! Each function builds its dataset, measures, and returns Markdown
//! tables plus a JSON record; the `table*`/`fig*` binaries are thin
//! wrappers. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured analysis of each artifact.

use parj_baseline::{BaselineEngine, HashJoinEngine, MergeJoinEngine};
use parj_core::{Parj, ProbeStrategy, RunOverrides, Term};
use parj_datagen::{lubm, watdiv, NamedQuery};
use serde_json::json;

use crate::report::{fmt_ms, Table};
use crate::setup::{encode_bgp, lubm_engine, watdiv_engine, Args};
use crate::timing::{avg, geomean, measure_ms};

/// Measures PARJ silent-mode execution for one query.
fn parj_ms(engine: &mut Parj, sparql: &str, threads: usize, runs: usize) -> (f64, u64) {
    let mut count = 0;
    let m = measure_ms(runs, || {
        count = engine
            .request(sparql)
            .threads(threads)
            .count_only()
            .run()
            .expect("benchmark query must run")
            .count;
    });
    (m.avg_ms, count)
}

/// Measures a baseline engine on the same query (via encoded patterns).
/// Returns `None` for queries the baselines cannot express.
fn baseline_ms<E: BaselineEngine>(
    engine: &mut Parj,
    e: &E,
    sparql: &str,
    runs: usize,
) -> Option<(f64, u64)> {
    let (patterns, _) = encode_bgp(engine, sparql)?;
    let store = engine.store();
    let mut count = 0;
    let m = measure_ms(runs, || {
        count = e.run_count(store, &patterns);
    });
    Some((m.avg_ms, count))
}

fn push_aggregates(table: &mut Table, columns: &[Vec<f64>]) {
    table.row(
        "**Avg**",
        columns.iter().map(|c| fmt_ms(avg(c))).collect(),
    );
    table.row(
        "**Geomean**",
        columns.iter().map(|c| fmt_ms(geomean(c))).collect(),
    );
}

/// A generic engine-comparison run over a query set: PARJ single- and
/// multi-thread against the merge-join (RDF-3X stand-in) and hash-join
/// (TriAD stand-in) baselines. Returns one table plus raw per-query
/// series, asserting all engines agree on result counts.
fn engine_comparison(
    engine: &mut Parj,
    queries: &[NamedQuery],
    args: &Args,
    title: &str,
    with_groups: bool,
) -> (Table, serde_json::Value) {
    let cols = [
        "PARJ (1T)",
        "MergeJoin (1T)",
        "HashJoin (1T)",
        &format!("PARJ ({}T)", args.threads),
        &format!("HashJoin ({}T)", args.threads),
        "results",
    ];
    let mut table = Table::new(title, &cols.iter().map(|s| &**s).collect::<Vec<_>>());
    let mut json_rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut group_series: std::collections::BTreeMap<String, Vec<Vec<f64>>> = Default::default();

    for q in queries {
        let (t_parj1, n_parj) = parj_ms(engine, &q.sparql, 1, args.runs);
        let (t_parjn, n_parjn) = parj_ms(engine, &q.sparql, args.threads, args.runs);
        assert_eq!(n_parj, n_parjn, "{}: thread count changed results", q.name);
        let merge = baseline_ms(engine, &MergeJoinEngine, &q.sparql, args.runs);
        let hash1 = baseline_ms(engine, &HashJoinEngine::default(), &q.sparql, args.runs);
        let hashn = baseline_ms(
            engine,
            &HashJoinEngine::parallel(args.threads),
            &q.sparql,
            args.runs,
        );
        for (m, label) in [(&merge, "merge"), (&hash1, "hash")] {
            if let Some((_, n)) = m {
                assert_eq!(*n, n_parj, "{}: {label} baseline disagrees on count", q.name);
            }
        }
        let cells = [
            Some((t_parj1, n_parj)),
            merge,
            hash1,
            Some((t_parjn, n_parj)),
            hashn,
        ];
        let mut row = Vec::with_capacity(6);
        for (i, c) in cells.iter().enumerate() {
            match c {
                Some((t, _)) => {
                    series[i].push(*t);
                    if with_groups {
                        group_series
                            .entry(q.group.clone())
                            .or_insert_with(|| vec![Vec::new(); 5])[i]
                            .push(*t);
                    }
                    row.push(fmt_ms(*t));
                }
                None => row.push("—".into()),
            }
        }
        row.push(n_parj.to_string());
        table.row(&q.name, row);
        json_rows.push(json!({
            "query": q.name, "group": q.group, "results": n_parj,
            "parj_1t_ms": t_parj1, "parj_mt_ms": t_parjn,
            "merge_1t_ms": merge.map(|m| m.0),
            "hash_1t_ms": hash1.map(|m| m.0),
            "hash_mt_ms": hashn.map(|m| m.0),
        }));
    }
    if with_groups {
        for (group, cols) in &group_series {
            let mut cells: Vec<String> = cols.iter().map(|c| fmt_ms(avg(c))).collect();
            cells.push(String::new());
            table.row(format!("**{group} Avg**"), cells);
            let mut cells: Vec<String> = cols.iter().map(|c| fmt_ms(geomean(c))).collect();
            cells.push(String::new());
            table.row(format!("**{group} Geomean**"), cells);
        }
    }
    let mut agg_cols = series;
    agg_cols.truncate(5);
    push_aggregates(&mut table, &agg_cols);
    (table, json!(json_rows))
}

/// Table 2: LUBM engine comparison, single- and multi-thread.
pub fn table2(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut engine = lubm_engine(args.scale, args.engine_config());
    let triples = engine.num_triples();
    let queries = lubm::queries();
    let (table, rows) = engine_comparison(
        &mut engine,
        &queries,
        args,
        &format!(
            "Table 2 — LUBM (universities={}, {} triples): silent-mode ms",
            args.scale, triples
        ),
        false,
    );

    // The §5.2 silent-vs-full comparison: full result handling decodes
    // every row through the dictionary.
    let mut full = Table::new(
        "Table 2b — silent vs full result handling (PARJ, multi-thread ms)",
        &["silent", "full", "results"],
    );
    let mut full_rows = Vec::new();
    for q in &queries {
        let (t_silent, n) = parj_ms(&mut engine, &q.sparql, args.threads, args.runs);
        let m = measure_ms(args.runs, || {
            engine
                .request(&q.sparql)
                .threads(args.threads)
                .run()
                .expect("benchmark query must run");
        });
        full.row(
            &q.name,
            vec![fmt_ms(t_silent), fmt_ms(m.avg_ms), n.to_string()],
        );
        full_rows.push(json!({
            "query": q.name, "silent_ms": t_silent, "full_ms": m.avg_ms, "results": n
        }));
    }
    (
        vec![table, full],
        json!({
            "experiment": "table2", "dataset": "lubm", "scale": args.scale,
            "triples": triples, "threads": args.threads, "runs": args.runs,
            "rows": rows, "full_result_handling": full_rows,
        }),
    )
}

fn engine_comparison_titled(
    engine: &mut Parj,
    queries: &[NamedQuery],
    args: &Args,
    title: String,
) -> (Table, serde_json::Value) {
    engine_comparison(engine, queries, args, &title, true)
}

/// Table 3: WatDiv basic workload.
pub fn table3(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut engine = watdiv_engine(args.scale, args.engine_config());
    let triples = engine.num_triples();
    let queries = watdiv::basic_workload();
    let (table, rows) = engine_comparison_titled(
        &mut engine,
        &queries,
        args,
        format!(
            "Table 3 — WatDiv basic workload (scale={}, {} triples): silent-mode ms",
            args.scale, triples
        ),
    );
    (
        vec![table],
        json!({
            "experiment": "table3", "dataset": "watdiv", "scale": args.scale,
            "triples": triples, "threads": args.threads, "runs": args.runs, "rows": rows,
        }),
    )
}

/// Table 4: WatDiv incremental & mixed linear workloads.
pub fn table4(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut engine = watdiv_engine(args.scale, args.engine_config());
    let triples = engine.num_triples();
    let mut queries = Vec::new();
    for k in 1..=3 {
        queries.extend(watdiv::incremental_linear(k));
    }
    for k in 1..=2 {
        queries.extend(watdiv::mixed_linear(k));
    }
    let (table, rows) = engine_comparison_titled(
        &mut engine,
        &queries,
        args,
        format!(
            "Table 4 — WatDiv incremental & mixed linear (scale={}, {} triples): silent-mode ms",
            args.scale, triples
        ),
    );
    (
        vec![table],
        json!({
            "experiment": "table4", "dataset": "watdiv", "scale": args.scale,
            "triples": triples, "threads": args.threads, "runs": args.runs, "rows": rows,
        }),
    )
}

/// Table 5: impact of adaptive processing — the four probe strategies,
/// single-threaded, on both datasets.
pub fn table5(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let strategies = ProbeStrategy::TABLE5;
    let labels: Vec<&str> = strategies.iter().map(|s| s.label()).collect();
    let mut json_rows = Vec::new();

    let mut engine = lubm_engine(args.scale, args.engine_config());
    let mut table = Table::new(
        format!(
            "Table 5 — impact of adaptive processing, 1 thread (LUBM universities={}, WatDiv scale={}): ms",
            args.scale, args.scale
        ),
        &labels,
    );
    let mut lubm_cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for q in lubm::queries() {
        let mut cells = Vec::new();
        let mut rec = serde_json::Map::new();
        rec.insert("query".into(), json!(q.name));
        for (i, s) in strategies.iter().enumerate() {
            let m = measure_ms(args.runs, || {
                engine
                    .request(&q.sparql)
                    .threads(1)
                    .strategy(*s)
                    .count_only()
                    .run()
                    .expect("benchmark query must run");
            });
            lubm_cols[i].push(m.avg_ms);
            cells.push(fmt_ms(m.avg_ms));
            rec.insert(format!("{}_ms", s.label()), json!(m.avg_ms));
        }
        table.row(&q.name, cells);
        json_rows.push(serde_json::Value::Object(rec));
    }
    push_aggregates(&mut table, &lubm_cols);

    // WatDiv: the paper reports only avg + geomean over the full query
    // mix.
    let mut wengine = watdiv_engine(args.scale, args.engine_config());
    let mut watdiv_cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for q in watdiv::all_queries() {
        for (i, s) in strategies.iter().enumerate() {
            let m = measure_ms(args.runs, || {
                wengine
                    .request(&q.sparql)
                    .threads(1)
                    .strategy(*s)
                    .count_only()
                    .run()
                    .expect("benchmark query must run");
            });
            watdiv_cols[i].push(m.avg_ms);
        }
    }
    table.row(
        "**WatDiv Avg**",
        watdiv_cols.iter().map(|c| fmt_ms(avg(c))).collect(),
    );
    table.row(
        "**WatDiv Geomean**",
        watdiv_cols.iter().map(|c| fmt_ms(geomean(c))).collect(),
    );

    (
        vec![table],
        json!({
            "experiment": "table5", "lubm_scale": args.scale, "watdiv_scale": args.scale,
            "runs": args.runs, "lubm_rows": json_rows,
            "watdiv_avg_ms": watdiv_cols.iter().map(|c| avg(c)).collect::<Vec<_>>(),
            "watdiv_geomean_ms": watdiv_cols.iter().map(|c| geomean(c)).collect::<Vec<_>>(),
            "strategies": labels,
        }),
    )
}

/// Table 6: adaptive-method decision counts plus the deterministic
/// memory-work counters comparing whole-array binary search with the
/// ID-to-Position index.
pub fn table6(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut engine = lubm_engine(args.scale, args.engine_config());
    let mut table = Table::new(
        format!(
            "Table 6 — searches chosen by the adaptive method and memory-work \
             counters (LUBM universities={}, 1 thread)",
            args.scale
        ),
        &[
            "#Binary",
            "#Sequential",
            "Binary: probe steps",
            "Binary: words",
            "Index: words",
            "Index/Binary words",
        ],
    );
    let mut json_rows = Vec::new();
    for q in lubm::queries() {
        let mut run = |s| {
            engine
                .request(&q.sparql)
                .threads(1)
                .strategy(s)
                .count_only()
                .run()
                .expect("run")
                .stats
        };
        // Decision counts under the paper's default AdBinary strategy.
        let ad = run(ProbeStrategy::AdaptiveBinary);
        // Memory work under forced binary vs forced index.
        let bin = run(ProbeStrategy::AlwaysBinary);
        let idx = run(ProbeStrategy::AlwaysIndex);
        let bin_words = bin.search.words_touched();
        let idx_words = idx.search.words_touched();
        let ratio = if bin_words > 0 {
            idx_words as f64 / bin_words as f64
        } else {
            1.0
        };
        table.row(
            &q.name,
            vec![
                ad.search.binary_searches.to_string(),
                ad.search.sequential_searches.to_string(),
                bin.search.binary_steps.to_string(),
                bin_words.to_string(),
                idx_words.to_string(),
                format!("{ratio:.2}"),
            ],
        );
        json_rows.push(json!({
            "query": q.name,
            "adaptive_binary_searches": ad.search.binary_searches,
            "adaptive_sequential_searches": ad.search.sequential_searches,
            "binary_run_steps": bin.search.binary_steps,
            "binary_run_words": bin_words,
            "index_run_words": idx_words,
        }));
    }
    // Extension beyond the paper's LUBM-only Table 6: the WatDiv mix
    // exercises the binary arm of the adaptive switch far more (chain
    // hops land on uncorrelated ids), so both decision outcomes are
    // visible.
    let mut wengine = watdiv_engine(args.scale, args.engine_config());
    let mut wtable = Table::new(
        format!(
            "Table 6b (extension) — adaptive decisions on the WatDiv mix \
             (scale={}, 1 thread)",
            args.scale
        ),
        &["#Binary", "#Sequential", "Binary: words", "Index: words"],
    );
    let mut wjson = Vec::new();
    for q in watdiv::basic_workload() {
        let mut run = |s| {
            wengine
                .request(&q.sparql)
                .threads(1)
                .strategy(s)
                .count_only()
                .run()
                .expect("run")
                .stats
        };
        let ad = run(ProbeStrategy::AdaptiveBinary);
        let bin = run(ProbeStrategy::AlwaysBinary);
        let idx = run(ProbeStrategy::AlwaysIndex);
        wtable.row(
            &q.name,
            vec![
                ad.search.binary_searches.to_string(),
                ad.search.sequential_searches.to_string(),
                bin.search.words_touched().to_string(),
                idx.search.words_touched().to_string(),
            ],
        );
        wjson.push(json!({
            "query": q.name,
            "adaptive_binary_searches": ad.search.binary_searches,
            "adaptive_sequential_searches": ad.search.sequential_searches,
            "binary_run_words": bin.search.words_touched(),
            "index_run_words": idx.search.words_touched(),
        }));
    }
    (
        vec![table, wtable],
        json!({
            "experiment": "table6", "dataset": "lubm", "scale": args.scale,
            "rows": json_rows, "watdiv_rows": wjson,
        }),
    )
}

/// Figure 2: execution time vs thread count on the LUBM queries (the
/// paper excludes the trivially-selective LUBM4–LUBM6).
pub fn fig2(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut engine = lubm_engine(args.scale, args.engine_config());
    let threads = [1usize, 2, 4, 8, 16];
    let labels: Vec<String> = threads.iter().map(|t| format!("{t} threads")).collect();
    let mut table = Table::new(
        format!(
            "Figure 2 — LUBM execution time vs threads (universities={}): ms",
            args.scale
        ),
        &labels.iter().map(|s| &**s).collect::<Vec<_>>(),
    );
    // Wall-clock only shows speedup when the host has that many cores;
    // the load-balance bound `sum(work)/max(work)` measures the shard
    // distribution itself (workers share nothing, so on ideal hardware
    // wall-clock tracks this bound). Both are reported.
    let mut bound_table = Table::new(
        format!(
            "Figure 2b — parallel work-balance speedup bound (universities={}, \
             host cores={})",
            args.scale,
            std::thread::available_parallelism().map_or(1, |n| n.get())
        ),
        &labels.iter().map(|s| &**s).collect::<Vec<_>>(),
    );
    let mut json_rows = Vec::new();
    for q in lubm::queries() {
        if matches!(q.name.as_str(), "LUBM4" | "LUBM5" | "LUBM6") {
            continue; // excluded in the paper's Figure 2
        }
        let mut cells = Vec::new();
        let mut times = Vec::new();
        let mut bounds = Vec::new();
        let mut bound_cells = Vec::new();
        for &t in &threads {
            let (ms, _) = parj_ms(&mut engine, &q.sparql, t, args.runs);
            cells.push(fmt_ms(ms));
            times.push(ms);
            let plans = engine
                .morsel_loads(&q.sparql, &RunOverrides::threads(t))
                .expect("benchmark query must run");
            // Plans run back-to-back; each contributes its own dynamic-
            // scheduling makespan bound max(total/K, max_morsel).
            let mut total_all = 0.0f64;
            let mut makespan = 0.0f64;
            for loads in &plans {
                let total: u64 = loads.iter().sum();
                let max_morsel = loads.iter().copied().max().unwrap_or(0);
                total_all += total as f64;
                makespan += (total as f64 / t as f64).max(max_morsel as f64);
            }
            let bound = if makespan > 0.0 { total_all / makespan } else { 1.0 };
            bounds.push(bound);
            bound_cells.push(format!("{bound:.2}x"));
        }
        table.row(&q.name, cells);
        bound_table.row(&q.name, bound_cells);
        json_rows.push(json!({
            "query": q.name, "threads": threads, "ms": times,
            "speedup_bound": bounds,
        }));
    }
    (
        vec![table, bound_table],
        json!({
            "experiment": "fig2", "dataset": "lubm", "scale": args.scale,
            "runs": args.runs,
            "host_cores": std::thread::available_parallelism().map_or(1, |n| n.get()),
            "rows": json_rows,
        }),
    )
}

/// Figure 3: execution time vs dataset size at full thread count
/// (the paper's ladder is 1280→10240 universities; ours is
/// `scale/8 → scale` in ×2 steps).
pub fn fig3(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let scales: Vec<usize> = {
        let s = args.scale.max(8);
        vec![s / 8, s / 4, s / 2, s]
    };
    let labels: Vec<String> = scales.iter().map(|s| format!("U={s}")).collect();
    let mut table = Table::new(
        format!(
            "Figure 3 — LUBM execution time vs dataset size ({} threads): ms",
            args.threads
        ),
        &labels.iter().map(|s| &**s).collect::<Vec<_>>(),
    );
    // Build all engines first (columns are datasets).
    let mut engines: Vec<Parj> = scales
        .iter()
        .map(|&u| lubm_engine(u, args.engine_config()))
        .collect();
    let mut json_rows = Vec::new();
    for q in lubm::queries() {
        if matches!(q.name.as_str(), "LUBM4" | "LUBM5" | "LUBM6") {
            continue;
        }
        let mut cells = Vec::new();
        let mut times = Vec::new();
        for e in engines.iter_mut() {
            let (ms, _) = parj_ms(e, &q.sparql, args.threads, args.runs);
            cells.push(fmt_ms(ms));
            times.push(ms);
        }
        table.row(&q.name, cells);
        json_rows.push(json!({ "query": q.name, "scales": scales, "ms": times }));
    }
    (
        vec![table],
        json!({
            "experiment": "fig3", "dataset": "lubm", "scales": scales,
            "threads": args.threads, "runs": args.runs, "rows": json_rows,
        }),
    )
}

/// Metrics-recording overhead: the same silent-mode LUBM workload with
/// the observability registry enabled (the default) and disabled
/// (`record_metrics: false`), reporting the relative difference. The
/// registry records with relaxed atomics on the per-query finalize
/// path, so the target envelope is ≤ 2 % on the workload total.
pub fn metrics_overhead(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut engine_on = lubm_engine(args.scale, args.engine_config());
    let mut cfg_off = args.engine_config();
    cfg_off.record_metrics = false;
    let mut engine_off = lubm_engine(args.scale, cfg_off);

    let mut table = Table::new(
        format!(
            "Metrics-recording overhead — LUBM U={}, {} threads, silent mode",
            args.scale, args.threads
        ),
        &["metrics on (ms)", "metrics off (ms)", "overhead"],
    );
    let mut json_rows = Vec::new();
    let (mut sum_on, mut sum_off) = (0.0f64, 0.0f64);
    for q in lubm::queries() {
        let (t_on, n_on) = parj_ms(&mut engine_on, &q.sparql, args.threads, args.runs);
        let (t_off, n_off) = parj_ms(&mut engine_off, &q.sparql, args.threads, args.runs);
        assert_eq!(n_on, n_off, "{}: metrics recording changed results", q.name);
        sum_on += t_on;
        sum_off += t_off;
        let pct = if t_off > 0.0 { (t_on / t_off - 1.0) * 100.0 } else { 0.0 };
        table.row(
            &q.name,
            vec![fmt_ms(t_on), fmt_ms(t_off), format!("{pct:+.1}%")],
        );
        json_rows.push(json!({
            "query": q.name, "on_ms": t_on, "off_ms": t_off, "overhead_pct": pct,
        }));
    }
    let agg = if sum_off > 0.0 { (sum_on / sum_off - 1.0) * 100.0 } else { 0.0 };
    table.row(
        "**Workload total**",
        vec![fmt_ms(sum_on), fmt_ms(sum_off), format!("{agg:+.1}%")],
    );
    (
        vec![table],
        json!({
            "experiment": "metrics_overhead", "dataset": "lubm",
            "scale": args.scale, "threads": args.threads, "runs": args.runs,
            "rows": json_rows, "workload_overhead_pct": agg,
        }),
    )
}

/// Runs a 90 %-repeat mix of one query (`repeats` consecutive runs:
/// one cold, the rest repeats) and returns total wall-clock ms plus
/// the (stable) count.
fn repeat_mix_ms(engine: &mut Parj, sparql: &str, threads: usize, repeats: usize) -> (f64, u64) {
    let mut count = 0;
    let t = std::time::Instant::now();
    for _ in 0..repeats {
        count = engine
            .request(sparql)
            .threads(threads)
            .count_only()
            .run()
            .expect("benchmark query must run")
            .count;
    }
    (t.elapsed().as_secs_f64() * 1e3, count)
}

/// Result/plan cache effect on a repeat-heavy workload: each LUBM
/// query runs 10 consecutive times — one cold miss plus nine repeats,
/// i.e. a 90 %-repeat mix — on a cache-enabled engine and on the stock
/// cache-off engine. Reported speedup is off/on wall time; counts are
/// asserted identical so the cache cannot buy speed with wrong
/// answers. Not a paper artifact: the caching layer is an extension,
/// measured here so its headline claim stays reproducible.
pub fn cache_effect(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut cfg_on = args.engine_config();
    cfg_on.cache = true;
    let mut engine_on = lubm_engine(args.scale, cfg_on);
    let mut engine_off = lubm_engine(args.scale, args.engine_config());

    // 1 cold + 9 repeats per query = the 90 %-repeat mix.
    const REPEATS: usize = 10;

    let mut table = Table::new(
        format!(
            "Result-cache effect — LUBM U={}, {} threads, {} runs/query (90 % repeats)",
            args.scale, args.threads, REPEATS
        ),
        &["cache off (ms)", "cache on (ms)", "speedup"],
    );
    let mut json_rows = Vec::new();
    let (mut sum_on, mut sum_off) = (0.0f64, 0.0f64);
    for q in lubm::queries() {
        let (t_off, n_off) = repeat_mix_ms(&mut engine_off, &q.sparql, args.threads, REPEATS);
        let (t_on, n_on) = repeat_mix_ms(&mut engine_on, &q.sparql, args.threads, REPEATS);
        assert_eq!(n_on, n_off, "{}: caching changed the answer", q.name);
        sum_on += t_on;
        sum_off += t_off;
        let speedup = if t_on > 0.0 { t_off / t_on } else { 0.0 };
        table.row(
            &q.name,
            vec![fmt_ms(t_off), fmt_ms(t_on), format!("{speedup:.1}x")],
        );
        json_rows.push(json!({
            "query": q.name, "off_ms": t_off, "on_ms": t_on,
            "speedup": speedup, "count": n_on,
        }));
    }
    let workload = if sum_on > 0.0 { sum_off / sum_on } else { 0.0 };
    table.row(
        "**Workload total**",
        vec![fmt_ms(sum_off), fmt_ms(sum_on), format!("{workload:.1}x")],
    );
    (
        vec![table],
        json!({
            "experiment": "cache_effect", "dataset": "lubm",
            "scale": args.scale, "threads": args.threads,
            "repeats_per_query": REPEATS, "repeat_share": 0.9,
            "rows": json_rows, "workload_speedup": workload,
        }),
    )
}

/// Bulk-load throughput: parses and stages a pre-generated LUBM
/// N-Triples document through the staged parallel pipeline at a
/// 1–8 thread ladder, reporting triples/second and speedup over the
/// single-thread run. The loaded store is byte-identical at every
/// thread count (asserted here), so the ladder measures pure pipeline
/// scaling.
pub fn load_throughput(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let cfg = lubm::LubmConfig {
        universities: args.scale,
        seed: lubm::LubmConfig::default().seed,
    };
    let mut bytes = Vec::new();
    lubm::write_ntriples(&cfg, &mut bytes).expect("in-memory write cannot fail");
    let text = String::from_utf8(bytes).expect("generator emits UTF-8");
    let n_triples = text.lines().filter(|l| !l.trim().is_empty()).count();

    let mut ladder: Vec<usize> = vec![1, 2, 4, 8];
    if !ladder.contains(&args.threads) {
        ladder.push(args.threads);
        ladder.sort_unstable();
    }

    let mut table = Table::new(
        format!("Bulk-load throughput — LUBM U={} ({} triples)", args.scale, n_triples),
        &["avg ms", "Mtriples/s", "speedup vs 1T"],
    );
    let mut json_rows = Vec::new();
    let mut base_ms = 0.0;
    let mut baseline_snapshot: Option<Vec<u8>> = None;
    for &threads in &ladder {
        let mut loaded = 0;
        let mut last: Option<Parj> = None;
        let m = measure_ms(args.runs, || {
            let mut engine = Parj::builder().load_threads(threads).build();
            loaded = engine
                .load_ntriples_str(&text)
                .expect("generated dataset parses");
            last = Some(engine);
        });
        let mut engine = last.expect("at least one run");
        let snapshot = engine.store().to_snapshot_bytes();
        match &baseline_snapshot {
            None => baseline_snapshot = Some(snapshot),
            Some(base) => assert_eq!(
                *base, snapshot,
                "store bytes diverged at {threads} load threads"
            ),
        }
        if threads == 1 {
            base_ms = m.avg_ms;
        }
        let mtps = loaded as f64 / (m.avg_ms / 1000.0) / 1.0e6;
        let speedup = if base_ms > 0.0 { base_ms / m.avg_ms } else { 1.0 };
        table.row(
            format!("{threads} thread(s)"),
            vec![fmt_ms(m.avg_ms), format!("{mtps:.2}"), format!("{speedup:.2}x")],
        );
        json_rows.push(json!({
            "threads": threads, "avg_ms": m.avg_ms, "min_ms": m.min_ms,
            "triples_per_sec": loaded as f64 / (m.avg_ms / 1000.0),
            "speedup_vs_1t": speedup, "loaded": loaded,
        }));
    }
    (
        vec![table],
        json!({
            "experiment": "load_throughput", "dataset": "lubm",
            "scale_universities": args.scale, "triples": n_triples,
            "runs": args.runs,
            "hardware_available_parallelism":
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            "rows": json_rows,
        }),
    )
}

/// Write throughput of the delta store: small `mutate()` batches landing
/// in the per-predicate delta overlay vs the legacy rebuild-per-batch
/// path (re-stage the whole store, then rebuild CSR replicas and
/// statistics), both against the same large LUBM base. The second table
/// measures the read-side cost of a resident delta: a predicate scan
/// through the merged (base ∪ delta) view against the same scan after
/// folding.
pub fn delta(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let mut delta_engine = lubm_engine(args.scale, args.engine_config());
    let mut rebuild_engine = lubm_engine(args.scale, args.engine_config());
    let base_triples = delta_engine.num_triples();
    assert_eq!(rebuild_engine.num_triples(), base_triples);
    let pred = format!("{}emailAddress", lubm::NS);

    // Fresh-subject insert batches; `tag` keeps the two engines' key
    // spaces disjoint so every applied triple is a real insert.
    let batch_terms = |tag: &str, batch: usize, size: usize| -> Vec<(Term, Term, Term)> {
        (0..size)
            .map(|i| {
                (
                    Term::iri(format!("http://delta.example/{tag}/b{batch}/s{i}")),
                    Term::iri(pred.clone()),
                    Term::literal(format!("addr-{batch}-{i}")),
                )
            })
            .collect()
    };
    let batch_nt = |tag: &str, batch: usize, size: usize| -> String {
        (0..size)
            .map(|i| {
                format!(
                    "<http://delta.example/{tag}/b{batch}/s{i}> <{pred}> \"addr-{batch}-{i}\" .\n"
                )
            })
            .collect()
    };

    // Full rebuilds are seconds each at this scale; cap their
    // repetitions so the sweep stays bounded.
    let rebuild_runs = args.runs.clamp(1, 2);

    let mut write_table = Table::new(
        format!(
            "Delta write throughput — mutate() vs rebuild-per-batch (LUBM U={}, {} base triples)",
            args.scale, base_triples
        ),
        &["mutate() ms", "rebuild ms", "speedup", "µs/triple (mutate)"],
    );
    let mut json_rows = Vec::new();
    let mut delta_batches = 0usize;
    let mut rebuild_batches = 0usize;
    let mut delta_expected = base_triples;
    let mut rebuild_expected = base_triples;
    let mut compactions_total = 0u64;
    for batch_size in [10usize, 100, 1000] {
        let mut last_outcome = None;
        let m_delta = measure_ms(args.runs, || {
            let out = delta_engine
                .mutate()
                .insert_all(batch_terms("d", delta_batches, batch_size))
                .run()
                .expect("mutation batch applies");
            assert_eq!(out.inserted as usize, batch_size, "all fresh subjects insert");
            delta_batches += 1;
            compactions_total += out.compactions;
            last_outcome = Some(out);
        });
        let out = last_outcome.expect("at least one batch ran");
        delta_expected += (args.runs.max(1) + 1) * batch_size; // runs + warm-up

        let mut rebuilt_triples = 0;
        let m_rebuild = measure_ms(rebuild_runs, || {
            let nt = batch_nt("r", rebuild_batches, batch_size);
            rebuild_engine
                .load_ntriples_str(&nt)
                .expect("batch parses");
            rebuilt_triples = rebuild_engine.num_triples(); // forces the full rebuild
            rebuild_batches += 1;
        });

        let speedup = m_rebuild.avg_ms / m_delta.avg_ms.max(1e-6);
        write_table.row(
            format!("batch of {batch_size}"),
            vec![
                fmt_ms(m_delta.avg_ms),
                fmt_ms(m_rebuild.avg_ms),
                format!("{speedup:.0}x"),
                format!("{:.1}", m_delta.avg_ms * 1000.0 / batch_size as f64),
            ],
        );
        json_rows.push(json!({
            "batch_size": batch_size,
            "delta_avg_ms": m_delta.avg_ms, "delta_min_ms": m_delta.min_ms,
            "rebuild_avg_ms": m_rebuild.avg_ms, "rebuild_min_ms": m_rebuild.min_ms,
            "rebuild_runs": rebuild_runs,
            "speedup": speedup,
            "delta_resident_pairs_after": out.delta_resident_pairs,
            "delta_bytes_after": out.delta_bytes,
        }));
        rebuild_expected += (rebuild_runs + 1) * batch_size; // runs + warm-up
        assert_eq!(
            rebuilt_triples, rebuild_expected,
            "rebuild engine sees every staged triple"
        );
    }
    assert_eq!(
        delta_engine.num_triples(),
        delta_expected,
        "merged view sees every mutated triple"
    );

    // Read-side overhead: the same predicate scan with the delta
    // resident, then after folding it into a fresh store build.
    let scan = format!("SELECT ?s ?o WHERE {{ ?s <{pred}> ?o }}");
    let mut resident_count = 0;
    let m_resident = measure_ms(args.runs, || {
        resident_count = delta_engine
            .request(&scan)
            .count_only()
            .run()
            .expect("scan runs")
            .count;
    });
    delta_engine
        .load_ntriples_str("")
        .expect("empty stage folds the delta");
    let mut folded_count = 0;
    let m_folded = measure_ms(args.runs, || {
        folded_count = delta_engine
            .request(&scan)
            .count_only()
            .run()
            .expect("scan runs")
            .count;
    });
    assert_eq!(resident_count, folded_count, "folding must not change answers");

    let mut read_table = Table::new(
        format!("Predicate-scan cost with delta resident vs folded ({resident_count} results)"),
        &["scan ms"],
    );
    read_table.row("delta resident", vec![fmt_ms(m_resident.avg_ms)]);
    read_table.row("folded (compacted)", vec![fmt_ms(m_folded.avg_ms)]);

    (
        vec![write_table, read_table],
        json!({
            "experiment": "delta", "dataset": "lubm",
            "scale_universities": args.scale, "base_triples": base_triples,
            "runs": args.runs, "threads": args.threads,
            "hardware_available_parallelism":
                std::thread::available_parallelism().map_or(1, |n| n.get()),
            "rows": json_rows,
            "compactions_total": compactions_total,
            "read_overhead": {
                "scan_results": resident_count,
                "resident_avg_ms": m_resident.avg_ms,
                "folded_avg_ms": m_folded.avg_ms,
            },
        }),
    )
}
