//! # parj-bench — the experiment harness
//!
//! One binary per paper artifact regenerates the corresponding table or
//! figure of the PARJ paper (Bilidas & Koubarakis, EDBT 2019):
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table 2 — LUBM, single- and multi-thread engine comparison |
//! | `table3` | Table 3 — WatDiv basic workload (L/S/F/C) |
//! | `table4` | Table 4 — WatDiv incremental & mixed linear workloads |
//! | `table5` | Table 5 — impact of adaptive processing (Binary/AdBinary/Index/AdIndex) |
//! | `table6` | Table 6 — search counts and memory-work counters, binary vs index |
//! | `fig2`   | Figure 2 — LUBM execution time vs thread count |
//! | `fig3`   | Figure 3 — execution time vs dataset size |
//! | `load_throughput` | bulk-load pipeline scaling across load threads (not a paper artifact) |
//! | `delta` | write throughput: `mutate()` delta batches vs rebuild-per-batch (not a paper artifact) |
//! | `metrics_overhead` | observability-registry recording cost, on vs off (not a paper artifact) |
//! | `serve` | closed-loop HTTP serving: qps/p50/p99 vs client count + overload (not a paper artifact) |
//! | `pool` | persistent-pool vs spawn-per-query dispatch at 8 clients (not a paper artifact) |
//! | `locks` | ordered-lock wrapper overhead guardrail + per-level lock-wait profile (not a paper artifact) |
//! | `compress` | replica block-compression: bytes/triple + probe throughput, raw vs packed (not a paper artifact) |
//! | `run_all`| everything above, with outputs under `results/` |
//!
//! Every binary accepts `--scale N` (dataset size), `--runs N`
//! (repetitions per query; the paper uses 10 and reports the average),
//! `--threads N` (multi-thread column width) and `--out DIR` (defaults
//! to `results/`). Outputs are a Markdown table on stdout plus
//! `DIR/<artifact>.md` and machine-readable `DIR/<artifact>.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod compress;
pub mod experiments;
pub mod locks;
pub mod report;
pub mod serve;
pub mod setup;
pub mod timing;

pub use report::{write_outputs, Table};
pub use setup::{encode_bgp, lubm_engine, watdiv_engine, Args};
pub use timing::{avg, geomean, measure_ms, Measurement};

/// Per-experiment default dataset scale, balancing fidelity against a
/// few-minute total runtime for `run_all` (override with `--scale`).
pub fn default_scale(experiment: &str) -> usize {
    match experiment {
        // LUBM scales are university counts (~17 k triples each).
        "table2" => 10,
        "table5" | "table6" => 6,
        "fig2" => 10,
        "fig3" => 16, // ladder 2, 4, 8, 16
        "ablation" => 4,
        // ~17 k triples per university: 60 ≈ a 1 M-triple load.
        "load_throughput" => 60,
        // Write batches against a >1 M-triple base (66 universities ≈
        // 1.0 M triples); rebuild-per-batch dominates the runtime, so
        // the sweep caps its repetitions.
        "delta" => 66,
        "metrics_overhead" => 6,
        "cache_effect" => 6,
        // HTTP closed-loop serving sweep: a small store keeps the
        // per-request work bounded while clients stack up.
        "serve" => 4,
        // Pool-vs-spawn dispatch on selective queries: same small
        // store; per-request overhead is the measured quantity.
        "pool" => 4,
        // Lock-overhead guardrail: the microbench dominates; the
        // closed-loop phase only needs enough data to exercise the
        // pool locks.
        "locks" => 4,
        // Replica compression: the memory claim needs a ~1 M-triple
        // base (60 universities ≈ 17 k triples each) so block and
        // skip-table overheads are measured at a realistic run-length
        // distribution, not on toy runs.
        "compress" => 60,
        // WatDiv scales are ~2.5 k-triple units.
        "table3" => 40,
        "table4" => 20,
        _ => 10,
    }
}
