//! Lock-hierarchy overhead guardrail (`results/locks.md`,
//! `BENCH_locks.json`).
//!
//! Two phases:
//!
//! 1. **Uncontended microbench.** Acquire/release a raw `parking_lot`
//!    mutex and the level-carrying [`OrderedMutex`] back to back. In
//!    release builds the witness compiles out, so the wrapper must
//!    cost no more than a branch over the raw lock — the bench
//!    *asserts* the per-op delta stays within noise, so a future
//!    change that accidentally puts clock reads or bookkeeping on the
//!    uncontended fast path fails the run instead of shipping a
//!    hot-path regression.
//! 2. **Closed-loop pooled phase.** The selective-query pool workload
//!    from the `pool` bench, run in-process on a pooled engine, then
//!    the engine's own `parj_lock_wait_micros{level}` family is read
//!    off the metrics snapshot — the same numbers an operator sees —
//!    and reported per hierarchy level next to total wall time.
//!
//! [`OrderedMutex`]: parj_sync::OrderedMutex

use std::hint::black_box;

use parj_datagen::lubm;
use parj_obs::SampleValue;
use parj_sync::{LockLevel, Mutex, OrderedMutex, OrderedRwLock, RwLock};
use serde_json::json;

use crate::report::Table;
use crate::setup::{lubm_engine, Args};

/// Acquire/release pairs per timing run: long enough that one run is
/// milliseconds (timer quantization invisible), short enough to repeat.
const MICRO_ITERS: usize = 2_000_000;

/// Timing runs per primitive; the minimum is reported (noise on a
/// shared runner only ever adds time).
const MICRO_RUNS: usize = 3;

/// Selective LUBM queries (mirrors the `pool` bench mix) and how many
/// closed-loop passes to drive through the pooled engine.
const QUERY_MIX: [&str; 4] = ["LUBM1", "LUBM4", "LUBM5", "LUBM6"];
const MIX_PASSES: usize = 24;

/// Best-of-runs nanoseconds per op for `f`.
fn per_op_ns<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MICRO_RUNS {
        let t = std::time::Instant::now();
        for _ in 0..MICRO_ITERS {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / MICRO_ITERS as f64);
    }
    best
}

/// Lock-overhead guardrail: asserts the ordered wrappers' uncontended
/// cost stays within noise of the raw locks (release builds), then
/// profiles `parj_lock_wait_micros{level}` over a pooled closed loop.
pub fn locks(args: &Args) -> (Vec<Table>, serde_json::Value) {
    // Phase 1 — uncontended acquire/release, raw vs ordered.
    let raw = Mutex::new(0u64);
    let raw_ns = per_op_ns(|| *black_box(&raw).lock() += 1);
    // Metrics is the hierarchy floor, legal to take anywhere — the
    // debug-build witness stays happy if this bench runs unoptimized.
    let ordered = OrderedMutex::new(LockLevel::Metrics, "bench.micro_mutex", 0u64);
    let ordered_ns = per_op_ns(|| *black_box(&ordered).lock() += 1);

    let raw_rw = RwLock::new(0u64);
    let raw_read_ns = per_op_ns(|| {
        black_box(*black_box(&raw_rw).read());
    });
    let ordered_rw = OrderedRwLock::new(LockLevel::Metrics, "bench.micro_rwlock", 0u64);
    let ordered_read_ns = per_op_ns(|| {
        black_box(*black_box(&ordered_rw).read());
    });

    let mutex_delta = ordered_ns - raw_ns;
    let read_delta = ordered_read_ns - raw_read_ns;
    // The guardrail: release builds compile the witness out, leaving a
    // try_lock branch. A clock read is ~20-30 ns — if bookkeeping ever
    // lands on the uncontended path, this trips long before profiles
    // notice. Debug builds run the full witness, where overhead is the
    // point, so the assertion only arms in release.
    let guardrail_armed = !cfg!(debug_assertions);
    if guardrail_armed {
        assert!(
            ordered_ns <= raw_ns * 2.0 + 25.0,
            "OrderedMutex uncontended overhead out of noise range: \
             raw {raw_ns:.1} ns/op vs ordered {ordered_ns:.1} ns/op"
        );
        assert!(
            ordered_read_ns <= raw_read_ns * 2.0 + 25.0,
            "OrderedRwLock::read uncontended overhead out of noise range: \
             raw {raw_read_ns:.1} ns/op vs ordered {ordered_read_ns:.1} ns/op"
        );
    }

    let mut micro = Table::new(
        format!(
            "Ordered-wrapper overhead — uncontended acquire/release, best of \
             {MICRO_RUNS}×{MICRO_ITERS} ops{}",
            if guardrail_armed { " (guardrail asserted)" } else { " (debug build, informational)" }
        ),
        &["raw (ns/op)", "ordered (ns/op)", "delta (ns/op)"],
    );
    micro.row(
        "Mutex lock+unlock",
        vec![
            format!("{raw_ns:.1}"),
            format!("{ordered_ns:.1}"),
            format!("{mutex_delta:+.1}"),
        ],
    );
    micro.row(
        "RwLock read+unlock",
        vec![
            format!("{raw_read_ns:.1}"),
            format!("{ordered_read_ns:.1}"),
            format!("{read_delta:+.1}"),
        ],
    );

    // Phase 2 — pooled closed loop; read the lock-wait family back off
    // the engine's own snapshot.
    let mut cfg = args.engine_config();
    cfg.threads = 2;
    cfg.cache = false;
    cfg.use_pool = true;
    // Same tuning as the `pool` bench: small morsels and no
    // small-query short-circuit keep the selective queries genuinely
    // multi-worker, i.e. actually contending on the pool locks.
    cfg.morsel_size = 64;
    cfg.small_query_threshold = 0;
    let mut engine = lubm_engine(args.scale, cfg);

    let queries: Vec<_> = lubm::queries()
        .into_iter()
        .filter(|q| QUERY_MIX.contains(&q.name.as_str()))
        .collect();
    assert_eq!(queries.len(), QUERY_MIX.len(), "locks mix names must resolve");

    let wall = std::time::Instant::now();
    for _ in 0..MIX_PASSES {
        for q in &queries {
            engine
                .request(&q.sparql)
                .threads(2)
                .count_only()
                .run()
                .expect("benchmark query must run");
        }
    }
    let wall_micros = wall.elapsed().as_micros() as u64;

    let snapshot = engine.metrics_snapshot();
    let mut waits: Vec<(String, u64)> = Vec::new();
    for family in &snapshot.families {
        if family.name != "parj_lock_wait_micros" {
            continue;
        }
        for sample in &family.samples {
            if let SampleValue::Integer(v) = sample.value {
                let level = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "level")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                waits.push((level, v));
            }
        }
    }
    let total_wait: u64 = waits.iter().map(|(_, v)| v).sum();

    let mut wait_table = Table::new(
        format!(
            "Lock-wait by hierarchy level — pooled closed loop, {MIX_PASSES} passes × \
             {} selective LUBM queries (U={}, 2 threads, morsel 64, cache off)",
            QUERY_MIX.len(),
            args.scale
        ),
        &["wait (µs)", "share of wall"],
    );
    for (level, v) in &waits {
        wait_table.row(
            level,
            vec![
                v.to_string(),
                format!("{:.3}%", *v as f64 / wall_micros.max(1) as f64 * 100.0),
            ],
        );
    }
    wait_table.separator();
    wait_table.row(
        "**total**",
        vec![
            total_wait.to_string(),
            format!("{:.3}%", total_wait as f64 / wall_micros.max(1) as f64 * 100.0),
        ],
    );
    wait_table.row("wall time (µs)", vec![wall_micros.to_string(), String::new()]);

    let mut waits_json = serde_json::Map::new();
    for (l, v) in &waits {
        waits_json.insert(l.clone(), json!(v));
    }
    (
        vec![micro, wait_table],
        json!({
            "experiment": "locks", "dataset": "lubm", "scale": args.scale,
            "micro": {
                "iters": MICRO_ITERS, "runs": MICRO_RUNS,
                "mutex_raw_ns": raw_ns, "mutex_ordered_ns": ordered_ns,
                "rwlock_read_raw_ns": raw_read_ns, "rwlock_read_ordered_ns": ordered_read_ns,
                "guardrail_armed": guardrail_armed,
                "guardrail": "ordered <= raw * 2 + 25 ns/op, both primitives",
            },
            "closed_loop": {
                "query_mix": QUERY_MIX, "passes": MIX_PASSES,
                "threads_per_query": 2, "morsel_size": 64,
                "wall_micros": wall_micros,
                "lock_wait_micros_by_level": serde_json::Value::Object(waits_json),
                "total_lock_wait_micros": total_wait,
            },
        }),
    )
}
