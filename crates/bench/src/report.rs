//! Markdown/JSON experiment reporting.

use std::io::Write;
use std::path::Path;

/// A simple named-rows table rendered as GitHub Markdown.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table heading.
    pub title: String,
    /// Column names (first column is the row label).
    pub columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// New table with a title and column names (excluding the label
    /// column).
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Appends a visual separator row.
    pub fn separator(&mut self) {
        self.rows
            .push(("—".into(), vec![String::new(); self.columns.len()]));
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn markdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "### {}\n", self.title).expect("write");
        writeln!(out, "| query | {} |", self.columns.join(" | ")).expect("write");
        writeln!(
            out,
            "|---|{}|",
            self.columns.iter().map(|_| "---:").collect::<Vec<_>>().join("|")
        )
        .expect("write");
        for (label, cells) in &self.rows {
            writeln!(out, "| {label} | {} |", cells.join(" | ")).expect("write");
        }
        out
    }

    /// Rows as `(label, cells)` pairs (for JSON emission).
    pub fn rows(&self) -> &[(String, Vec<String>)] {
        &self.rows
    }
}

/// Milliseconds formatter: ≥10 ms as integers (like the paper's
/// tables), below that with enough digits to stay informative.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 10.0 {
        format!("{ms:.0}")
    } else if ms >= 0.1 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.3}")
    }
}

/// Writes `<out>/<name>.md` and `<out>/<name>.json`, then prints the
/// Markdown to stdout.
pub fn write_outputs(out_dir: &Path, name: &str, tables: &[Table], json: serde_json::Value) {
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let md: String = tables
        .iter()
        .map(Table::markdown)
        .collect::<Vec<_>>()
        .join("\n");
    print!("{md}");
    let mut f = std::fs::File::create(out_dir.join(format!("{name}.md"))).expect("create md");
    f.write_all(md.as_bytes()).expect("write md");
    let mut f = std::fs::File::create(out_dir.join(format!("{name}.json"))).expect("create json");
    f.write_all(serde_json::to_string_pretty(&json).expect("serialize").as_bytes())
        .expect("write json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.row("q1", vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| query | A | B |"));
        assert!(md.contains("| q1 | 1 | 2 |"));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(fmt_ms(1234.5), "1234"); // {:.0} rounds half-to-even
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(0.0123), "0.012");
    }
}
