//! Closed-loop HTTP serving benchmark over an in-process
//! [`parj_server::ParjServer`].
//!
//! Two phases (see EXPERIMENTS.md):
//!
//! 1. **Throughput sweep** — `1, 2, 4, 8` closed-loop clients issue the
//!    LUBM query mix over real sockets against a server with enough
//!    permits that nothing sheds; reported per configuration: qps, p50
//!    and p99 request latency, with the shared result cache off and on.
//! 2. **Overload run** — 8 clients against 2 permits with per-request
//!    cache bypass, verifying the load-shedding contract under
//!    saturation: every request answers 200 or 429, and the in-flight
//!    gauge drains to zero afterwards.
//!
//! A third entry point, [`pool`], reuses the same closed-loop harness
//! to compare the engine's persistent worker pool against
//! spawn-per-query dispatch on a selective-query mix.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parj_core::SharedParj;
use parj_datagen::lubm;
use parj_server::{ParjServer, ServerConfig};
use serde_json::json;

use crate::report::fmt_ms;
use crate::setup::lubm_engine;
use crate::{Args, Table};

/// Requests each closed-loop client issues per configuration.
const REQUESTS_PER_CLIENT: usize = 24;

/// Client ladder for the throughput sweep.
const CLIENT_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Overload phase shape: `OVERLOAD_CLIENTS` against `OVERLOAD_PERMITS`.
const OVERLOAD_PERMITS: usize = 2;
const OVERLOAD_CLIENTS: usize = 8;

/// Minimal percent-encoder for the query string.
fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 3);
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Issues one `GET` over a fresh connection; returns the status code.
fn http_get(addr: SocketAddr, path: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("set read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("write request");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    std::str::from_utf8(&raw)
        .ok()
        .and_then(|head| head.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("well-formed status line")
}

/// `p`-th percentile (0..=100) of an unsorted sample, in milliseconds.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = (p / 100.0 * (samples.len() - 1) as f64).round() as usize;
    samples[rank.min(samples.len() - 1)]
}

/// One sweep configuration: `clients` closed loops against `server`,
/// each issuing [`REQUESTS_PER_CLIENT`] requests cycling through the
/// query mix. Returns `(qps, p50_ms, p99_ms, statuses)`.
fn run_clients(
    addr: SocketAddr,
    clients: usize,
    paths: &[String],
) -> (f64, f64, f64, Vec<u16>) {
    let wall = Instant::now();
    let per_client: Vec<(Vec<f64>, Vec<u16>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    let mut statuses = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for i in 0..REQUESTS_PER_CLIENT {
                        // Offset per client so loops don't run in lockstep.
                        let path = &paths[(c + i) % paths.len()];
                        let t0 = Instant::now();
                        statuses.push(http_get(addr, path));
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    (lat, statuses)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client must not panic"))
            .collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = per_client.iter().flat_map(|(l, _)| l.clone()).collect();
    let statuses: Vec<u16> = per_client.into_iter().flat_map(|(_, s)| s).collect();
    let qps = statuses.len() as f64 / wall_s;
    let p50 = percentile(&mut latencies, 50.0);
    let p99 = percentile(&mut latencies, 99.0);
    (qps, p50, p99, statuses)
}

/// The serve benchmark (see module docs). One table per phase; the JSON
/// record mirrors both.
pub fn serve(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let queries = lubm::queries();
    let paths: Vec<String> = queries
        .iter()
        .map(|q| format!("/sparql?query={}", urlencode(&q.sparql)))
        .collect();
    let bypass_paths: Vec<String> =
        paths.iter().map(|p| format!("{p}&no-cache=1")).collect();

    let mut sweep = Table::new(
        format!(
            "Serve throughput — LUBM U={}, {} queries/client, permits = clients",
            args.scale, REQUESTS_PER_CLIENT
        ),
        &["cache", "qps", "p50 (ms)", "p99 (ms)"],
    );
    let mut sweep_rows = Vec::new();

    for cache in [false, true] {
        // One engine thread per query: concurrency comes from the
        // admission gate, not from intra-query parallelism.
        let mut cfg = args.engine_config();
        cfg.threads = 1;
        cfg.cache = cache;
        let engine = Arc::new(SharedParj::new(lubm_engine(args.scale, cfg)));

        for clients in CLIENT_LADDER {
            let mut server = ParjServer::spawn(
                Arc::clone(&engine),
                ServerConfig {
                    permits: clients,
                    max_connections: 4 * clients.max(8),
                    ..ServerConfig::default()
                },
            )
            .expect("bind ephemeral bench port");
            let addr = server.addr();
            // Warm: one pass over the mix (fills the cache when on).
            for p in &paths {
                assert_eq!(http_get(addr, p), 200, "warm-up must succeed");
            }
            let (qps, p50, p99, statuses) = run_clients(addr, clients, &paths);
            assert!(
                statuses.iter().all(|&s| s == 200),
                "sweep is sized to never shed"
            );
            let report = server.shutdown();
            assert_eq!(report.leaked, 0, "bench server must drain clean");
            sweep.row(
                format!("{clients} client(s)"),
                vec![
                    if cache { "on" } else { "off" }.to_string(),
                    format!("{qps:.0}"),
                    fmt_ms(p50),
                    fmt_ms(p99),
                ],
            );
            sweep_rows.push(json!({
                "clients": clients, "cache": cache, "qps": qps,
                "p50_ms": p50, "p99_ms": p99,
                "requests": clients * REQUESTS_PER_CLIENT,
            }));
        }
    }

    // Overload: more clients than permits, per-request cache bypass so
    // every accepted request does real work.
    let mut cfg = args.engine_config();
    cfg.threads = 1;
    cfg.cache = false;
    let engine = Arc::new(SharedParj::new(lubm_engine(args.scale, cfg)));
    let mut server = ParjServer::spawn(
        Arc::clone(&engine),
        ServerConfig {
            permits: OVERLOAD_PERMITS,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral bench port");
    let addr = server.addr();
    let (qps, p50, p99, statuses) = run_clients(addr, OVERLOAD_CLIENTS, &bypass_paths);
    let oks = statuses.iter().filter(|&&s| s == 200).count();
    let sheds = statuses.iter().filter(|&&s| s == 429).count();
    assert_eq!(
        oks + sheds,
        statuses.len(),
        "overload answers are only ever 200 or 429"
    );
    let inflight = {
        // Scrape the gauge off the still-running server.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
            .expect("write");
        let mut body = String::new();
        let _ = stream.read_to_string(&mut body);
        body.lines()
            .find(|l| l.starts_with("parj_server_inflight "))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok())
            .expect("inflight gauge present")
    };
    assert_eq!(inflight, 0, "gauge must drain to zero after overload");
    let report = server.shutdown();
    assert_eq!(report.leaked, 0, "overload drain must leak nothing");

    let mut overload = Table::new(
        format!(
            "Overload — {OVERLOAD_CLIENTS} clients vs {OVERLOAD_PERMITS} permits, cache bypassed"
        ),
        &["served (200)", "shed (429)", "accepted qps", "p50 (ms)", "p99 (ms)"],
    );
    overload.row(
        "overload",
        vec![
            oks.to_string(),
            sheds.to_string(),
            format!("{:.0}", qps * oks as f64 / statuses.len().max(1) as f64),
            fmt_ms(p50),
            fmt_ms(p99),
        ],
    );

    (
        vec![sweep, overload],
        json!({
            "experiment": "serve", "dataset": "lubm", "scale": args.scale,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "query_mix": queries.iter().map(|q| q.name.clone()).collect::<Vec<_>>(),
            "sweep": sweep_rows,
            "overload": {
                "clients": OVERLOAD_CLIENTS, "permits": OVERLOAD_PERMITS,
                "served": oks, "shed": sheds,
                "p50_ms": p50, "p99_ms": p99,
                "inflight_after": inflight,
                "leaked": report.leaked,
            },
        }),
    )
}

/// Selective LUBM queries (few-ms answers) for the pool dispatch bench:
/// small enough that per-query thread churn is a visible fraction of
/// the work.
const POOL_MIX: [&str; 4] = ["LUBM1", "LUBM4", "LUBM5", "LUBM6"];

/// Clients for the pool dispatch comparison (the ISSUE's 8-client
/// closed loop).
const POOL_CLIENTS: usize = 8;

/// Scrapes one `parj_pool_*`/`parj_exec_*` counter off `/metrics`.
fn scrape_counter(addr: SocketAddr, family: &str) -> Option<u64> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .ok()?;
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    body.lines()
        .find(|l| l.starts_with(family) && l.as_bytes().get(family.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Sums every labelled sample of `family` off `/metrics` (e.g.
/// `parj_lock_wait_micros{level="pool_state"} 12`).
fn scrape_labelled_sum(addr: SocketAddr, family: &str) -> u64 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    if stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .is_err()
    {
        return 0;
    }
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    body.lines()
        .filter(|l| l.starts_with(family) && l.as_bytes().get(family.len()) == Some(&b'{'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}

/// Pool dispatch benchmark: the same selective-query closed loop run
/// twice — once against an engine whose queries submit to the
/// persistent worker pool, once against one that spawns fresh scoped
/// threads per query. Both engines use 2 worker threads per query, a
/// small morsel size (so multi-worker dispatch actually engages on
/// selective queries), and no cache, so the only difference is how
/// worker threads are provisioned.
pub fn pool(args: &Args) -> (Vec<Table>, serde_json::Value) {
    let queries = lubm::queries();
    let paths: Vec<String> = queries
        .iter()
        .filter(|q| POOL_MIX.contains(&q.name.as_str()))
        .map(|q| format!("/sparql?query={}", urlencode(&q.sparql)))
        .collect();
    assert_eq!(paths.len(), POOL_MIX.len(), "pool mix names must resolve");

    let mut table = Table::new(
        format!(
            "Pool dispatch — {POOL_CLIENTS} clients × {} selective LUBM queries (U={}, \
             2 threads/query, morsel size 64, cache off)",
            REQUESTS_PER_CLIENT, args.scale
        ),
        &["qps", "p50 (ms)", "p99 (ms)", "pool jobs", "helper joins", "lock wait (µs)"],
    );

    let mut rows = serde_json::Map::new();
    let mut qps_by_mode = [0.0f64; 2];
    for (i, pooled) in [true, false].into_iter().enumerate() {
        let mut cfg = args.engine_config();
        cfg.threads = 2;
        cfg.cache = false;
        cfg.use_pool = pooled;
        // Selective queries have small driver domains: a small morsel
        // and a zero small-query threshold keep both dispatch paths
        // genuinely multi-worker instead of collapsing to inline
        // single-thread runs.
        cfg.morsel_size = 64;
        cfg.small_query_threshold = 0;
        let engine = Arc::new(SharedParj::new(lubm_engine(args.scale, cfg)));
        let mut server = ParjServer::spawn(
            Arc::clone(&engine),
            ServerConfig {
                permits: POOL_CLIENTS,
                max_connections: 4 * POOL_CLIENTS,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral bench port");
        let addr = server.addr();
        for p in &paths {
            assert_eq!(http_get(addr, p), 200, "warm-up must succeed");
        }
        let (qps, p50, p99, statuses) = run_clients(addr, POOL_CLIENTS, &paths);
        assert!(statuses.iter().all(|&s| s == 200), "pool bench never sheds");
        let jobs = scrape_counter(addr, "parj_pool_jobs_total").unwrap_or(0);
        let helper_joins = scrape_counter(addr, "parj_pool_helper_joins_total").unwrap_or(0);
        // Cross-level sum of parj_lock_wait_micros{level}: the ordered
        // wrappers' contention, observed through the same exposition an
        // operator would scrape (the `locks` bench breaks it down).
        let lock_wait = scrape_labelled_sum(addr, "parj_lock_wait_micros");
        let report = server.shutdown();
        assert_eq!(report.leaked, 0, "bench server must drain clean");
        if pooled {
            assert!(jobs > 0, "pooled mode must actually submit pool jobs");
        }
        qps_by_mode[i] = qps;
        table.row(
            if pooled { "pooled" } else { "spawn-per-query" },
            vec![
                format!("{qps:.0}"),
                fmt_ms(p50),
                fmt_ms(p99),
                jobs.to_string(),
                helper_joins.to_string(),
                lock_wait.to_string(),
            ],
        );
        rows.insert(
            if pooled { "pooled" } else { "spawn" }.to_string(),
            json!({
                "qps": qps, "p50_ms": p50, "p99_ms": p99,
                "requests": POOL_CLIENTS * REQUESTS_PER_CLIENT,
                "pool_jobs": jobs, "helper_joins": helper_joins,
                "lock_wait_micros": lock_wait,
            }),
        );
    }
    let speedup = qps_by_mode[0] / qps_by_mode[1].max(f64::MIN_POSITIVE);
    table.row("speedup (pooled/spawn)", vec![
        format!("{speedup:.2}x"),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);

    (
        vec![table],
        json!({
            "experiment": "pool", "dataset": "lubm", "scale": args.scale,
            "clients": POOL_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "query_mix": POOL_MIX,
            "threads_per_query": 2,
            "morsel_size": 64,
            "modes": serde_json::Value::Object(rows),
            "qps_speedup_pooled_over_spawn": speedup,
            "hardware_note": format!(
                "run on a {}-core host; the paper-shaped ≥2x pooled-dispatch gain \
                 needs a multicore machine where spawn-per-query thread churn \
                 contends with query work — on a single-CPU container the two \
                 modes converge",
                std::thread::available_parallelism().map_or(1, |n| n.get())
            ),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_order_insensitive() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut s, 50.0), 3.0);
        assert_eq!(percentile(&mut s, 100.0), 5.0);
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn urlencode_round_trips_through_the_server_parser() {
        let q = "SELECT ?x WHERE { ?x <http://e/p> \"a b\" }";
        let params =
            parj_server::http::parse_urlencoded(format!("query={}", urlencode(q)).as_bytes())
                .expect("decodes");
        assert_eq!(params[0].1, q);
    }
}
