//! Engine construction and CLI plumbing shared by the experiment
//! binaries.

use std::path::PathBuf;

use parj_core::{EngineConfig, Parj, ProbeStrategy};
use parj_datagen::{lubm, watdiv};
use parj_join::Atom;
use parj_optimizer::Pattern;
use parj_sparql::{parse_query, STerm};

/// Command-line arguments common to every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset scale (LUBM: universities; WatDiv: scale units).
    pub scale: usize,
    /// Repetitions per query (paper: 10).
    pub runs: usize,
    /// Threads for the multi-thread columns (paper: 32 on a 16-core
    /// machine with hyper-threading). Defaults to available parallelism.
    pub threads: usize,
    /// Output directory for `.md`/`.json` artifacts.
    pub out: PathBuf,
    /// Run Algorithm 2's timed calibration instead of the paper's
    /// default windows.
    pub calibrate: bool,
}

impl Args {
    /// Parses `--scale N --runs N --threads N --out DIR --calibrate`
    /// from `std::env::args`, with experiment-appropriate defaults.
    pub fn parse(default_scale: usize) -> Args {
        let mut args = Args {
            scale: default_scale,
            runs: 5,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            out: PathBuf::from("results"),
            calibrate: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).expect("--scale N"),
                "--runs" => args.runs = it.next().and_then(|v| v.parse().ok()).expect("--runs N"),
                "--threads" => {
                    args.threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N")
                }
                "--out" => args.out = PathBuf::from(it.next().expect("--out DIR")),
                "--calibrate" => args.calibrate = true,
                other => panic!("unknown argument {other:?} (known: --scale --runs --threads --out --calibrate)"),
            }
        }
        args
    }

    /// Engine configuration under these arguments.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            threads: self.threads,
            calibrate: self.calibrate,
            strategy: ProbeStrategy::AdaptiveBinary,
            ..EngineConfig::default()
        }
    }
}

/// Builds a LUBM-like engine at `universities` scale.
pub fn lubm_engine(universities: usize, config: EngineConfig) -> Parj {
    let store = lubm::generate_store(&lubm::LubmConfig {
        universities,
        seed: lubm::LubmConfig::default().seed,
    });
    Parj::from_store(store, config)
}

/// Builds a WatDiv-like engine at `scale`.
pub fn watdiv_engine(scale: usize, config: EngineConfig) -> Parj {
    let store = watdiv::generate_store(&watdiv::WatDivConfig {
        scale,
        seed: watdiv::WatDivConfig::default().seed,
    });
    Parj::from_store(store, config)
}

/// Translates a BGP query into the encoded pattern list the baseline
/// engines consume (textual pattern order). Returns `None` when a
/// constant is absent from the data or the query has predicate
/// variables (the baselines skip those).
pub fn encode_bgp(engine: &mut Parj, sparql: &str) -> Option<(Vec<Pattern>, usize)> {
    let parsed = parse_query(sparql).ok()?;
    let dict = engine.store().dict();
    let mut names: Vec<String> = Vec::new();
    let mut var_id = |n: &str| -> u16 {
        if let Some(i) = names.iter().position(|x| x == n) {
            i as u16
        } else {
            names.push(n.to_string());
            (names.len() - 1) as u16
        }
    };
    let mut patterns = Vec::new();
    for p in &parsed.patterns {
        let s = match &p.s {
            STerm::Var(v) => Atom::Var(var_id(v)),
            STerm::Term(t) => Atom::Const(dict.resource_id(t)?),
        };
        let o = match &p.o {
            STerm::Var(v) => Atom::Var(var_id(v)),
            STerm::Term(t) => Atom::Const(dict.resource_id(t)?),
        };
        let pred = match &p.p {
            STerm::Var(_) => return None,
            STerm::Term(t) => dict.predicate_id(t)?,
        };
        patterns.push(Pattern { s, p: pred, o });
    }
    Some((patterns, names.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_build_and_answer() {
        let mut e = lubm_engine(1, EngineConfig::default());
        assert!(e.num_triples() > 1000);
        let q = &lubm::queries()[4]; // LUBM5, selective
        assert!(e.request(&q.sparql).count_only().run().unwrap().count > 0);

        let mut w = watdiv_engine(1, EngineConfig::default());
        assert!(w.num_triples() > 1000);
    }

    #[test]
    fn encode_bgp_matches_engine() {
        let mut e = watdiv_engine(1, EngineConfig::default());
        let q = &watdiv::basic_workload()[0];
        let (patterns, vars) = encode_bgp(&mut e, &q.sparql).expect("encodable");
        assert_eq!(patterns.len(), 2);
        assert!(vars >= 2);
    }
}
