//! Timing utilities: repeated measurement with average and best, plus
//! the aggregate statistics the paper reports (average and geometric
//! mean per workload group).

use std::time::Instant;

/// One measured quantity over `runs` repetitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Average wall-clock milliseconds (the paper's reported metric:
    /// "Each query was executed 10 times and the average execution time
    /// is shown").
    pub avg_ms: f64,
    /// Fastest repetition.
    pub min_ms: f64,
    /// Slowest repetition.
    pub max_ms: f64,
    /// Repetitions measured.
    pub runs: usize,
}

/// Runs `f` `runs` times (after one untimed warm-up) and reports
/// wall-clock statistics.
pub fn measure_ms<F: FnMut()>(runs: usize, mut f: F) -> Measurement {
    let runs = runs.max(1);
    f(); // warm-up: dictionary/page caches, branch predictors
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for _ in 0..runs {
        let t = Instant::now();
        f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
        max = max.max(ms);
    }
    Measurement {
        avg_ms: total / runs as f64,
        min_ms: min,
        max_ms: max,
        runs,
    }
}

/// Arithmetic mean.
pub fn avg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean (zeros are clamped to 1 µs, as sub-resolution times
/// would otherwise zero the whole product — the paper reports geomeans
/// over times measured in whole milliseconds).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-3).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_runs() {
        let mut calls = 0;
        let m = measure_ms(5, || calls += 1);
        assert_eq!(calls, 6); // warm-up + 5
        assert_eq!(m.runs, 5);
        assert!(m.min_ms <= m.avg_ms && m.avg_ms <= m.max_ms);
    }

    #[test]
    fn aggregates() {
        assert_eq!(avg(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(avg(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        // Zero-clamping keeps the geomean positive.
        assert!(geomean(&[0.0, 10.0]) > 0.0);
    }
}
