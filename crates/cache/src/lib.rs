//! # parj-cache — plan & result caching with generation-safe invalidation
//!
//! The serving tier of the engine: once a query has been parsed,
//! translated, and canonicalized (`parj-core`), its **fingerprint**
//! keys two byte-budgeted caches:
//!
//! * a **plan cache** holding the optimizer's left-deep
//!   [`PhysicalPlan`]s, so repeated shapes skip the optimize phase, and
//! * a **result cache** holding finished counts or id-row batches
//!   ([`RowBatch`]), so exact repeats skip execution entirely.
//!
//! Both sit behind a [`ShardedLru`]: keys are hashed to one of a fixed
//! number of shards, each shard is an independent mutex-protected LRU
//! with `budget / shards` bytes of capacity, so concurrent readers of a
//! [`SharedParj`](https://docs.rs/parj-core) rarely contend on the same
//! lock.
//!
//! ## Generation-safe invalidation
//!
//! Full store rebuilds reduce cache coherence to one monotonic counter:
//! the [`GenerationCounter`] is bumped (release) every time the engine
//! publishes a rebuilt store, every entry is stamped with the
//! generation it was computed under, and [`ShardedLru::lookup`] refuses
//! (and lazily removes) entries whose stamp differs from the generation
//! the caller read (acquire) at the start of its request. A stale entry
//! is therefore *never* served: a reader either sees the new generation
//! number (and misses) or the old store (and the old entry is still the
//! right answer). The `loom_cache` model in this crate's test suite
//! checks that protocol under exhaustive schedule injection.
//!
//! ## Per-predicate epochs (incremental mutations)
//!
//! Delta-store mutations do not rebuild the store, so bumping the
//! generation for every write batch would throw away *every* cached
//! answer even when the batch touched a single predicate. Instead the
//! [`QueryCache`] keeps a monotonic **epoch per predicate id**: a write
//! batch calls [`QueryCache::bump_predicates`] with exactly the
//! predicates it touched, and every entry is additionally stamped with
//! the **epoch sum** over the predicates its query reads (computed by
//! the engine via [`QueryCache::epoch_sum`]). Because epochs only grow,
//! any write to any predicate a cached query depends on changes that
//! query's epoch sum, so the entry stops matching and is lazily
//! removed — while entries whose predicate set is disjoint from the
//! write keep serving hits. Sums (rather than e.g. hashes of epoch
//! vectors) are safe for the same reason the generation counter is:
//! they are monotone in every coordinate, so distinct states a single
//! query can observe never collide.
//!
//! This crate is deliberately engine-agnostic: it knows nothing about
//! metrics, SPARQL, or the dictionary. `parj-core` computes
//! fingerprints, decides bypasses, and records hit/miss/eviction
//! observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use parj_sync::atomic::{AtomicU64, Ordering};
use parj_sync::{LockLevel, OrderedMutex};

pub use parj_join::{PhysicalPlan, RowBatch};

/// Number of independent LRU shards per cache. A small power of two:
/// enough to keep concurrent readers off each other's locks, few
/// enough that the per-shard byte budget stays meaningful.
pub const CACHE_SHARDS: usize = 8;

/// The engine's store generation: a monotonic counter bumped every
/// time a rebuilt store is published (finalize after staging, snapshot
/// adoption). Cache entries are stamped with the generation they were
/// computed under; lookups carry the generation their request started
/// under.
#[derive(Debug)]
pub struct GenerationCounter(AtomicU64);

impl Default for GenerationCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl GenerationCounter {
    /// A counter starting at generation zero.
    pub const fn new() -> Self {
        GenerationCounter(AtomicU64::new(0))
    }

    /// The current store generation.
    pub fn store_generation(&self) -> u64 {
        // ordering: Acquire — pairs with the Release bump in `bump()`;
        // a reader that observes generation g also observes every store
        // write published before that bump, so an entry stamped g is
        // consistent with the store the reader queries.
        self.0.load(Ordering::Acquire)
    }

    /// Bumps the generation after a new store has been published and
    /// returns the new value.
    pub fn bump(&self) -> u64 {
        // ordering: AcqRel — Release publishes the store writes that
        // precede the bump to any reader that Acquire-loads the new
        // value; Acquire keeps consecutive bumps totally ordered.
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// One cached value plus its bookkeeping.
#[derive(Debug)]
struct Entry<V> {
    value: V,
    /// Store generation the value was computed under.
    generation: u64,
    /// Sum of the per-predicate epochs (over the predicates the cached
    /// query reads) at the time the value was computed.
    epoch_sum: u64,
    /// Charged size in bytes (key + payload estimate).
    cost: usize,
    /// Recency stamp: larger = more recently used.
    tick: u64,
}

/// One mutex-protected LRU shard.
#[derive(Debug)]
struct Shard<V> {
    map: HashMap<Vec<u8>, Entry<V>>,
    /// Sum of `Entry::cost` over `map`.
    bytes: usize,
    /// Monotonic recency clock for this shard.
    clock: u64,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard { map: HashMap::new(), bytes: 0, clock: 0 }
    }

    /// Evicts least-recently-used entries until `need` extra bytes fit
    /// under `budget`. Returns the number of entries evicted.
    fn make_room(&mut self, need: usize, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes + need > budget && !self.map.is_empty() {
            // O(n) scan for the oldest tick. Shard populations are
            // small (budget-bounded, split 1/CACHE_SHARDS), so a scan
            // beats maintaining an intrusive list for the sizes seen
            // here.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(e) = self.map.remove(&k) {
                        self.bytes -= e.cost.min(self.bytes);
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }
}

/// FNV-1a over the key; any stable spread works, and this keeps the
/// crate dependency-free.
fn shard_index(key: &[u8]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % CACHE_SHARDS
}

/// A byte-budgeted, generation-checked, sharded LRU map from opaque
/// byte keys to clonable values.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<OrderedMutex<Shard<V>>>,
    /// Per-shard byte budget (total budget / CACHE_SHARDS).
    shard_budget: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache holding at most `budget_bytes` across all shards.
    pub fn new(budget_bytes: usize) -> Self {
        let shards = (0..CACHE_SHARDS)
            .map(|_| OrderedMutex::new(LockLevel::CacheShard, "cache.shard", Shard::new()))
            .collect();
        ShardedLru {
            shards,
            shard_budget: budget_bytes / CACHE_SHARDS,
        }
    }

    fn shard_for(&self, key: &[u8]) -> &OrderedMutex<Shard<V>> {
        &self.shards[shard_index(key)]
    }

    /// Looks up `key`, serving only values stamped with exactly
    /// `generation` *and* exactly `epoch_sum` (the caller's sum of
    /// per-predicate epochs over the query's predicate set). A
    /// present-but-stale entry (older on either axis) is removed and
    /// reported as a miss — stale answers are never returned. An entry
    /// stamped *newer* on either axis is kept but not served: a probe
    /// carrying an old stamp (impossible in the engine, whose borrow
    /// rules pin a request's generation and epochs for its whole run,
    /// but reachable in adversarial models) must not evict fresh work.
    pub fn lookup(&self, key: &[u8], generation: u64, epoch_sum: u64) -> Option<V> {
        let mut shard = self.shard_for(key).lock();
        shard.clock += 1;
        let tick = shard.clock;
        match shard.map.get_mut(key) {
            None => return None,
            Some(e) if e.generation == generation && e.epoch_sum == epoch_sum => {
                e.tick = tick;
                return Some(e.value.clone());
            }
            Some(e) if e.generation > generation || e.epoch_sum > epoch_sum => {
                return None
            }
            Some(_) => {}
        }
        // Present but stamped older on some axis: remove it so the
        // budget is not held by unservable entries, and report a miss.
        if let Some(e) = shard.map.remove(key) {
            shard.bytes -= e.cost.min(shard.bytes);
        }
        None
    }

    /// Inserts `value` under `key`, stamped with `generation` and
    /// `epoch_sum` and charged `cost` bytes. Evicts
    /// least-recently-used entries from the target shard until the
    /// entry fits; an entry whose cost exceeds a whole shard's budget
    /// is skipped (not cached) rather than evicting everything for one
    /// oversized tenant. Returns the number of entries evicted.
    pub fn insert(
        &self,
        key: Vec<u8>,
        value: V,
        cost: usize,
        generation: u64,
        epoch_sum: u64,
    ) -> u64 {
        let cost = cost.max(key.len());
        if cost > self.shard_budget {
            return 0;
        }
        let mut shard = self.shard_for(&key).lock();
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.cost.min(shard.bytes);
        }
        let evicted = shard.make_room(cost, self.shard_budget);
        shard.clock += 1;
        let tick = shard.clock;
        shard.bytes += cost;
        shard
            .map
            .insert(key, Entry { value, generation, epoch_sum, cost, tick });
        evicted
    }

    /// Total bytes currently charged across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes as u64).sum()
    }

    /// Total number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock();
            shard.map.clear();
            shard.bytes = 0;
        }
    }
}

/// A cached optimizer outcome: one physical plan per pattern set of the
/// translated query, plus how long the optimize phase took to produce
/// them (reported as "time saved" on a hit).
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// The optimized left-deep plans, one per pattern set.
    pub plans: parj_sync::Arc<Vec<PhysicalPlan>>,
    /// Microseconds the optimize phase took on the populating run.
    pub optimize_micros: u64,
}

impl PlanEntry {
    /// Approximate resident cost in bytes.
    pub fn cost(&self) -> usize {
        // Steps dominate: a PlanStep plus its compiled form is a few
        // machine words; 96 bytes per step is a safe overestimate.
        let steps: usize = self.plans.iter().map(|p| p.steps.len()).sum();
        128 + steps * 96
            + self
                .plans
                .iter()
                .map(|p| p.projection.len() * 8)
                .sum::<usize>()
    }
}

/// A finished answer, in the engine's pre-decode representation.
#[derive(Debug, Clone)]
pub enum CachedResult {
    /// A silent-mode count (the paper's count-only execution).
    Count(u64),
    /// Materialized id rows (decode to terms happens per-request, so
    /// `rows` and `ids` requests share one entry).
    Rows(parj_sync::Arc<RowBatch>),
}

/// A cached result plus the execute+decode time the populating run
/// spent, reported as "time saved" on a hit.
#[derive(Debug, Clone)]
pub struct ResultEntry {
    /// The cached answer.
    pub value: CachedResult,
    /// Microseconds of execute time the populating run spent.
    pub exec_micros: u64,
}

impl ResultEntry {
    /// Approximate resident cost in bytes.
    pub fn cost(&self) -> usize {
        match &self.value {
            CachedResult::Count(_) => 96,
            CachedResult::Rows(b) => 96 + b.data().len() * 8,
        }
    }
}

/// The engine-facing bundle: one generation counter and one
/// per-predicate epoch table governing a plan cache and a result cache.
#[derive(Debug)]
pub struct QueryCache {
    generation: GenerationCounter,
    /// Monotonic epoch per predicate id, bumped by delta-store write
    /// batches for exactly the predicates they touch. Sparse: a
    /// predicate absent from the map has epoch 0.
    pred_epochs: OrderedMutex<HashMap<u32, u64>>,
    /// Plans are tiny; give them a slice of the budget with a floor so
    /// a small result budget cannot starve plan reuse.
    plan: ShardedLru<PlanEntry>,
    result: ShardedLru<ResultEntry>,
}

impl QueryCache {
    /// A cache whose result tier holds at most `result_budget_bytes`.
    pub fn new(result_budget_bytes: usize) -> Self {
        let plan_budget = (result_budget_bytes / 16).max(1 << 20);
        QueryCache {
            generation: GenerationCounter::new(),
            pred_epochs: OrderedMutex::new(
                LockLevel::CacheEpoch,
                "cache.pred_epochs",
                HashMap::new(),
            ),
            plan: ShardedLru::new(plan_budget),
            result: ShardedLru::new(result_budget_bytes),
        }
    }

    /// The current store generation (acquire).
    pub fn store_generation(&self) -> u64 {
        self.generation.store_generation()
    }

    /// Bumps the store generation after a rebuilt store is published.
    /// Existing entries become unservable immediately (checked on
    /// lookup) and are reclaimed lazily. Also clears the per-predicate
    /// epoch table: a rebuild invalidates everything, so fresh entries
    /// may start again from epoch-sum zero.
    pub fn bump_generation(&self) -> u64 {
        // Order matters for correctness under concurrent readers: the
        // generation bump must land *after* the epoch clear, so a
        // reader that still observes the old generation also observes
        // the old (non-cleared) epochs via the mutex, and a reader
        // that observes the new generation can only hit entries
        // stamped with it — which were inserted after this point.
        let mut epochs = self.pred_epochs.lock();
        epochs.clear();
        let g = self.generation.bump();
        drop(epochs);
        g
    }

    /// Sum of the current epochs of `preds` (predicate ids; callers
    /// pass the deduplicated set of concrete predicates a query
    /// reads). Monotone in every coordinate, so two states a query can
    /// distinguish never share a sum.
    pub fn epoch_sum(&self, preds: &[u32]) -> u64 {
        let epochs = self.pred_epochs.lock();
        preds
            .iter()
            .map(|p| epochs.get(p).copied().unwrap_or(0))
            .sum()
    }

    /// Bumps the epoch of every predicate in `preds` (deduplicated
    /// defensively: a repeated id is bumped once). Returns the number
    /// of distinct predicates bumped — the per-batch invalidation
    /// count the observability layer reports.
    pub fn bump_predicates(&self, preds: &[u32]) -> u64 {
        let mut epochs = self.pred_epochs.lock();
        let mut bumped = 0u64;
        let mut seen: Vec<u32> = Vec::with_capacity(preds.len());
        for &p in preds {
            if seen.contains(&p) {
                continue;
            }
            seen.push(p);
            *epochs.entry(p).or_insert(0) += 1;
            bumped += 1;
        }
        bumped
    }

    /// The plan cache.
    pub fn plans(&self) -> &ShardedLru<PlanEntry> {
        &self.plan
    }

    /// The result cache.
    pub fn results(&self) -> &ShardedLru<ResultEntry> {
        &self.result
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn lookup_roundtrip_and_miss() {
        let lru: ShardedLru<u32> = ShardedLru::new(1 << 20);
        assert_eq!(lru.lookup(b"k1", 0, 0), None);
        lru.insert(b"k1".to_vec(), 7, 100, 0, 0);
        assert_eq!(lru.lookup(b"k1", 0, 0), Some(7));
        assert_eq!(lru.lookup(b"k2", 0, 0), None);
        assert_eq!(lru.len(), 1);
        assert!(lru.resident_bytes() >= 100);
    }

    #[test]
    fn stale_generation_never_served() {
        let lru: ShardedLru<u32> = ShardedLru::new(1 << 20);
        lru.insert(b"k".to_vec(), 1, 64, 0, 0);
        // Newer reader: entry is stale, removed, not served.
        assert_eq!(lru.lookup(b"k", 1, 0), None);
        // And it is really gone, not hidden.
        assert_eq!(lru.lookup(b"k", 0, 0), None);
        assert_eq!(lru.len(), 0);
        assert_eq!(lru.resident_bytes(), 0);
    }

    #[test]
    fn stale_probe_does_not_evict_fresh_entry() {
        let lru: ShardedLru<u32> = ShardedLru::new(1 << 20);
        lru.insert(b"k".to_vec(), 2, 64, 1, 0);
        // A probe carrying an older generation misses but must leave
        // the current-generation entry in place.
        assert_eq!(lru.lookup(b"k", 0, 0), None);
        assert_eq!(lru.lookup(b"k", 1, 0), Some(2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn budget_evicts_lru_first() {
        // One shard's budget is total/CACHE_SHARDS; use keys that land
        // in the same shard by brute force.
        let lru: ShardedLru<u32> = ShardedLru::new(CACHE_SHARDS * 256);
        // Find three keys hashing to the same shard.
        let mut same = Vec::new();
        'outer: for a in 0u8..=255 {
            for b in 0u8..=255 {
                let k = vec![a, b];
                if shard_index(&k) == 0 {
                    same.push(k);
                    if same.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(same.len(), 3);
        lru.insert(same[0].clone(), 0, 100, 0, 0);
        lru.insert(same[1].clone(), 1, 100, 0, 0);
        // Touch entry 0 so entry 1 is the LRU victim.
        assert_eq!(lru.lookup(&same[0], 0, 0), Some(0));
        let evicted = lru.insert(same[2].clone(), 2, 100, 0, 0);
        assert_eq!(evicted, 1);
        assert_eq!(lru.lookup(&same[0], 0, 0), Some(0));
        assert_eq!(lru.lookup(&same[1], 0, 0), None);
        assert_eq!(lru.lookup(&same[2], 0, 0), Some(2));
    }

    #[test]
    fn oversized_entry_is_skipped() {
        let lru: ShardedLru<u32> = ShardedLru::new(CACHE_SHARDS * 128);
        lru.insert(b"small".to_vec(), 1, 64, 0, 0);
        let evicted = lru.insert(b"huge".to_vec(), 2, 4096, 0, 0);
        assert_eq!(evicted, 0);
        assert_eq!(lru.lookup(b"huge", 0, 0), None);
        // The small resident entry survived the oversized offer.
        assert_eq!(lru.lookup(b"small", 0, 0), Some(1));
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let lru: ShardedLru<u32> = ShardedLru::new(1 << 20);
        lru.insert(b"k".to_vec(), 1, 100, 0, 0);
        lru.insert(b"k".to_vec(), 2, 200, 0, 0);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.resident_bytes(), 200);
        assert_eq!(lru.lookup(b"k", 0, 0), Some(2));
    }

    #[test]
    fn generation_counter_bumps_monotonically() {
        let g = GenerationCounter::new();
        assert_eq!(g.store_generation(), 0);
        assert_eq!(g.bump(), 1);
        assert_eq!(g.bump(), 2);
        assert_eq!(g.store_generation(), 2);
    }

    #[test]
    fn stale_epoch_sum_never_served() {
        let lru: ShardedLru<u32> = ShardedLru::new(1 << 20);
        lru.insert(b"k".to_vec(), 9, 64, 0, 3);
        // Same generation, advanced epoch sum: stale, removed.
        assert_eq!(lru.lookup(b"k", 0, 4), None);
        assert_eq!(lru.lookup(b"k", 0, 3), None);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn stale_epoch_probe_does_not_evict_fresh_entry() {
        let lru: ShardedLru<u32> = ShardedLru::new(1 << 20);
        lru.insert(b"k".to_vec(), 9, 64, 0, 5);
        assert_eq!(lru.lookup(b"k", 0, 2), None);
        assert_eq!(lru.lookup(b"k", 0, 5), Some(9));
    }

    #[test]
    fn predicate_epochs_bump_and_sum() {
        let qc = QueryCache::new(1 << 20);
        assert_eq!(qc.epoch_sum(&[1, 2, 3]), 0);
        // Duplicates in a batch count once.
        assert_eq!(qc.bump_predicates(&[1, 2, 2]), 2);
        assert_eq!(qc.epoch_sum(&[1]), 1);
        assert_eq!(qc.epoch_sum(&[1, 2]), 2);
        // A disjoint predicate set is untouched.
        assert_eq!(qc.epoch_sum(&[3, 4]), 0);
        assert_eq!(qc.bump_predicates(&[1]), 1);
        assert_eq!(qc.epoch_sum(&[1, 2, 3]), 3);
    }

    #[test]
    fn per_predicate_invalidation_spares_disjoint_entries() {
        let qc = QueryCache::new(1 << 20);
        let e = |n| ResultEntry { value: CachedResult::Count(n), exec_micros: 1 };
        let gen_now = qc.store_generation();
        // Query A reads predicate 1; query B reads predicate 7.
        let sum_a = qc.epoch_sum(&[1]);
        let sum_b = qc.epoch_sum(&[7]);
        qc.results().insert(b"qa".to_vec(), e(1), 96, gen_now, sum_a);
        qc.results().insert(b"qb".to_vec(), e(2), 96, gen_now, sum_b);
        // A write batch touching predicate 1 only.
        qc.bump_predicates(&[1]);
        // Query A's stamp no longer matches; query B still hits.
        assert!(qc
            .results()
            .lookup(b"qa", gen_now, qc.epoch_sum(&[1]))
            .is_none());
        assert!(qc
            .results()
            .lookup(b"qb", gen_now, qc.epoch_sum(&[7]))
            .is_some());
    }

    #[test]
    fn generation_bump_resets_predicate_epochs() {
        let qc = QueryCache::new(1 << 20);
        qc.bump_predicates(&[1, 2]);
        assert_eq!(qc.epoch_sum(&[1, 2]), 2);
        qc.bump_generation();
        assert_eq!(qc.epoch_sum(&[1, 2]), 0);
    }

    #[test]
    fn query_cache_bundle_wires_both_tiers() {
        let qc = QueryCache::new(1 << 20);
        assert_eq!(qc.store_generation(), 0);
        let entry = ResultEntry { value: CachedResult::Count(42), exec_micros: 10 };
        let cost = entry.cost();
        qc.results().insert(b"f".to_vec(), entry, cost, 0, 0);
        match qc.results().lookup(b"f", 0, 0) {
            Some(ResultEntry { value: CachedResult::Count(42), .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        qc.bump_generation();
        assert!(qc.results().lookup(b"f", 1, 0).is_none());
    }
}
