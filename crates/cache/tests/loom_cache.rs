//! Loom model of the cache's generation-safe invalidation protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The engine's safety
//! argument is: a request reads the store generation once, probes with
//! it, and inserts with it; `finalize()` bumps the counter *after*
//! publishing the rebuilt store. The property checked here is the
//! cache-side half of that contract, under every interleaving loom can
//! produce:
//!
//! * a lookup stamped with generation `g` only ever returns a value
//!   that was inserted under `g` — never one from before or after a
//!   concurrent bump;
//! * the generation counter itself is monotone for concurrent readers.

#![cfg(loom)]

use parj_cache::{GenerationCounter, ShardedLru};
use parj_sync::thread;
use parj_sync::Arc;

/// A writer republishes the store (insert under g0, bump, insert under
/// g1) while a reader races a generation read + lookup. Whatever the
/// schedule, the value served must match the generation the reader
/// stamped its probe with — a g0 probe must never see the g1 value and
/// vice versa.
#[test]
fn loom_lookup_never_crosses_a_generation_bump() {
    loom::model(|| {
        let lru: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(1 << 16));
        let gen: Arc<GenerationCounter> = Arc::new(GenerationCounter::default());
        let g0 = gen.store_generation();

        lru.insert(b"q".to_vec(), 100, 64, g0, 0);

        let writer = {
            let lru = Arc::clone(&lru);
            let gen = Arc::clone(&gen);
            thread::spawn(move || {
                let g1 = gen.bump();
                lru.insert(b"q".to_vec(), 200, 64, g1, 0);
            })
        };

        let reader = {
            let lru = Arc::clone(&lru);
            let gen = Arc::clone(&gen);
            thread::spawn(move || {
                // The engine's request path: one generation read, then
                // a probe stamped with it.
                let g = gen.store_generation();
                if let Some(v) = lru.lookup(b"q", g, 0) {
                    if g == g0 {
                        assert_eq!(v, 100, "stale-generation value served");
                    } else {
                        assert_eq!(v, 200, "value from a mismatched generation");
                    }
                }
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();

        // After the bump has fully published, a current-generation
        // probe sees exactly the new value and a stale probe nothing.
        let g1 = gen.store_generation();
        assert_eq!(lru.lookup(b"q", g1, 0), Some(200));
        assert_eq!(lru.lookup(b"q", g0, 0), None);
    });
}

/// The per-predicate epoch half of the protocol: a write batch bumps
/// the epochs of the predicates it touched *after* publishing its
/// delta; a reader sums the epochs of its query's predicates once and
/// probes with the sum. Under every interleaving, a probe stamped with
/// the pre-bump sum must never serve a value inserted under the
/// post-bump sum and vice versa.
#[test]
fn loom_lookup_never_crosses_a_predicate_epoch_bump() {
    use parj_cache::{CachedResult, QueryCache, ResultEntry};

    fn count(v: u64) -> ResultEntry {
        ResultEntry { value: CachedResult::Count(v), exec_micros: 0 }
    }

    loom::model(|| {
        let qc: Arc<QueryCache> = Arc::new(QueryCache::new(1 << 16));
        let e0 = qc.epoch_sum(&[1]);
        qc.results().insert(b"q".to_vec(), count(100), 96, 0, e0);

        let writer = {
            let qc = Arc::clone(&qc);
            thread::spawn(move || {
                let e1 = e0 + qc.bump_predicates(&[1]);
                qc.results().insert(b"q".to_vec(), count(200), 96, 0, e1);
            })
        };

        let reader = {
            let qc = Arc::clone(&qc);
            thread::spawn(move || {
                let e = qc.epoch_sum(&[1]);
                if let Some(entry) = qc.results().lookup(b"q", 0, e) {
                    let CachedResult::Count(v) = entry.value else {
                        panic!("unexpected cached shape");
                    };
                    let want = if e == e0 { 100 } else { 200 };
                    assert_eq!(v, want, "value from a mismatched epoch");
                }
            })
        };

        writer.join().unwrap();
        reader.join().unwrap();

        let e1 = qc.epoch_sum(&[1]);
        assert!(qc.results().lookup(b"q", 0, e1).is_some());
        assert!(qc.results().lookup(b"q", 0, e0).is_none());
    });
}

/// Concurrent bumps are atomic: two finalizes advance the counter by
/// exactly two, and a racing reader observes a monotone sequence.
#[test]
fn loom_generation_counter_is_monotone() {
    loom::model(|| {
        let gen: Arc<GenerationCounter> = Arc::new(GenerationCounter::default());
        let start = gen.store_generation();
        let bumpers: Vec<_> = (0..2)
            .map(|_| {
                let gen = Arc::clone(&gen);
                thread::spawn(move || gen.bump())
            })
            .collect();
        let reader = {
            let gen = Arc::clone(&gen);
            thread::spawn(move || {
                let a = gen.store_generation();
                let b = gen.store_generation();
                assert!(b >= a, "generation went backwards: {a} -> {b}");
            })
        };
        let returns: Vec<u64> = bumpers.into_iter().map(|h| h.join().unwrap()).collect();
        reader.join().unwrap();
        assert_eq!(gen.store_generation(), start + 2);
        // `bump` returns the post-increment value: the two returns are
        // distinct and both above the start.
        assert!(returns.iter().all(|&r| r > start));
        assert_ne!(returns[0], returns[1]);
    });
}
