//! `parj` — command-line interface to the PARJ RDF store.
//!
//! ```text
//! parj load <data.nt> -o <store.parj>              build a snapshot from N-Triples
//! parj query <store.parj|data.nt> <sparql|@file>   run a query (full results)
//! parj count <store.parj|data.nt> <sparql|@file>   run a query in silent mode
//! parj explain <store.parj|data.nt> <sparql|@file> show the optimized plan
//! parj stats <store.parj|data.nt>                  store statistics
//! parj generate lubm|watdiv <scale> -o <out.nt>    emit benchmark data
//! ```
//!
//! Common flags: `--threads N`, `--strategy binary|adbinary|index|adindex`,
//! `--reasoning`, `--calibrate`.

use std::process::ExitCode;

use parj_core::{EngineConfig, Parj, ParjError, ProbeStrategy};

const USAGE: &str = "\
parj — Parallel Adaptive RDF Joins (EDBT 2019 reproduction)

USAGE:
  parj load <data.nt|data.ttl> -o <store.parj> [flags]
  parj query <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj count <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj explain <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj profile <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj stats <store.parj|data.nt>
  parj generate <lubm|watdiv> <scale> -o <out.nt>

FLAGS:
  --threads N      worker threads per query (default: all cores)
  --strategy S     binary | adbinary (default) | index | adindex
  --reasoning      answer w.r.t. rdfs:subClassOf/subPropertyOf in the data
  --calibrate      run Algorithm 2's timed calibration after load
  -o PATH          output path (load/generate)
";

struct Cli {
    positional: Vec<String>,
    threads: Option<usize>,
    strategy: Option<ProbeStrategy>,
    reasoning: bool,
    calibrate: bool,
    output: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        threads: None,
        strategy: None,
        reasoning: false,
        calibrate: false,
        output: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                cli.threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--threads needs a number")?,
                )
            }
            "--strategy" => {
                let s = it.next().ok_or("--strategy needs a value")?;
                cli.strategy = Some(match s.as_str() {
                    "binary" => ProbeStrategy::AlwaysBinary,
                    "adbinary" => ProbeStrategy::AdaptiveBinary,
                    "index" => ProbeStrategy::AlwaysIndex,
                    "adindex" => ProbeStrategy::AdaptiveIndex,
                    other => return Err(format!("unknown strategy {other:?}")),
                });
            }
            "--reasoning" => cli.reasoning = true,
            "--calibrate" => cli.calibrate = true,
            "-o" | "--output" => cli.output = Some(it.next().ok_or("-o needs a path")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => cli.positional.push(other.to_string()),
        }
    }
    Ok(cli)
}

impl Cli {
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig {
            reasoning: self.reasoning,
            calibrate: self.calibrate,
            ..EngineConfig::default()
        };
        if let Some(t) = self.threads {
            cfg.threads = t.max(1);
        }
        if let Some(s) = self.strategy {
            cfg.strategy = s;
        }
        cfg
    }

    /// Opens a store: `.parj` snapshots load directly, `.ttl` parses as
    /// Turtle, anything else as N-Triples.
    fn open(&self, path: &str) -> Result<Parj, ParjError> {
        if path.ends_with(".parj") {
            Parj::load_snapshot(path, self.engine_config())
        } else {
            let mut e = Parj::builder().build();
            let cfg = self.engine_config();
            // Rebuild with the requested config around the same data.
            if path.ends_with(".ttl") || path.ends_with(".turtle") {
                e.load_turtle_path(path)?;
            } else {
                e.load_ntriples_path(path)?;
            }
            e.finalize();
            let store = parj_core::TripleStore::from_snapshot_bytes(
                &e.store().to_snapshot_bytes(),
            )?;
            Ok(Parj::from_store(store, cfg))
        }
    }

    /// Resolves a query argument: literal SPARQL, or `@file`.
    fn query_text(&self, arg: &str) -> Result<String, std::io::Error> {
        if let Some(path) = arg.strip_prefix('@') {
            std::fs::read_to_string(path)
        } else {
            Ok(arg.to_string())
        }
    }
}

fn run() -> Result<(), String> {
    let cli = parse_cli()?;
    let Some(command) = cli.positional.first().cloned() else {
        return Err("missing command; try --help".into());
    };
    match command.as_str() {
        "load" => {
            let [_, input] = &cli.positional[..] else {
                return Err("usage: parj load <data.nt> -o <store.parj>".into());
            };
            let out = cli.output.clone().ok_or("load needs -o <store.parj>")?;
            let mut e = Parj::builder().build();
            let n = if input.ends_with(".ttl") || input.ends_with(".turtle") {
                e.load_turtle_path(input).map_err(|e| e.to_string())?
            } else {
                e.load_ntriples_path(input).map_err(|e| e.to_string())?
            };
            e.finalize();
            e.save_snapshot(&out).map_err(|e| e.to_string())?;
            eprintln!(
                "loaded {n} statements ({} distinct triples) -> {out}",
                e.num_triples()
            );
            Ok(())
        }
        "query" | "count" | "explain" | "profile" => {
            let [_, store_path, query_arg] = &cli.positional[..] else {
                return Err(format!("usage: parj {command} <store> <sparql | @file>"));
            };
            let query = cli.query_text(query_arg).map_err(|e| e.to_string())?;
            let mut engine = cli.open(store_path).map_err(|e| e.to_string())?;
            match command.as_str() {
                "explain" => {
                    println!("{}", engine.explain(&query).map_err(|e| e.to_string())?);
                }
                "profile" => {
                    println!("{}", engine.profile(&query).map_err(|e| e.to_string())?);
                }
                "count" => {
                    let (count, stats) =
                        engine.query_count(&query).map_err(|e| e.to_string())?;
                    println!("{count}");
                    eprintln!(
                        "prepare {} µs, execute {} µs; {} sequential / {} binary / {} index searches",
                        stats.prepare_micros,
                        stats.exec_micros,
                        stats.search.sequential_searches,
                        stats.search.binary_searches,
                        stats.search.index_lookups,
                    );
                }
                _ => {
                    let result = engine.query(&query).map_err(|e| e.to_string())?;
                    print!("{}", result.to_table());
                    eprintln!(
                        "{} rows in {} µs (prepare {} µs, decode {} µs)",
                        result.rows.len(),
                        result.stats.total_micros(),
                        result.stats.prepare_micros,
                        result.stats.decode_micros,
                    );
                }
            }
            Ok(())
        }
        "stats" => {
            let [_, store_path] = &cli.positional[..] else {
                return Err("usage: parj stats <store>".into());
            };
            let mut engine = cli.open(store_path).map_err(|e| e.to_string())?;
            let store = engine.store();
            println!("triples:     {}", store.num_triples());
            println!("predicates:  {}", store.num_predicates());
            println!("resources:   {}", store.dict().num_resources());
            println!(
                "partitions:  {:.2} MiB",
                store.partitions_memory_bytes() as f64 / (1 << 20) as f64
            );
            println!(
                "dictionary:  {:.2} MiB",
                store.dict().memory_bytes() as f64 / (1 << 20) as f64
            );
            let mut parts: Vec<_> = store
                .partitions()
                .iter()
                .map(|p| (p.num_triples(), p.predicate()))
                .collect();
            parts.sort_unstable_by(|a, b| b.cmp(a));
            println!("top predicates:");
            for (n, pid) in parts.into_iter().take(10) {
                let term = store
                    .dict()
                    .decode_predicate(pid)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|_| format!("#{pid}"));
                println!("  {n:>10}  {term}");
            }
            Ok(())
        }
        "generate" => {
            let [_, which, scale] = &cli.positional[..] else {
                return Err("usage: parj generate <lubm|watdiv> <scale> -o <out.nt>".into());
            };
            let scale: usize = scale.parse().map_err(|_| "scale must be a number")?;
            let out = cli.output.clone().ok_or("generate needs -o <out.nt>")?;
            let file = std::fs::File::create(&out).map_err(|e| e.to_string())?;
            let mut w = std::io::BufWriter::new(file);
            use std::io::Write;
            let mut n = 0u64;
            match which.as_str() {
                "lubm" => parj_datagen::lubm::generate(
                    &parj_datagen::lubm::LubmConfig {
                        universities: scale,
                        seed: 7,
                    },
                    |s, p, o| {
                        writeln!(w, "{s} {p} {o} .").expect("write");
                        n += 1;
                    },
                ),
                "watdiv" => parj_datagen::watdiv::generate(
                    &parj_datagen::watdiv::WatDivConfig { scale, seed: 7 },
                    |s, p, o| {
                        writeln!(w, "{s} {p} {o} .").expect("write");
                        n += 1;
                    },
                ),
                other => return Err(format!("unknown generator {other:?}")),
            }
            eprintln!("wrote {n} triples -> {out}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try --help")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
