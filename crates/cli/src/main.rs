//! `parj` — command-line interface to the PARJ RDF store.
//!
//! ```text
//! parj load <data.nt> -o <store.parj>              build a snapshot from N-Triples
//! parj query <store.parj|data.nt> <sparql|@file>   run a query (full results)
//! parj count <store.parj|data.nt> <sparql|@file>   run a query in silent mode
//! parj explain <store.parj|data.nt> <sparql|@file> show the optimized plan
//! parj stats <store.parj|data.nt>                  store statistics
//! parj audit <store.parj|data.nt>                  deep structural invariant audit
//! parj generate lubm|watdiv <scale> -o <out.nt>    emit benchmark data
//! parj serve <store.parj|data.nt>                  SPARQL Protocol endpoint over HTTP
//! ```
//!
//! Common flags: `--threads N`, `--strategy binary|adbinary|index|adindex`,
//! `--reasoning`, `--calibrate`, `--timeout SECS`, `--max-rows N`,
//! `--lossy` / `--max-parse-errors N`. `--stats` prints an
//! `EXPLAIN ANALYZE`-style per-query report to stderr; `parj stats
//! --prometheus|--json` exposes the engine metrics registry.
//!
//! Exit codes map failure classes so scripts can react without
//! scraping stderr: 0 success, 1 usage/other, 2 parse error (SPARQL or
//! RDF data), 3 unsupported query feature, 4 deadline exceeded, 5
//! result budget exceeded, 6 corrupt store (audit failure), 101
//! internal panic.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;

use parj_core::{EngineConfig, OnParseError, Parj, ParjError, ProbeStrategy};

/// Process exit codes per failure class (documented in `USAGE`).
mod exit_codes {
    pub const USAGE: u8 = 1;
    pub const PARSE: u8 = 2;
    pub const UNSUPPORTED: u8 = 3;
    pub const TIMEOUT: u8 = 4;
    pub const BUDGET: u8 = 5;
    pub const CORRUPT: u8 = 6;
    pub const PANIC: u8 = 101;
}

/// An error message plus the exit code its class maps to.
type Failure = (u8, String);

/// Classifies an engine error into its exit code.
fn fail(e: ParjError) -> Failure {
    let code = match &e {
        ParjError::Sparql(_) | ParjError::Rio(_) => exit_codes::PARSE,
        ParjError::Unsupported(_) => exit_codes::UNSUPPORTED,
        ParjError::DeadlineExceeded { .. } => exit_codes::TIMEOUT,
        ParjError::BudgetExceeded { .. } => exit_codes::BUDGET,
        ParjError::CorruptStore { .. } => exit_codes::CORRUPT,
        ParjError::WorkerPanicked { .. } => exit_codes::PANIC,
        _ => exit_codes::USAGE,
    };
    (code, e.to_string())
}

/// A plain usage / environment error (exit code 1).
fn usage(msg: impl Into<String>) -> Failure {
    (exit_codes::USAGE, msg.into())
}

const USAGE: &str = "\
parj — Parallel Adaptive RDF Joins (EDBT 2019 reproduction)

USAGE:
  parj load <data.nt|data.ttl> -o <store.parj> [flags]
  parj query <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj count <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj explain <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj profile <store.parj|data.nt> <sparql | @query.rq> [flags]
  parj stats <store.parj|data.nt> [--prometheus | --json]
  parj audit <store.parj|data.nt>
  parj generate <lubm|watdiv> <scale> -o <out.nt>
  parj serve <store.parj|data.nt> [--addr HOST:PORT] [flags]

FLAGS:
  --threads N      worker threads per query (default: all cores)
  --morsel-size N  driver keys per work morsel pulled by each worker
                   (default 16384; results are identical at any value)
  --no-pool        spawn fresh query threads instead of using the
                   engine's persistent worker pool
  --stats          print a per-query EXPLAIN ANALYZE report to stderr
                   (query/count): annotated plan, phase timings, search mix
  --prometheus     (stats) expose the metrics registry as Prometheus text
  --json           (stats) expose the metrics registry as JSON
  --load-threads N worker threads for bulk loading (default: all cores;
                   loaded store is byte-identical at any value)
  --strategy S     binary | adbinary (default) | index | adindex
  --reasoning      answer w.r.t. rdfs:subClassOf/subPropertyOf in the data
  --calibrate      run Algorithm 2's timed calibration after load
  --timeout SECS   abort a query after this wall-clock budget (exit code 4)
  --max-rows N     abort a query once it produces more than N rows (exit code 5)
  --cache          serve repeated queries from the plan/result cache
                   (generation-checked: never serves answers from a stale store)
  --cache-bytes N  result-cache byte budget (implies --cache; default 64 MiB)
  --no-cache       bypass the cache for this run (with --cache: nothing is
                   served from or inserted into it)
  --lossy          skip malformed data lines while loading (reported on stderr)
  --max-parse-errors N   like --lossy but abort after N skipped lines
  -o PATH          output path (load/generate)

SERVE FLAGS:
  --addr H:P       listen address (default 127.0.0.1:7878)
  --permits N      max queries executing at once; beyond this requests
                   are shed with 429 + Retry-After (default 4)
  --quota B/R      per-client token bucket: burst B, refill R req/s
  --serve-seconds S  serve for S seconds then drain and exit
                   (default: serve until stdin reaches EOF)
  With serve, --timeout sets the default per-query deadline and
  --cache / --cache-bytes enable the shared result cache.

EXIT CODES:
  0 success   1 usage/other   2 parse error (SPARQL or RDF data)
  3 unsupported query   4 timeout   5 row budget exceeded
  6 corrupt store (audit)   101 worker panic
";

struct Cli {
    positional: Vec<String>,
    threads: Option<usize>,
    morsel_size: Option<usize>,
    no_pool: bool,
    load_threads: Option<usize>,
    strategy: Option<ProbeStrategy>,
    reasoning: bool,
    calibrate: bool,
    output: Option<String>,
    timeout: Option<Duration>,
    max_rows: Option<u64>,
    lossy: bool,
    max_parse_errors: Option<usize>,
    show_stats: bool,
    prometheus: bool,
    json: bool,
    cache: bool,
    cache_bytes: Option<usize>,
    no_cache: bool,
    addr: Option<String>,
    permits: Option<usize>,
    quota: Option<parj_server::admission::Quota>,
    serve_seconds: Option<f64>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        positional: Vec::new(),
        threads: None,
        morsel_size: None,
        no_pool: false,
        load_threads: None,
        strategy: None,
        reasoning: false,
        calibrate: false,
        output: None,
        timeout: None,
        max_rows: None,
        lossy: false,
        max_parse_errors: None,
        show_stats: false,
        prometheus: false,
        json: false,
        cache: false,
        cache_bytes: None,
        no_cache: false,
        addr: None,
        permits: None,
        quota: None,
        serve_seconds: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                cli.threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--threads needs a number")?,
                )
            }
            "--morsel-size" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--morsel-size needs a number")?;
                if n == 0 {
                    return Err("--morsel-size must be at least 1".into());
                }
                cli.morsel_size = Some(n);
            }
            "--no-pool" => cli.no_pool = true,
            "--load-threads" => {
                cli.load_threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--load-threads needs a number")?,
                )
            }
            "--strategy" => {
                let s = it.next().ok_or("--strategy needs a value")?;
                cli.strategy = Some(match s.as_str() {
                    "binary" => ProbeStrategy::AlwaysBinary,
                    "adbinary" => ProbeStrategy::AdaptiveBinary,
                    "index" => ProbeStrategy::AlwaysIndex,
                    "adindex" => ProbeStrategy::AdaptiveIndex,
                    other => return Err(format!("unknown strategy {other:?}")),
                });
            }
            "--reasoning" => cli.reasoning = true,
            "--calibrate" => cli.calibrate = true,
            "--timeout" => {
                let secs: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--timeout needs a number of seconds")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--timeout must be a non-negative number".into());
                }
                cli.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--max-rows" => {
                cli.max_rows = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-rows needs a number")?,
                )
            }
            "--cache" => cli.cache = true,
            "--cache-bytes" => {
                cli.cache_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--cache-bytes needs a number of bytes")?,
                );
                cli.cache = true;
            }
            "--no-cache" => cli.no_cache = true,
            "--addr" => cli.addr = Some(it.next().ok_or("--addr needs HOST:PORT")?),
            "--permits" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--permits needs a number")?;
                if n == 0 {
                    return Err("--permits must be at least 1".into());
                }
                cli.permits = Some(n);
            }
            "--quota" => {
                let spec = it.next().ok_or("--quota needs BURST/PER_SEC")?;
                let (burst, per_sec) = spec
                    .split_once('/')
                    .ok_or("--quota needs BURST/PER_SEC, e.g. 10/2.5")?;
                let burst: u32 = burst.parse().map_err(|_| "quota burst must be a number")?;
                let per_sec: f64 = per_sec
                    .parse()
                    .map_err(|_| "quota refill rate must be a number")?;
                if burst == 0 || !per_sec.is_finite() || per_sec <= 0.0 {
                    return Err("--quota burst and rate must be positive".into());
                }
                cli.quota = Some(parj_server::admission::Quota { burst, per_sec });
            }
            "--serve-seconds" => {
                let secs: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--serve-seconds needs a number of seconds")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--serve-seconds must be a non-negative number".into());
                }
                cli.serve_seconds = Some(secs);
            }
            "--lossy" => cli.lossy = true,
            "--stats" => cli.show_stats = true,
            "--prometheus" => cli.prometheus = true,
            "--json" => cli.json = true,
            "--max-parse-errors" => {
                cli.max_parse_errors = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-parse-errors needs a number")?,
                );
                cli.lossy = true;
            }
            "-o" | "--output" => cli.output = Some(it.next().ok_or("-o needs a path")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => cli.positional.push(other.to_string()),
        }
    }
    Ok(cli)
}

impl Cli {
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig {
            reasoning: self.reasoning,
            calibrate: self.calibrate,
            ..EngineConfig::default()
        };
        if let Some(t) = self.threads {
            cfg.threads = t.max(1);
        }
        if let Some(m) = self.morsel_size {
            cfg.morsel_size = m;
        }
        if self.no_pool {
            cfg.use_pool = false;
        }
        if let Some(t) = self.load_threads {
            cfg.load_threads = t.max(1);
        }
        if let Some(s) = self.strategy {
            cfg.strategy = s;
        }
        cfg.timeout = self.timeout;
        cfg.max_result_rows = self.max_rows;
        cfg.cache = self.cache;
        if let Some(b) = self.cache_bytes {
            cfg.cache_bytes = b;
        }
        cfg
    }

    /// The data-loading error policy selected by `--lossy` /
    /// `--max-parse-errors`.
    fn on_parse_error(&self) -> OnParseError {
        if self.lossy {
            OnParseError::Skip {
                max_errors: self.max_parse_errors.unwrap_or(usize::MAX),
            }
        } else {
            OnParseError::Abort
        }
    }

    /// Opens a store: `.parj` snapshots load directly, `.ttl` parses as
    /// Turtle, anything else as N-Triples (honoring the `--lossy`
    /// flags for text inputs).
    fn open(&self, path: &str) -> Result<Parj, ParjError> {
        if path.ends_with(".parj") {
            Parj::load_snapshot(path, self.engine_config())
        } else {
            let mut e = Parj::builder().build();
            let cfg = self.engine_config();
            // Rebuild with the requested config around the same data.
            let report = if path.ends_with(".ttl") || path.ends_with(".turtle") {
                e.load_turtle_path_with(path, self.on_parse_error())?
            } else {
                e.load_ntriples_path_with(path, self.on_parse_error())?
            };
            report_skips(&report);
            e.finalize();
            let store = parj_core::TripleStore::from_snapshot_bytes(
                &e.store().to_snapshot_bytes(),
            )?;
            Ok(Parj::from_store(store, cfg))
        }
    }

    /// Resolves a query argument: literal SPARQL, or `@file`.
    fn query_text(&self, arg: &str) -> Result<String, std::io::Error> {
        if let Some(path) = arg.strip_prefix('@') {
            std::fs::read_to_string(path)
        } else {
            Ok(arg.to_string())
        }
    }
}

/// Prints lossy-load diagnostics to stderr (nothing in strict mode).
fn report_skips(report: &parj_core::LoadReport) {
    if report.skipped == 0 {
        return;
    }
    eprintln!("warning: skipped {} malformed statement(s):", report.skipped);
    for e in &report.errors {
        eprintln!("  {e}");
    }
    if report.skipped > report.errors.len() {
        eprintln!("  … and {} more", report.skipped - report.errors.len());
    }
}

fn run() -> Result<(), Failure> {
    let cli = parse_cli().map_err(usage)?;
    let Some(command) = cli.positional.first().cloned() else {
        return Err(usage("missing command; try --help"));
    };
    match command.as_str() {
        "load" => {
            let [_, input] = &cli.positional[..] else {
                return Err(usage("usage: parj load <data.nt> -o <store.parj>"));
            };
            let out = cli.output.clone().ok_or_else(|| usage("load needs -o <store.parj>"))?;
            let mut e = Parj::builder().build();
            let report = if input.ends_with(".ttl") || input.ends_with(".turtle") {
                e.load_turtle_path_with(input, cli.on_parse_error())
                    .map_err(fail)?
            } else {
                e.load_ntriples_path_with(input, cli.on_parse_error())
                    .map_err(fail)?
            };
            report_skips(&report);
            e.finalize();
            e.save_snapshot(&out).map_err(fail)?;
            eprintln!(
                "loaded {} statements ({} distinct triples) -> {out}",
                report.loaded,
                e.num_triples()
            );
            Ok(())
        }
        "query" | "count" | "explain" | "profile" => {
            let [_, store_path, query_arg] = &cli.positional[..] else {
                return Err(usage(format!("usage: parj {command} <store> <sparql | @file>")));
            };
            let query = cli.query_text(query_arg).map_err(|e| usage(e.to_string()))?;
            let mut engine = cli.open(store_path).map_err(fail)?;
            match command.as_str() {
                "explain" => {
                    println!("{}", engine.explain(&query).map_err(fail)?);
                }
                "profile" => {
                    println!("{}", engine.profile(&query).map_err(fail)?);
                }
                "count" => {
                    let mut req = engine.request(&query).count_only().explain(cli.show_stats);
                    if cli.no_cache {
                        req = req.bypass_cache();
                    }
                    let out = req.run().map_err(fail)?;
                    println!("{}", out.count);
                    if cli.show_stats {
                        eprint!("{}", out.report());
                    } else {
                        eprintln!(
                            "prepare {} µs, execute {} µs; {} sequential / {} binary / {} index searches",
                            out.stats.prepare_micros,
                            out.stats.exec_micros,
                            out.stats.search.sequential_searches,
                            out.stats.search.binary_searches,
                            out.stats.search.index_lookups,
                        );
                    }
                }
                _ => {
                    let mut req = engine.request(&query).explain(cli.show_stats);
                    if cli.no_cache {
                        req = req.bypass_cache();
                    }
                    let out = req.run().map_err(fail)?;
                    let rows = out.rows.as_ref().map_or(0, Vec::len);
                    let stats = out.stats.clone();
                    print!("{}", out.clone().into_result().to_table());
                    if cli.show_stats {
                        eprint!("{}", out.report());
                    } else {
                        eprintln!(
                            "{} rows in {} µs (prepare {} µs, decode {} µs)",
                            rows,
                            stats.total_micros(),
                            stats.prepare_micros,
                            stats.decode_micros,
                        );
                    }
                }
            }
            Ok(())
        }
        "stats" => {
            let [_, store_path] = &cli.positional[..] else {
                return Err(usage("usage: parj stats <store>"));
            };
            let mut engine = cli.open(store_path).map_err(fail)?;
            if cli.prometheus || cli.json {
                let snap = engine.metrics_snapshot();
                if cli.prometheus {
                    print!("{}", snap.to_prometheus());
                } else {
                    println!("{}", snap.to_json());
                }
                return Ok(());
            }
            let store = engine.store();
            println!("triples:     {}", store.num_triples());
            println!("predicates:  {}", store.num_predicates());
            println!("resources:   {}", store.dict().num_resources());
            println!(
                "partitions:  {:.2} MiB",
                store.partitions_memory_bytes() as f64 / (1 << 20) as f64
            );
            println!(
                "dictionary:  {:.2} MiB",
                store.dict().memory_bytes() as f64 / (1 << 20) as f64
            );
            let mut parts: Vec<_> = store
                .partitions()
                .iter()
                .map(|p| (p.num_triples(), p.predicate()))
                .collect();
            parts.sort_unstable_by(|a, b| b.cmp(a));
            println!("top predicates:");
            for (n, pid) in parts.into_iter().take(10) {
                let term = store
                    .dict()
                    .decode_predicate(pid)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|_| format!("#{pid}"));
                println!("  {n:>10}  {term}");
            }
            Ok(())
        }
        "audit" => {
            let [_, store_path] = &cli.positional[..] else {
                return Err(usage("usage: parj audit <store>"));
            };
            let mut engine = cli.open(store_path).map_err(fail)?;
            let start = std::time::Instant::now();
            let report = engine.audit();
            eprintln!(
                "audited {} triples in {:.1?} ({} checks)",
                engine.num_triples(),
                start.elapsed(),
                report.checks_run,
            );
            println!("{report}");
            if report.is_clean() {
                Ok(())
            } else {
                Err((exit_codes::CORRUPT, format!(
                    "{} invariant violation(s)",
                    report.violations.len()
                )))
            }
        }
        "generate" => {
            let [_, which, scale] = &cli.positional[..] else {
                return Err(usage("usage: parj generate <lubm|watdiv> <scale> -o <out.nt>"));
            };
            let scale: usize = scale.parse().map_err(|_| usage("scale must be a number"))?;
            let out = cli.output.clone().ok_or_else(|| usage("generate needs -o <out.nt>"))?;
            let file = std::fs::File::create(&out).map_err(|e| usage(e.to_string()))?;
            let mut w = std::io::BufWriter::new(file);
            use std::io::Write;
            let mut n = 0u64;
            match which.as_str() {
                "lubm" => parj_datagen::lubm::generate(
                    &parj_datagen::lubm::LubmConfig {
                        universities: scale,
                        seed: 7,
                    },
                    |s, p, o| {
                        writeln!(w, "{s} {p} {o} .").expect("write");
                        n += 1;
                    },
                ),
                "watdiv" => parj_datagen::watdiv::generate(
                    &parj_datagen::watdiv::WatDivConfig { scale, seed: 7 },
                    |s, p, o| {
                        writeln!(w, "{s} {p} {o} .").expect("write");
                        n += 1;
                    },
                ),
                other => return Err(usage(format!("unknown generator {other:?}"))),
            }
            eprintln!("wrote {n} triples -> {out}");
            Ok(())
        }
        "serve" => {
            let [_, store_path] = &cli.positional[..] else {
                return Err(usage("usage: parj serve <store> [--addr HOST:PORT] [flags]"));
            };
            let engine = cli.open(store_path).map_err(fail)?;
            let shared = std::sync::Arc::new(parj_core::SharedParj::new(engine));
            let mut config = parj_server::ServerConfig {
                addr: cli.addr.clone().unwrap_or_else(|| "127.0.0.1:7878".to_string()),
                quota: cli.quota,
                default_query_timeout: cli.timeout,
                ..parj_server::ServerConfig::default()
            };
            if let Some(p) = cli.permits {
                config.permits = p;
            }
            let mut server = parj_server::ParjServer::spawn(shared, config)
                .map_err(|e| usage(format!("cannot serve: {e}")))?;
            eprintln!(
                "serving on http://{} (endpoints: /sparql /metrics /healthz /readyz)",
                server.addr()
            );
            match cli.serve_seconds {
                Some(secs) => std::thread::sleep(Duration::from_secs_f64(secs)),
                None => {
                    // Portable foreground lifetime: serve until stdin is
                    // closed (Ctrl-D, or the supervisor closing the pipe).
                    eprintln!("close stdin (Ctrl-D) to drain and exit");
                    use std::io::Read;
                    let mut sink = Vec::new();
                    let _ = std::io::stdin().read_to_end(&mut sink);
                }
            }
            let report = server.shutdown();
            eprintln!("{report}");
            Ok(())
        }
        other => Err(usage(format!("unknown command {other:?}; try --help"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(code)
        }
    }
}
