//! End-to-end tests of the `parj` binary: generate → load → stats /
//! count / query / explain, over both input syntaxes.

use std::path::{Path, PathBuf};
use std::process::Command;

fn parj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parj"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parj-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_load_query_roundtrip() {
    let dir = tmpdir("roundtrip");
    let nt = dir.join("data.nt");
    let snap = dir.join("data.parj");

    let out = parj()
        .args(["generate", "lubm", "1", "-o"])
        .arg(&nt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = parj().args(["load"]).arg(&nt).arg("-o").arg(&snap).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = parj().args(["stats"]).arg(&snap).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicates:  17"), "{text}");

    let out = parj()
        .args(["count"])
        .arg(&snap)
        .arg("SELECT ?x WHERE { ?x <http://lubm/headOf> ?d }")
        .output()
        .unwrap();
    assert!(out.status.success());
    let count: u64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(count > 0, "no department heads found");

    let out = parj()
        .args(["explain"])
        .arg(&snap)
        .arg("SELECT ?x WHERE { ?x <http://lubm/memberOf> <http://lubm/u0/d0> }")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("scan"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn turtle_input_and_query_file() {
    let dir = tmpdir("turtle");
    let ttl = dir.join("data.ttl");
    std::fs::write(
        &ttl,
        "@prefix e: <http://e/> .\ne:a e:knows e:b , e:c .\ne:b e:knows e:c .\n",
    )
    .unwrap();
    let rq = dir.join("query.rq");
    std::fs::write(&rq, "SELECT ?x ?y WHERE { ?x <http://e/knows> ?y }").unwrap();

    let out = parj()
        .args(["query"])
        .arg(&ttl)
        .arg(format!("@{}", rq.display()))
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // Header + 3 rows.
    assert_eq!(text.lines().count(), 4, "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reasoning_flag_changes_answers() {
    let dir = tmpdir("reasoning");
    let ttl = dir.join("onto.ttl");
    std::fs::write(
        &ttl,
        "@prefix e: <http://e/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         e:Dog rdfs:subClassOf e:Animal .\n\
         e:rex a e:Dog .\n",
    )
    .unwrap();
    let q = "SELECT ?x WHERE { ?x a <http://e/Animal> }";

    let plain = parj().args(["count"]).arg(&ttl).arg(q).output().unwrap();
    assert_eq!(String::from_utf8_lossy(&plain.stdout).trim(), "0");

    let smart = parj()
        .args(["count", "--reasoning"])
        .arg(&ttl)
        .arg(q)
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&smart.stdout).trim(), "1");

    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a small N-Triples file with three good statements.
fn write_small_nt(dir: &Path) -> PathBuf {
    let nt = dir.join("small.nt");
    std::fs::write(
        &nt,
        "<http://e/a> <http://e/p> <http://e/b> .\n\
         <http://e/c> <http://e/p> <http://e/d> .\n\
         <http://e/e> <http://e/p> <http://e/f> .\n",
    )
    .unwrap();
    nt
}

const ALL_PAIRS: &str = "SELECT ?x ?y WHERE { ?x <http://e/p> ?y }";

#[test]
fn exit_codes_per_failure_class() {
    let dir = tmpdir("exit-codes");
    let nt = write_small_nt(&dir);

    // 2: SPARQL parse error.
    let out = parj().args(["count"]).arg(&nt).arg("SELECT WHERE {").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));

    // 2: malformed RDF data.
    let bad = dir.join("bad.nt");
    std::fs::write(&bad, "<http://e/unclosed <http://e/p> <http://e/x> .\n").unwrap();
    let out = parj().args(["count"]).arg(&bad).arg(ALL_PAIRS).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));

    // 3: unsupported query feature (predicate projection).
    let out = parj()
        .args(["count"])
        .arg(&nt)
        .arg("SELECT ?p WHERE { ?x ?p ?o }")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));

    // 4: deadline exceeded (a zero timeout trips before any work).
    let out = parj()
        .args(["count", "--timeout", "0"])
        .arg(&nt)
        .arg(ALL_PAIRS)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline"));

    // 5: row budget exceeded (3 rows against a budget of 1).
    let out = parj()
        .args(["count", "--max-rows", "1"])
        .arg(&nt)
        .arg(ALL_PAIRS)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("budget"));

    // 0: the same query passes once the limits are generous.
    let out = parj()
        .args(["count", "--timeout", "60", "--max-rows", "1000"])
        .arg(&nt)
        .arg(ALL_PAIRS)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lossy_load_flags() {
    let dir = tmpdir("lossy");
    let nt = dir.join("mixed.nt");
    std::fs::write(
        &nt,
        "<http://e/a> <http://e/p> <http://e/b> .\n\
         garbage line one\n\
         <http://e/c> <http://e/p> <http://e/d> .\n\
         garbage line two\n",
    )
    .unwrap();

    // Strict load refuses the file with a parse-error exit code.
    let snap = dir.join("strict.parj");
    let out = parj().args(["load"]).arg(&nt).arg("-o").arg(&snap).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));

    // --lossy loads the good lines and reports the skips on stderr.
    let snap = dir.join("lossy.parj");
    let out = parj()
        .args(["load", "--lossy"])
        .arg(&nt)
        .arg("-o")
        .arg(&snap)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let err_text = String::from_utf8_lossy(&out.stderr);
    assert!(err_text.contains("skipped 2 malformed"), "{err_text}");
    assert!(err_text.contains("loaded 2 statements"), "{err_text}");

    let out = parj().args(["count"]).arg(&snap).arg(ALL_PAIRS).output().unwrap();
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");

    // --max-parse-errors bounds the tolerance: 2 bad lines > 1 allowed.
    let out = parj()
        .args(["load", "--max-parse-errors", "1"])
        .arg(&nt)
        .arg("-o")
        .arg(dir.join("capped.parj"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Querying a text file directly honors --lossy too.
    let out = parj()
        .args(["count", "--lossy"])
        .arg(&nt)
        .arg(ALL_PAIRS)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_passes_clean_store_and_localizes_corruption() {
    let dir = tmpdir("audit");
    let nt = write_small_nt(&dir);
    let snap = dir.join("small.parj");
    let out = parj().args(["load"]).arg(&nt).arg("-o").arg(&snap).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // A freshly built store audits clean (exit 0).
    let out = parj().args(["audit"]).arg(&snap).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("audit clean"));

    // Tamper the last OS value into a huge id: every replica stays
    // structurally valid, so the snapshot still *loads* — only the deep
    // audit catches the cross-structure disagreement, with coordinates.
    let mut bytes = std::fs::read(&snap).unwrap();
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    let bad = dir.join("tampered.parj");
    std::fs::write(&bad, &bytes).unwrap();

    let out = parj().args(["audit"]).arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("audit FAILED"), "{text}");
    assert!(text.contains("ids.value_range"), "{text}");
    assert!(text.contains("pair.multiset"), "{text}");
    // Coordinates name the replica: predicate 0, O-S order.
    assert!(text.contains("pred 0 O-S"), "{text}");

    // The other commands still read the tampered store (load-time
    // checks pass); audit is the tool that flags it.
    let out = parj().args(["stats"]).arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(0));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = parj().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = parj().args(["query", "/nonexistent.nt", "SELECT * WHERE { ?s ?p ?o }"]).output().unwrap();
    assert!(!out.status.success());

    let out = parj().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
