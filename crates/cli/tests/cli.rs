//! End-to-end tests of the `parj` binary: generate → load → stats /
//! count / query / explain, over both input syntaxes.

use std::path::PathBuf;
use std::process::Command;

fn parj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_parj"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parj-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_load_query_roundtrip() {
    let dir = tmpdir("roundtrip");
    let nt = dir.join("data.nt");
    let snap = dir.join("data.parj");

    let out = parj()
        .args(["generate", "lubm", "1", "-o"])
        .arg(&nt)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = parj().args(["load"]).arg(&nt).arg("-o").arg(&snap).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = parj().args(["stats"]).arg(&snap).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicates:  17"), "{text}");

    let out = parj()
        .args(["count"])
        .arg(&snap)
        .arg("SELECT ?x WHERE { ?x <http://lubm/headOf> ?d }")
        .output()
        .unwrap();
    assert!(out.status.success());
    let count: u64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();
    assert!(count > 0, "no department heads found");

    let out = parj()
        .args(["explain"])
        .arg(&snap)
        .arg("SELECT ?x WHERE { ?x <http://lubm/memberOf> <http://lubm/u0/d0> }")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("scan"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn turtle_input_and_query_file() {
    let dir = tmpdir("turtle");
    let ttl = dir.join("data.ttl");
    std::fs::write(
        &ttl,
        "@prefix e: <http://e/> .\ne:a e:knows e:b , e:c .\ne:b e:knows e:c .\n",
    )
    .unwrap();
    let rq = dir.join("query.rq");
    std::fs::write(&rq, "SELECT ?x ?y WHERE { ?x <http://e/knows> ?y }").unwrap();

    let out = parj()
        .args(["query"])
        .arg(&ttl)
        .arg(format!("@{}", rq.display()))
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    // Header + 3 rows.
    assert_eq!(text.lines().count(), 4, "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reasoning_flag_changes_answers() {
    let dir = tmpdir("reasoning");
    let ttl = dir.join("onto.ttl");
    std::fs::write(
        &ttl,
        "@prefix e: <http://e/> .\n\
         @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
         e:Dog rdfs:subClassOf e:Animal .\n\
         e:rex a e:Dog .\n",
    )
    .unwrap();
    let q = "SELECT ?x WHERE { ?x a <http://e/Animal> }";

    let plain = parj().args(["count"]).arg(&ttl).arg(q).output().unwrap();
    assert_eq!(String::from_utf8_lossy(&plain.stdout).trim(), "0");

    let smart = parj()
        .args(["count", "--reasoning"])
        .arg(&ttl)
        .arg(q)
        .output()
        .unwrap();
    assert_eq!(String::from_utf8_lossy(&smart.stdout).trim(), "1");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = parj().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = parj().args(["query", "/nonexistent.nt", "SELECT * WHERE { ?s ?p ?o }"]).output().unwrap();
    assert!(!out.status.success());

    let out = parj().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
