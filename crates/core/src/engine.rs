//! The PARJ engine: configuration, lifecycle, and query execution.

use std::path::Path;
use std::time::{Duration, Instant};

use parj_sync::Arc;

use parj_dict::{DictView, Id, Term};
use parj_join::{
    calibrate, execute_pooled_view, execute_view, CalibrationConfig, CalibrationResult,
    CancelToken, CollectSink, CountSink, ExecFailure, ExecFailureKind, ExecOptions, PhysicalPlan,
    ProbeStrategy, QueryGuard, RowBatch, SearchStats, ThresholdTable, WorkerPool,
    DEFAULT_MORSEL_SIZE,
};
use parj_cache::{CachedResult, PlanEntry, QueryCache, ResultEntry};
use parj_obs::{CacheKind, EngineMetrics, MetricsSnapshot, QueryOutcomeClass, QueryPhase, SearchTotals};
use parj_optimizer::{optimize, Stats};
use parj_rio::{LoadReport, NTriplesParser, OnParseError};
use parj_sparql::parse_query;
use parj_store::{DeltaOverlay, StoreBuilder, StoreOptions, TripleStore};

use crate::error::ParjError;
use crate::fingerprint::{canonicalize_query, query_fingerprint};
use crate::hierarchy::Hierarchy;
use crate::request::{QueryOutcome, RunMode, RunSpec};
use crate::result::{CacheStatus, PhaseTimings, QueryResult, QueryRunStats};
use crate::translate::{translate, Translation};

/// Engine configuration (fixed at build; per-query aspects can be
/// overridden with [`RunOverrides`]).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads per query. The paper's optimum was 2× physical
    /// cores (hyper-threading); default: `available_parallelism`.
    pub threads: usize,
    /// Worker threads for bulk loads (chunked parsing + sharded
    /// dictionary encode + pair routing). The loaded dictionary and
    /// store are byte-identical at any value; default:
    /// `available_parallelism`.
    pub load_threads: usize,
    /// Driver keys per morsel (load-balancing granularity): workers
    /// pull fixed-size morsels of the driver domain off a shared
    /// cursor. Smaller morsels smooth skew at slightly higher cursor
    /// traffic. Default: [`DEFAULT_MORSEL_SIZE`].
    pub morsel_size: usize,
    /// Dispatch multi-threaded queries onto the engine-owned persistent
    /// [`WorkerPool`] instead of spawning scoped threads per query.
    /// Results are identical either way; the pool removes per-query
    /// thread churn (§5.2.3's spawn overhead). Default: `true`.
    pub use_pool: bool,
    /// Probe strategy; PARJ's default is the adaptive binary/sequential
    /// switch of Algorithm 1.
    pub strategy: ProbeStrategy,
    /// Store build options (ID-to-Position index on/off + interval).
    pub store: StoreOptions,
    /// Run Algorithm 2's timed calibration at finalize. When `false`
    /// the paper's published windows (200 binary / 20 index) are used —
    /// deterministic and good on commodity hardware.
    pub calibrate: bool,
    /// Calibration tuning (used when `calibrate` is true).
    pub calibration: CalibrationConfig,
    /// Equi-depth histogram buckets per column.
    pub histogram_buckets: usize,
    /// Answer queries with respect to RDFS class/property hierarchies
    /// found in the data (`rdfs:subClassOf` / `rdfs:subPropertyOf`), by
    /// unioning partitions during the pipelined execution — the paper's
    /// §6 extension. Results are deduplicated to entailment semantics.
    pub reasoning: bool,
    /// Run plans whose driver domain is below this many entries on a
    /// single thread, regardless of the configured thread count — the
    /// §3-suggested extension "such that very simple and selective
    /// queries could be executed with fewer resources". `0` disables.
    pub small_query_threshold: usize,
    /// Wall-clock deadline applied to every query (measured from the
    /// start of the run, covering prepare + execution). `None` means
    /// unlimited. Per-run [`RunOverrides::timeout`] wins when set.
    pub timeout: Option<Duration>,
    /// Result-row budget applied to every query: the join aborts with
    /// [`crate::ParjError::BudgetExceeded`] once it has *produced* more
    /// rows than this (counted before `LIMIT`/`OFFSET` trimming, with a
    /// bounded overshoot of up to `threads × GUARD_BATCH`). `None`
    /// means unlimited. Per-run [`RunOverrides::max_rows`] wins.
    pub max_result_rows: Option<u64>,
    /// Feed the engine's [`EngineMetrics`] registry from query runs,
    /// loads and store rebuilds. When `false` the executor carries no
    /// recorder and the hot path is untouched. Default: `true` (the
    /// registry is lock-light — atomic counters only).
    pub record_metrics: bool,
    /// Serve repeated queries from the plan/result cache. Entries are
    /// stamped with the store generation and never served after a
    /// reload, so cached answers are always identical to cold runs.
    /// Default: `false` — with caching off the request path is
    /// byte-for-byte the uncached one.
    pub cache: bool,
    /// Byte budget for cached results (the plan tier gets a small
    /// fixed slice on top). Evicted sharded-LRU when exceeded.
    /// Default: 64 MiB.
    pub cache_bytes: usize,
    /// Resident delta pairs per predicate above which a mutation batch
    /// compacts that predicate's add/delete runs into a replacement
    /// CSR partition (probes on it go back to the clean fast path).
    /// `0` disables automatic compaction — the delta only folds into
    /// the base store at the next full rebuild. Default: 4096.
    pub delta_compaction_threshold: usize,
    /// Block-compress replica value runs (frame-of-reference +
    /// bitpacked deltas, [`parj_store::codec`]) when a replica holds at
    /// least [`EngineConfig::compress_min_values`] triples and the
    /// packed form is smaller than raw. Query results are byte-identical
    /// either way; this trades a small decode cost on probe for a much
    /// smaller resident store. Default: `true`.
    pub compress_replicas: bool,
    /// Size threshold for [`EngineConfig::compress_replicas`]: replicas
    /// below this many values always stay raw (short runs gain nothing
    /// and the skip-table overhead would dominate). Default: 4096.
    pub compress_min_values: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: parj_sync::thread::available_parallelism().map_or(1, |n| n.get()),
            load_threads: parj_sync::thread::available_parallelism().map_or(1, |n| n.get()),
            morsel_size: DEFAULT_MORSEL_SIZE,
            use_pool: true,
            strategy: ProbeStrategy::AdaptiveBinary,
            store: StoreOptions::default(),
            calibrate: false,
            calibration: CalibrationConfig::default(),
            histogram_buckets: 64,
            reasoning: false,
            small_query_threshold: 2048,
            timeout: None,
            max_result_rows: None,
            record_metrics: true,
            cache: false,
            cache_bytes: 64 << 20,
            delta_compaction_threshold: 4096,
            compress_replicas: true,
            compress_min_values: 4096,
        }
    }
}

impl EngineConfig {
    /// The [`StoreOptions`] actually used to build stores: the
    /// configured options with the replica-compression policy folded
    /// in, so partition builds, delta compactions and snapshot reloads
    /// all apply the same policy.
    pub fn effective_store_options(&self) -> StoreOptions {
        StoreOptions {
            compress_min_values: self
                .compress_replicas
                .then_some(self.compress_min_values),
            ..self.store
        }
    }
}

/// Builder for [`Parj`].
#[derive(Debug, Default, Clone)]
pub struct ParjBuilder {
    config: EngineConfig,
}

impl ParjBuilder {
    /// Worker threads per query.
    pub fn threads(mut self, n: usize) -> Self {
        self.config.threads = n.max(1);
        self
    }

    /// Worker threads for bulk loads. Results are byte-identical at
    /// any value — this tunes speed only.
    pub fn load_threads(mut self, n: usize) -> Self {
        self.config.load_threads = n.max(1);
        self
    }

    /// Driver keys per morsel (see [`EngineConfig::morsel_size`]).
    pub fn morsel_size(mut self, n: usize) -> Self {
        self.config.morsel_size = n.max(1);
        self
    }

    /// Dispatch multi-threaded queries on the persistent worker pool
    /// (see [`EngineConfig::use_pool`]).
    pub fn use_pool(mut self, on: bool) -> Self {
        self.config.use_pool = on;
        self
    }

    /// Driver shards per thread (legacy knob). Static sharding was
    /// replaced by morsel-driven dispatch; `n` shards per thread map
    /// onto a morsel size of `DEFAULT_MORSEL_SIZE / n` (floored at 1).
    #[deprecated(
        since = "0.1.0",
        note = "static sharding was replaced by morsel-driven dispatch; use `morsel_size`"
    )]
    pub fn shards_per_thread(mut self, n: usize) -> Self {
        self.config.morsel_size = (DEFAULT_MORSEL_SIZE / n.max(1)).max(1);
        self
    }

    /// Probe strategy.
    pub fn strategy(mut self, s: ProbeStrategy) -> Self {
        self.config.strategy = s;
        self
    }

    /// Build ID-to-Position indexes (§4.2). Default: on.
    pub fn build_idpos(mut self, on: bool) -> Self {
        self.config.store.build_idpos = on;
        self
    }

    /// ID-to-Position block interval (multiple of 64).
    pub fn idpos_interval(mut self, interval: usize) -> Self {
        self.config.store.idpos_interval = interval;
        self
    }

    /// Run the timed calibration of Algorithm 2 at finalize.
    pub fn calibrate(mut self, on: bool) -> Self {
        self.config.calibrate = on;
        self
    }

    /// Calibration tuning.
    pub fn calibration_config(mut self, cfg: CalibrationConfig) -> Self {
        self.config.calibration = cfg;
        self
    }

    /// Histogram resolution.
    pub fn histogram_buckets(mut self, buckets: usize) -> Self {
        self.config.histogram_buckets = buckets.max(1);
        self
    }

    /// Driver-domain size below which plans run single-threaded (0
    /// disables the heuristic).
    pub fn small_query_threshold(mut self, entries: usize) -> Self {
        self.config.small_query_threshold = entries;
        self
    }

    /// Wall-clock deadline for every query run by this engine.
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.config.timeout = Some(limit);
        self
    }

    /// Result-row budget for every query run by this engine (rows
    /// produced by the join, pre-`LIMIT`).
    pub fn max_result_rows(mut self, rows: u64) -> Self {
        self.config.max_result_rows = Some(rows);
        self
    }

    /// Feed the engine's metrics registry (on by default; see
    /// [`EngineConfig::record_metrics`]).
    pub fn record_metrics(mut self, on: bool) -> Self {
        self.config.record_metrics = on;
        self
    }

    /// Serve repeated queries from the plan/result cache (off by
    /// default; see [`EngineConfig::cache`]).
    pub fn cache(mut self, on: bool) -> Self {
        self.config.cache = on;
        self
    }

    /// Byte budget for cached results (see
    /// [`EngineConfig::cache_bytes`]).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.config.cache_bytes = bytes;
        self
    }

    /// Per-predicate delta size that triggers compaction during a
    /// mutation batch (see
    /// [`EngineConfig::delta_compaction_threshold`]; `0` disables).
    pub fn delta_compaction_threshold(mut self, pairs: usize) -> Self {
        self.config.delta_compaction_threshold = pairs;
        self
    }

    /// Block-compress large replica value runs (see
    /// [`EngineConfig::compress_replicas`]). On by default.
    pub fn compress_replicas(mut self, on: bool) -> Self {
        self.config.compress_replicas = on;
        self
    }

    /// Replica size threshold for compression (see
    /// [`EngineConfig::compress_min_values`]).
    pub fn compress_min_values(mut self, values: usize) -> Self {
        self.config.compress_min_values = values.max(1);
        self
    }

    /// Enable RDFS class/property hierarchy answering (§6 of the paper):
    /// `rdf:type`/property patterns expand into unions over
    /// sub-classes/-properties declared in the data, with solutions
    /// deduplicated to entailment semantics. No materialization happens.
    pub fn rdfs_reasoning(mut self, on: bool) -> Self {
        self.config.reasoning = on;
        self
    }

    /// Builds an empty engine.
    pub fn build(self) -> Parj {
        Parj {
            cache: Arc::new(QueryCache::new(self.config.cache_bytes)),
            pool: Parj::make_pool(&self.config),
            config: self.config,
            staged: Some(StoreBuilder::new()),
            ready: None,
            metrics: Arc::new(EngineMetrics::new()),
        }
    }
}

/// Per-query overrides of engine configuration — used by the benchmark
/// harness to sweep threads and strategies without reloading data, and
/// by callers to attach per-run lifecycle limits (deadline, row budget,
/// cancellation token).
#[derive(Debug, Default, Clone)]
pub struct RunOverrides {
    /// Override worker threads.
    pub threads: Option<usize>,
    /// Override the driver morsel size (load-balancing granularity).
    pub morsel_size: Option<usize>,
    /// Override probe strategy.
    pub strategy: Option<ProbeStrategy>,
    /// Wall-clock deadline for this run (wins over
    /// [`EngineConfig::timeout`]).
    pub timeout: Option<Duration>,
    /// Result-row budget for this run (wins over
    /// [`EngineConfig::max_result_rows`]).
    pub max_rows: Option<u64>,
    /// Cancellation token polled by the workers of this run; trip it
    /// from any thread to stop the query. See [`Parj::query_handle`].
    pub cancel: Option<CancelToken>,
}

impl RunOverrides {
    /// Override only the thread count.
    pub fn threads(n: usize) -> Self {
        Self::default().with_threads(n)
    }

    /// Override only the strategy.
    pub fn strategy(s: ProbeStrategy) -> Self {
        Self::default().with_strategy(s)
    }

    /// Override only the deadline.
    pub fn timeout(limit: Duration) -> Self {
        Self::default().with_timeout(limit)
    }

    /// Override only the row budget.
    pub fn max_rows(rows: u64) -> Self {
        Self::default().with_max_rows(rows)
    }

    /// Sets the thread count (chainable).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Sets the probe strategy (chainable).
    pub fn with_strategy(mut self, s: ProbeStrategy) -> Self {
        self.strategy = Some(s);
        self
    }

    /// Sets the driver morsel size (chainable).
    pub fn with_morsel_size(mut self, n: usize) -> Self {
        self.morsel_size = Some(n);
        self
    }

    /// Sets the wall-clock deadline (chainable).
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.timeout = Some(limit);
        self
    }

    /// Sets the result-row budget (chainable).
    pub fn with_max_rows(mut self, rows: u64) -> Self {
        self.max_rows = Some(rows);
        self
    }

    /// Attaches a cancellation token (chainable).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Prepared query: translation metadata + one plan per pattern set
/// (`None` when a constant is absent and the result is trivially empty).
type Prepared = Option<(crate::translate::TranslatedQuery, Vec<PhysicalPlan>)>;

/// Finalized query-ready state. Store and thresholds live behind
/// `Arc`s so pooled execution can hand `'static` clones to persistent
/// workers; borrow-based callers are unaffected (auto-deref).
struct Ready {
    store: Arc<TripleStore>,
    /// Pending mutations since the last full rebuild: per-predicate
    /// sorted add/delete runs plus a dictionary extension, consulted by
    /// probes alongside the CSR replicas. Clean (empty) on every
    /// finalize; mutated via `Arc::make_mut` under `&mut Parj` (or the
    /// [`crate::SharedParj`] write lock), cheaply cloned into pooled
    /// execution jobs.
    delta: Arc<DeltaOverlay>,
    stats: Stats,
    thresholds: Arc<ThresholdTable>,
    calibration: CalibrationResult,
    hierarchy: Option<Hierarchy>,
}

impl Ready {
    /// Fresh ready state around a just-built store (clean delta).
    fn new(
        store: TripleStore,
        stats: Stats,
        thresholds: ThresholdTable,
        calibration: CalibrationResult,
        hierarchy: Option<Hierarchy>,
    ) -> Self {
        let store = Arc::new(store);
        let delta = Arc::new(DeltaOverlay::new(&store));
        Ready { store, delta, stats, thresholds: Arc::new(thresholds), calibration, hierarchy }
    }

    /// The dictionary lookup/decode surface: base plus delta terms.
    fn dict_view(&self) -> DictView<'_> {
        DictView::with_delta(self.store.dict(), self.delta.dict())
    }

    /// The delta to thread into the executor, or `None` when clean (the
    /// clean path is byte-for-byte the pre-delta executor).
    fn exec_delta(&self) -> Option<&Arc<DeltaOverlay>> {
        (!self.delta.is_clean()).then_some(&self.delta)
    }

    /// Triples visible to queries (base adjusted by the delta).
    fn visible_triples(&self) -> usize {
        self.delta.visible_triples(&self.store)
    }
}

/// The PARJ engine. See the crate docs for the lifecycle.
pub struct Parj {
    config: EngineConfig,
    staged: Option<StoreBuilder>,
    ready: Option<Ready>,
    metrics: Arc<EngineMetrics>,
    /// Plan/result cache. Always present (cheap when unused); probed
    /// only when [`EngineConfig::cache`] is on. Its store generation is
    /// bumped by every [`Parj::finalize`] that rebuilds the store, which
    /// invalidates all earlier entries without touching them.
    cache: Arc<QueryCache>,
    /// Persistent worker pool for morsel dispatch, created once per
    /// engine when [`EngineConfig::use_pool`] is on and more than one
    /// thread is configured. Workers park between queries and are
    /// joined when the engine (and any outstanding handles) drops.
    pool: Option<Arc<WorkerPool>>,
}

impl Parj {
    /// Starts building an engine.
    pub fn builder() -> ParjBuilder {
        ParjBuilder::default()
    }

    /// Engine with all-default configuration.
    pub fn new() -> Parj {
        Self::builder().build()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Adds one triple. On a staged engine this appends to the loading
    /// builder; on a finalized engine it is now a shim over
    /// [`Parj::mutate`] — the triple lands in the mutation delta and is
    /// visible to the next query without a store rebuild.
    #[deprecated(note = "use `engine.mutate().insert(s, p, o).run()`")]
    pub fn add_triple(&mut self, s: &Term, p: &Term, o: &Term) {
        if let Some(staged) = self.staged.as_mut() {
            staged.add_term_triple(s, p, o);
        } else {
            // Inserts into a finalized engine cannot fail (the only
            // mutate errors are executor-level); keep the historic
            // infallible signature.
            let _ = self
                .mutate()
                .insert(s.clone(), p.clone(), o.clone())
                .run();
        }
    }

    /// Parses and loads N-Triples text; returns the number of statements
    /// read. Strict mode: the first malformed line aborts the load (see
    /// [`Parj::load_ntriples_str_with`] for lossy loading). Runs the
    /// parallel load pipeline on [`EngineConfig::load_threads`] workers;
    /// the result is identical at any thread count.
    pub fn load_ntriples_str(&mut self, text: &str) -> Result<usize, ParjError> {
        self.load_ntriples_str_with(text, OnParseError::Abort)
            .map(|r| r.loaded)
    }

    /// [`Parj::load_ntriples_str`] under an error policy: with
    /// [`OnParseError::Skip`], malformed lines are dropped (bounded by
    /// `max_errors`) and the returned [`LoadReport`] records their
    /// positioned diagnostics. Lines parsed before an abort remain
    /// staged, exactly as in the serial reader path.
    pub fn load_ntriples_str_with(
        &mut self,
        text: &str,
        on_error: OnParseError,
    ) -> Result<LoadReport, ParjError> {
        self.unfinalize();
        let t0 = Instant::now();
        let staged = self.staged.as_mut().expect("unfinalize staged a builder");
        let report =
            crate::loader::load_ntriples_text(staged, text, on_error, self.config.load_threads)?;
        self.record_load(&report, t0, text.len());
        Ok(report)
    }

    /// Loads an N-Triples file (strict mode) through the parallel load
    /// pipeline (the file is read into memory; use
    /// [`Parj::load_ntriples_reader`] to stream serially instead).
    pub fn load_ntriples_path(&mut self, path: impl AsRef<Path>) -> Result<usize, ParjError> {
        let text = std::fs::read_to_string(path)?;
        self.load_ntriples_str(&text)
    }

    /// Loads an N-Triples file under an error policy.
    pub fn load_ntriples_path_with(
        &mut self,
        path: impl AsRef<Path>,
        on_error: OnParseError,
    ) -> Result<LoadReport, ParjError> {
        let text = std::fs::read_to_string(path)?;
        self.load_ntriples_str_with(&text, on_error)
    }

    /// Parses and loads Turtle text; returns the number of triples
    /// read (strict mode).
    pub fn load_turtle_str(&mut self, text: &str) -> Result<usize, ParjError> {
        self.load_turtle_str_with(text, OnParseError::Abort)
            .map(|r| r.loaded)
    }

    /// [`Parj::load_turtle_str`] under an error policy: with
    /// [`OnParseError::Skip`], malformed statements are dropped whole
    /// and recorded in the returned [`LoadReport`].
    pub fn load_turtle_str_with(
        &mut self,
        text: &str,
        on_error: OnParseError,
    ) -> Result<LoadReport, ParjError> {
        let t0 = Instant::now();
        let (parts, report) =
            crate::loader::parse_turtle_text(text, on_error, self.config.load_threads)?;
        self.unfinalize();
        let staged = self.staged.as_mut().expect("unfinalize staged a builder");
        staged.add_triples_parallel(parts, self.config.load_threads);
        self.record_load(&report, t0, text.len());
        Ok(report)
    }

    /// Loads a Turtle file (strict mode).
    pub fn load_turtle_path(&mut self, path: impl AsRef<Path>) -> Result<usize, ParjError> {
        let text = std::fs::read_to_string(path)?;
        self.load_turtle_str(&text)
    }

    /// Loads a Turtle file under an error policy.
    pub fn load_turtle_path_with(
        &mut self,
        path: impl AsRef<Path>,
        on_error: OnParseError,
    ) -> Result<LoadReport, ParjError> {
        let text = std::fs::read_to_string(path)?;
        self.load_turtle_str_with(&text, on_error)
    }

    /// Loads N-Triples from any buffered reader (strict mode). Streams
    /// serially; prefer the `str`/`path` variants for large inputs —
    /// they run the parallel load pipeline.
    pub fn load_ntriples_reader<R: std::io::BufRead>(
        &mut self,
        reader: R,
    ) -> Result<usize, ParjError> {
        self.load_ntriples_reader_with(reader, OnParseError::Abort)
            .map(|r| r.loaded)
    }

    /// Loads N-Triples from any buffered reader under an error policy.
    /// Lines parsed before an abort remain staged (both modes); in skip
    /// mode the load only aborts when `max_errors` is exceeded or on an
    /// I/O error.
    pub fn load_ntriples_reader_with<R: std::io::BufRead>(
        &mut self,
        reader: R,
        on_error: OnParseError,
    ) -> Result<LoadReport, ParjError> {
        self.unfinalize();
        let t0 = Instant::now();
        let staged = self.staged.as_mut().expect("unfinalize staged a builder");
        let report = parj_rio::drain_triples(NTriplesParser::new(reader), on_error, |(s, p, o)| {
            staged.add_term_triple(&s, &p, &o);
        })?;
        // Input size is unknown for a streaming reader; only the
        // statement counters advance.
        self.record_load(&report, t0, 0);
        Ok(report)
    }

    /// Feeds one successful load into the metrics registry.
    fn record_load(&self, report: &LoadReport, started: Instant, bytes: usize) {
        if !self.config.record_metrics {
            return;
        }
        self.metrics.record_load(
            report.loaded as u64,
            report.skipped as u64,
            started.elapsed().as_micros() as u64,
            bytes as u64,
        );
    }

    /// Builds partitions, statistics and thresholds from the staged
    /// triples. Idempotent; called implicitly by the query methods.
    pub fn finalize(&mut self) {
        let Some(staged) = self.staged.take() else {
            return;
        };
        let store = staged.build_with(self.config.effective_store_options());
        let stats = Stats::build_with_buckets(&store, self.config.histogram_buckets);
        let calibration = if self.config.calibrate {
            calibrate(&store, &self.config.calibration)
        } else {
            CalibrationResult::paper_defaults()
        };
        let thresholds = ThresholdTable::from_calibration(&store, &calibration);
        let hierarchy = self.config.reasoning.then(|| Hierarchy::extract(&store));
        self.ready = Some(Ready::new(store, stats, thresholds, calibration, hierarchy));
        // The store was rebuilt (idempotent finalizes return above):
        // advance the cache generation so every entry stamped before
        // this point is stale and can never be served again.
        self.cache.bump_generation();
        self.publish_store_gauges();
        // A rebuild folds (or predates) any delta: zero its gauges.
        self.publish_delta_gauges();
    }

    /// Refreshes the memory-footprint gauges from the finalized store
    /// (store size, per-predicate replica bytes, dictionary sections).
    fn publish_store_gauges(&self) {
        if !self.config.record_metrics {
            return;
        }
        let Some(ready) = self.ready.as_ref() else {
            return;
        };
        let store = &ready.store;
        let dict = store.dict();
        let per_predicate = store.partitions().iter().map(|p| {
            let label = dict
                .decode_predicate(p.predicate())
                .map_or_else(|_| format!("#{}", p.predicate()), |t| t.to_string());
            (label, p.memory_bytes() as u64)
        });
        self.metrics.set_store_memory(
            store.num_triples() as u64,
            store.partitions_memory_bytes() as u64,
            per_predicate,
            dict.resources_memory_bytes() as u64,
            dict.predicates_memory_bytes() as u64,
        );
    }

    /// The engine's metrics registry. It is owned by the engine, lives
    /// for its whole lifetime, and accumulates across queries; clone
    /// the `Arc` to scrape from another thread.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time snapshot of every metric family, ready for
    /// Prometheus-text ([`MetricsSnapshot::to_prometheus`]) or JSON
    /// ([`MetricsSnapshot::to_json`]) exposition. Pool counters are
    /// refreshed from the live [`WorkerPool`] first, so scrapes see
    /// current busy/park/queue figures.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        if let (Some(pool), true) = (&self.pool, self.config.record_metrics) {
            let s = pool.stats();
            self.metrics.publish_pool(&parj_obs::PoolTotals {
                workers: s.workers,
                jobs: s.jobs,
                helper_joins: s.helper_joins,
                busy_micros: s.busy_micros,
                park_micros: s.park_micros,
                queue_depth: s.queue_depth,
                panics_contained: s.panics_contained,
            });
        }
        if self.config.record_metrics {
            // Per-level lock contention (process-global: parj-sync owns
            // the counters, a snapshot publishes the latest view).
            let totals = parj_sync::lock_wait_totals();
            self.metrics
                .publish_lock_waits(totals.iter().map(|&(level, v)| (level, v)));
        }
        self.metrics.snapshot()
    }

    /// True once finalized (and not re-opened by later loads).
    pub fn is_finalized(&self) -> bool {
        self.staged.is_none() && self.ready.is_some()
    }

    /// Moves a finalized store back into staging for further loads,
    /// folding any pending mutation delta in: the staged dictionary is
    /// the base plus the delta's new terms (re-encoded in insertion
    /// order, which reproduces identical dense ids), and the staged
    /// triples are the merged visible view (base minus tombstones plus
    /// inserts). A rebuild from this staging is therefore byte-identical
    /// to the store the delta-overlaid probes answered from.
    fn unfinalize(&mut self) {
        if self.staged.is_some() {
            return;
        }
        let ready = self.ready.take().expect("either staged or ready");
        let mut builder = StoreBuilder::new();
        let mut dict = ready.store.dict().clone();
        ready.delta.dict().fold_into(&mut dict);
        *builder.dict_mut() = dict;
        if ready.delta.is_clean() {
            for t in ready.store.iter_triples() {
                builder.add_encoded(t);
            }
        } else {
            for t in ready.delta.iter_merged_triples(&ready.store) {
                builder.add_encoded(t);
            }
        }
        self.staged = Some(builder);
    }

    /// Folds a non-clean mutation delta into a full store rebuild
    /// (stats, thresholds, hierarchy and cache generation included).
    /// No-op when the delta is clean or the engine is staged.
    fn fold_delta(&mut self) {
        if self.ready.as_ref().is_some_and(|r| !r.delta.is_clean()) {
            self.unfinalize();
            self.finalize();
        }
    }

    fn ensure_ready(&mut self) -> &Ready {
        self.finalize();
        self.ready.as_ref().expect("finalize sets ready")
    }

    /// The underlying store (finalizing first if needed).
    pub fn store(&mut self) -> &TripleStore {
        &self.ensure_ready().store
    }

    /// Optimizer statistics.
    pub fn stats(&mut self) -> &Stats {
        &self.ensure_ready().stats
    }

    /// The calibration result in effect.
    pub fn calibration(&mut self) -> CalibrationResult {
        self.ensure_ready().calibration
    }

    /// Total triples visible to queries (the finalized base adjusted by
    /// any pending mutation delta).
    pub fn num_triples(&mut self) -> usize {
        self.ensure_ready().visible_triples()
    }

    /// Total triples visible in the finalized store, without finalizing.
    ///
    /// `&self` so observers (readiness probes, stat pages) can read it
    /// under a shared lock while queries run. Counts the finalized
    /// store adjusted by any pending mutation delta — staged,
    /// un-finalized triples are not included; check
    /// [`Parj::is_finalized`] first if that distinction matters.
    pub fn num_triples_ref(&self) -> usize {
        self.ready.as_ref().map_or(0, Ready::visible_triples)
    }

    /// Runs the deep structural audit over the finalized store:
    /// CSR/index invariants, replica-pair multiset equality, dictionary
    /// bijectivity, and snapshot round-trip stability
    /// ([`parj_audit::audit_all`]). Finalizes first if needed.
    ///
    /// Loading already performs the linear structural checks; this adds
    /// the `O(n log n)` cross-structure checks that loads skip.
    pub fn audit(&mut self) -> parj_audit::AuditReport {
        let ready = self.ensure_ready();
        let mut report = parj_audit::audit_all(&ready.store);
        if !ready.delta.is_clean() {
            report.merge(parj_audit::audit_delta(&ready.store, &ready.delta));
        }
        report
    }

    /// Like [`Parj::audit`], but folds a dirty report into
    /// [`ParjError::CorruptStore`] for `?`-style propagation.
    pub fn audit_strict(&mut self) -> Result<(), ParjError> {
        let report = self.audit();
        if report.is_clean() {
            Ok(())
        } else {
            Err(ParjError::CorruptStore { report })
        }
    }

    /// Borrows the finalized state or reports [`ParjError::NotFinalized`].
    fn ready_or_err(&self) -> Result<&Ready, ParjError> {
        if self.staged.is_some() {
            return Err(ParjError::NotFinalized);
        }
        self.ready.as_ref().ok_or(ParjError::NotFinalized)
    }

    /// Builds executor options for one query run through the validating
    /// [`ExecOptions::builder`] — an override of zero threads is
    /// rejected as [`ParjError::InvalidOptions`] instead of being
    /// silently clamped. When any lifecycle limit is in effect
    /// (deadline, row budget, cancel token) a single [`QueryGuard`] is
    /// armed here and shared by every plan of the run — union branches
    /// draw down one budget and one deadline clock.
    fn exec_options(
        config: &EngineConfig,
        over: &RunOverrides,
        recorder: Option<Arc<dyn parj_join::Recorder>>,
    ) -> Result<ExecOptions, ParjError> {
        let timeout = over.timeout.or(config.timeout);
        let max_rows = over.max_rows.or(config.max_result_rows);
        let guard = if timeout.is_some() || max_rows.is_some() || over.cancel.is_some() {
            let token = over.cancel.clone().unwrap_or_default();
            Some(Arc::new(QueryGuard::new(timeout, max_rows, token)))
        } else {
            None
        };
        ExecOptions::builder()
            .threads(over.threads.unwrap_or(config.threads))
            .morsel_size(over.morsel_size.unwrap_or(config.morsel_size))
            .strategy(over.strategy.unwrap_or(config.strategy))
            .guard(guard)
            .recorder(recorder)
            .build()
            .map_err(|e| ParjError::InvalidOptions(e.to_string()))
    }

    /// §3's small-query extension: a plan driving a tiny domain runs on
    /// one thread; the thread-spawn overhead the paper discusses in
    /// §5.2.3 would otherwise dominate it.
    fn opts_for_plan(
        config: &EngineConfig,
        ready: &Ready,
        base: &ExecOptions,
        explicit_threads: bool,
        plan: &PhysicalPlan,
    ) -> ExecOptions {
        // An explicit per-run thread override (benchmark sweeps) always
        // wins over the heuristic.
        if !explicit_threads
            && config.small_query_threshold > 0
            && base.threads > 1
            && parj_join::driver_domain_view(
                &ready.store,
                ready.exec_delta().map(|d| d.as_ref()),
                plan,
                base,
            ) < config.small_query_threshold
        {
            ExecOptions {
                threads: 1,
                ..base.clone()
            }
        } else {
            base.clone()
        }
    }

    /// Dispatches one plan: multi-threaded runs go to the persistent
    /// pool when the engine owns one (no per-query thread churn);
    /// single-threaded runs and pool-less engines use the scoped
    /// executor. Both paths produce byte-identical morsel-ordered
    /// results.
    fn exec_plan<S, F>(
        pool: Option<&Arc<WorkerPool>>,
        ready: &Ready,
        plan: &PhysicalPlan,
        opts: &ExecOptions,
        factory: F,
    ) -> parj_join::ExecResult<(Vec<S>, SearchStats)>
    where
        S: parj_join::Sink + Send + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        match pool {
            Some(pool) if opts.threads > 1 => {
                // The plan is tiny (a few steps + projection); cloning
                // it into an Arc is what lets pool workers outlive the
                // borrow without unsafe.
                let plan = Arc::new(plan.clone());
                execute_pooled_view(
                    pool,
                    &ready.store,
                    ready.exec_delta(),
                    &plan,
                    opts,
                    &ready.thresholds,
                    factory,
                )
            }
            _ => execute_view(
                &ready.store,
                ready.exec_delta().map(|d| d.as_ref()),
                plan,
                opts,
                &ready.thresholds,
                factory,
            ),
        }
    }

    /// Folds an executor failure into a [`ParjError`] carrying
    /// partial-progress statistics (work done before the trip).
    fn failure_to_error(
        failure: ExecFailure,
        phases: PhaseTimings,
        exec_started: Instant,
        mut search: SearchStats,
        plans: &[PhysicalPlan],
    ) -> ParjError {
        search.merge(&failure.stats);
        let partial = Box::new(QueryRunStats {
            prepare_micros: phases.total(),
            phases,
            exec_micros: exec_started.elapsed().as_micros() as u64,
            decode_micros: 0,
            search,
            rows: failure.rows,
            plan: plans
                .iter()
                .map(PhysicalPlan::explain)
                .collect::<Vec<_>>()
                .join("\n---\n"),
            cache: CacheStatus::Off,
        });
        match failure.kind {
            ExecFailureKind::Cancelled => ParjError::Cancelled { partial },
            ExecFailureKind::DeadlineExceeded { elapsed } => {
                ParjError::DeadlineExceeded { elapsed, partial }
            }
            ExecFailureKind::BudgetExceeded { rows } => ParjError::BudgetExceeded { rows, partial },
            ExecFailureKind::WorkerPanicked { message } => {
                ParjError::WorkerPanicked { message, partial }
            }
            ExecFailureKind::InvalidOptions { message } => ParjError::InvalidOptions(message),
        }
    }

    /// Creates a cancellation handle for a query run: a token another
    /// thread can trip, plus overrides already carrying it.
    ///
    /// ```no_run
    /// # let mut engine = parj_core::Parj::new();
    /// let (token, over) = engine.query_handle();
    /// std::thread::spawn(move || token.cancel());
    /// let run = engine
    ///     .request("SELECT ?s WHERE { ?s ?p ?o }")
    ///     .overrides(&over)
    ///     .count_only()
    ///     .run();
    /// match run {
    ///     Err(parj_core::ParjError::Cancelled { .. }) => {}
    ///     other => println!("finished first: {other:?}"),
    /// }
    /// ```
    pub fn query_handle(&self) -> (CancelToken, RunOverrides) {
        let token = CancelToken::new();
        let over = RunOverrides::default().with_cancel(token.clone());
        (token, over)
    }

    /// Parses, translates and optimizes `query` against finalized state;
    /// returns the plans (one per union expansion), translation
    /// metadata, and per-phase wall timings.
    ///
    /// `canonical` applies the cache's variable/pattern
    /// canonicalization before optimizing — passed as
    /// [`EngineConfig::cache`] by the introspection entry points so
    /// [`Parj::explain`]/[`Parj::profile`] render exactly the plans the
    /// cached request path executes. With caching off nothing is
    /// renumbered and the output is identical to previous releases.
    fn prepare_on(
        ready: &Ready,
        query: &str,
        canonical: bool,
    ) -> Result<(Prepared, Vec<String>, Option<usize>, PhaseTimings), ParjError> {
        let mut phases = PhaseTimings::default();
        let t = Instant::now();
        let parsed = parse_query(query)?;
        phases.parse_micros = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let translated = translate(&parsed, ready.dict_view(), ready.hierarchy.as_ref())?;
        phases.translate_micros = t.elapsed().as_micros() as u64;
        match translated {
            Translation::Empty { proj_names, limit } => Ok((None, proj_names, limit, phases)),
            Translation::Run(mut tq) => {
                if canonical {
                    canonicalize_query(&mut tq);
                }
                let t = Instant::now();
                let plans = Self::optimize_sets(ready, &tq)?;
                phases.optimize_micros = t.elapsed().as_micros() as u64;
                let names = tq.proj_names.clone();
                let limit = tq.limit;
                Ok((Some((tq, plans)), names, limit, phases))
            }
        }
    }

    /// Optimizes one physical plan per pattern set of `tq`.
    fn optimize_sets(
        ready: &Ready,
        tq: &crate::translate::TranslatedQuery,
    ) -> Result<Vec<PhysicalPlan>, ParjError> {
        // Hierarchy expansions union alternative derivations of
        // the same solutions; dedup needs the *full* binding row,
        // so plans then project every variable.
        let plan_proj: Vec<parj_join::VarId> = if tq.full_rows {
            (0..tq.num_vars as parj_join::VarId).collect()
        } else {
            tq.projection.clone()
        };
        let mut plans = Vec::with_capacity(tq.pattern_sets.len());
        for set in &tq.pattern_sets {
            plans.push(optimize(&ready.stats, set, tq.num_vars, plan_proj.clone())?);
        }
        Ok(plans)
    }

    /// Sorted, deduplicated concrete predicate ids a translated query
    /// touches — the coordinates its cache entries are stamped with for
    /// per-predicate invalidation.
    fn touched_predicates(tq: &crate::translate::TranslatedQuery) -> Vec<Id> {
        let mut preds: Vec<Id> = tq
            .pattern_sets
            .iter()
            .flat_map(|set| set.iter().map(|pat| pat.p))
            .collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Applies one mutation batch (ordered insert/delete operations, in
    /// call order so later operations on the same triple win) against
    /// the delta overlay — the execution path behind [`Parj::mutate`].
    ///
    /// Cost is `O(batch + resident delta)` in the touched predicates
    /// only; the base store is never rebuilt. The exceptions are staged
    /// engines (staged triples finalize first — a build that was owed
    /// anyway) and reasoning engines, where the batch folds into a full
    /// rebuild so the extracted RDFS hierarchy stays consistent with
    /// the data.
    pub(crate) fn apply_mutation(
        &mut self,
        ops: &[crate::mutate::MutationOp],
    ) -> Result<crate::mutate::MutationOutcome, ParjError> {
        use crate::mutate::{MutationOutcome, MutationPhases};
        use std::collections::BTreeMap;

        // Staged triples fold into the base first so the batch lands on
        // a finalized engine.
        self.finalize();
        let mut phases = MutationPhases::default();
        let mut outcome = MutationOutcome::default();

        // -- encode: terms -> ids through the delta dictionary --------
        // Per predicate, per (s, o) pair: the last operation in batch
        // order wins (`true` = insert). BTreeMaps keep predicate and
        // pair iteration sorted, which `apply_pred` requires.
        let t = Instant::now();
        let ready = self.ready.as_mut().expect("finalize sets ready");
        let base = Arc::clone(&ready.store);
        let delta = Arc::make_mut(&mut ready.delta);
        let mut by_pred: BTreeMap<Id, BTreeMap<(Id, Id), bool>> = BTreeMap::new();
        for op in ops {
            match op {
                crate::mutate::MutationOp::Insert(s, p, o) => {
                    let dict = delta.dict_mut();
                    let sid = dict.encode_resource(base.dict(), s);
                    let pid = dict.encode_predicate(base.dict(), p);
                    let oid = dict.encode_resource(base.dict(), o);
                    by_pred.entry(pid).or_default().insert((sid, oid), true);
                }
                crate::mutate::MutationOp::Delete(s, p, o) => {
                    // Non-inserting resolve: a triple with an unknown
                    // term cannot be stored, so the delete is a no-op
                    // (set semantics, like deleting an absent triple).
                    let dict = delta.dict();
                    let (Some(sid), Some(pid), Some(oid)) = (
                        dict.resource_id(base.dict(), s),
                        dict.predicate_id(base.dict(), p),
                        dict.resource_id(base.dict(), o),
                    ) else {
                        continue;
                    };
                    by_pred.entry(pid).or_default().insert((sid, oid), false);
                }
            }
        }
        phases.encode_micros = t.elapsed().as_micros() as u64;

        // -- apply: per-predicate sorted run merges --------------------
        let t = Instant::now();
        let mut touched: Vec<Id> = Vec::with_capacity(by_pred.len());
        for (&pid, pairs) in &by_pred {
            let inserts: Vec<(Id, Id)> =
                pairs.iter().filter(|&(_, &ins)| ins).map(|(&k, _)| k).collect();
            let deletes: Vec<(Id, Id)> =
                pairs.iter().filter(|&(_, &ins)| !ins).map(|(&k, _)| k).collect();
            let applied = delta.apply_pred(&base, pid, &inserts, &deletes);
            outcome.inserted += applied.inserted as u64;
            outcome.deleted += applied.deleted as u64;
            if applied.inserted + applied.deleted > 0 {
                touched.push(pid);
            }
        }
        outcome.predicates_touched = touched.len();
        phases.apply_micros = t.elapsed().as_micros() as u64;

        // -- compact: threshold-crossed predicates ---------------------
        let t = Instant::now();
        let threshold = self.config.delta_compaction_threshold;
        for &pid in &touched {
            if delta.needs_compaction(pid, threshold) {
                delta.compact_pred(&base, pid);
                outcome.compactions += 1;
            }
        }
        phases.compact_micros = t.elapsed().as_micros() as u64;
        outcome.delta_resident_pairs = delta.resident_pairs();
        outcome.delta_bytes = delta.memory_bytes();
        outcome.visible_triples = delta.visible_triples(&base);

        // -- invalidate: per-predicate cache epochs --------------------
        // Reasoning engines fold the batch into a full rebuild instead:
        // the extracted hierarchy must reflect any ontology triples the
        // batch changed, and `finalize` inside `fold_delta` already
        // bumps the cache generation (which invalidates everything, so
        // no per-predicate bumps are needed).
        let t = Instant::now();
        if self.config.reasoning {
            self.fold_delta();
            outcome.folded = true;
            outcome.delta_resident_pairs = 0;
            outcome.delta_bytes = 0;
        } else if !touched.is_empty() {
            outcome.cache_invalidations = self.cache.bump_predicates(&touched);
        }
        phases.invalidate_micros = t.elapsed().as_micros() as u64;
        outcome.phases = phases;

        if self.config.record_metrics {
            self.metrics.record_compaction(outcome.compactions, outcome.phases.compact_micros);
            self.metrics.record_cache_invalidations(outcome.cache_invalidations);
            self.publish_delta_gauges();
        }
        Ok(outcome)
    }

    /// Refreshes the mutation-delta residency gauges (uncompacted pairs
    /// and overlay heap bytes).
    fn publish_delta_gauges(&self) {
        if !self.config.record_metrics {
            return;
        }
        let Some(ready) = self.ready.as_ref() else {
            return;
        };
        self.metrics.set_delta_resident(
            ready.delta.resident_pairs() as u64,
            if ready.delta.is_clean() { 0 } else { ready.delta.memory_bytes() as u64 },
        );
    }

    /// Unified execution path behind [`Parj::request`]: records
    /// lifecycle metrics around the inner run regardless of how it
    /// ends.
    pub(crate) fn run_request(
        &self,
        query: &str,
        spec: &RunSpec,
    ) -> Result<QueryOutcome, ParjError> {
        let metrics = self.config.record_metrics.then_some(&*self.metrics);
        if let Some(m) = metrics {
            m.query_started();
        }
        // Decrements the in-flight gauge on every exit, panics included.
        struct Inflight<'a>(Option<&'a EngineMetrics>);
        impl Drop for Inflight<'_> {
            fn drop(&mut self) {
                if let Some(m) = self.0 {
                    m.query_finished();
                }
            }
        }
        let _inflight = Inflight(metrics);
        let t0 = Instant::now();
        let result = self.run_request_inner(query, spec);
        if let Some(m) = metrics {
            let total_micros = t0.elapsed().as_micros() as u64;
            let (class, stats) = match &result {
                Ok(out) => (QueryOutcomeClass::Ok, Some(&out.stats)),
                Err(e) => (Self::outcome_class(e), e.partial_stats()),
            };
            let empty = QueryRunStats::default();
            let stats = stats.unwrap_or(&empty);
            let phases = [
                (QueryPhase::Parse, stats.phases.parse_micros),
                (QueryPhase::Translate, stats.phases.translate_micros),
                (QueryPhase::CacheLookup, stats.phases.cache_lookup_micros),
                (QueryPhase::Optimize, stats.phases.optimize_micros),
                (QueryPhase::Execute, stats.exec_micros),
                (QueryPhase::Decode, stats.decode_micros),
            ];
            m.record_query(
                class,
                &phases,
                total_micros,
                stats.rows,
                &Self::search_totals(&stats.search),
            );
        }
        result
    }

    /// Maps a run error onto its metrics outcome class.
    fn outcome_class(e: &ParjError) -> QueryOutcomeClass {
        match e {
            ParjError::Cancelled { .. } => QueryOutcomeClass::Cancelled,
            ParjError::DeadlineExceeded { .. } => QueryOutcomeClass::Timeout,
            ParjError::BudgetExceeded { .. } => QueryOutcomeClass::Budget,
            ParjError::WorkerPanicked { .. } => QueryOutcomeClass::Panicked,
            _ => QueryOutcomeClass::Error,
        }
    }

    /// Converts merged worker counters to the registry's totals shape.
    fn search_totals(s: &SearchStats) -> SearchTotals {
        SearchTotals {
            sequential: s.sequential_searches,
            binary: s.binary_searches,
            index: s.index_lookups,
            sequential_steps: s.sequential_steps,
            binary_steps: s.binary_steps,
            index_words: s.index_words,
            group_probes: s.group_probes,
        }
    }

    fn run_request_inner(
        &self,
        query: &str,
        spec: &RunSpec,
    ) -> Result<QueryOutcome, ParjError> {
        let ready = self.ready_or_err()?;
        let over = &spec.over;
        // One recorder per run: fed by every plan's executor exit, both
        // into the metrics registry and (under `explain`) a profile
        // capture. Skipped entirely when neither consumer exists.
        let recorder = if self.config.record_metrics || spec.explain {
            Some(Arc::new(RunRecorder {
                metrics: self
                    .config
                    .record_metrics
                    .then(|| Arc::clone(&self.metrics)),
                profiles: spec.explain.then(|| {
                    parj_sync::OrderedMutex::new(
                        parj_sync::LockLevel::Profile,
                        "engine.explain_profiles",
                        Vec::new(),
                    )
                }),
            }))
        } else {
            None
        };
        let opts = Self::exec_options(
            &self.config,
            over,
            recorder
                .clone()
                .map(|r| r as Arc<dyn parj_join::Recorder>),
        )?;
        // Cache participation for this run. Deadline- and
        // cancellation-guarded runs DO participate: a guard that trips
        // aborts the run with an error before any insert, so partial
        // answers can never be cached, and serving a hit to a guarded
        // run is both correct and the fastest way to beat its deadline
        // (the serving layer attaches a cancel token to every request,
        // so this is the common case under load). Row-*budgeted* runs
        // bypass instead: a budget changes the answer itself — the same
        // query errs with `BudgetExceeded` uncached but would be served
        // its complete result from a prior unbudgeted run — so budgeted
        // runs stay out of the cache entirely to keep cache-on ≡
        // cache-off. EXPLAIN runs (which must execute for real) and
        // explicit bypasses also skip it. Reads of the store generation
        // here cannot race an update: updates require `&mut self` (or
        // the [`crate::SharedParj`] write lock), and this run holds
        // `&self` for its whole duration.
        let metrics = self.config.record_metrics.then_some(&*self.metrics);
        let budgeted = over.max_rows.or(self.config.max_result_rows).is_some();
        let use_cache = self.config.cache && !(spec.no_cache || spec.explain || budgeted);
        let mut cache_status = if self.config.cache {
            CacheStatus::Bypassed
        } else {
            CacheStatus::Off
        };
        let generation = self.cache.store_generation();

        let mut phases = PhaseTimings::default();
        let t = Instant::now();
        let parsed = parse_query(query)?;
        phases.parse_micros = t.elapsed().as_micros() as u64;
        let t = Instant::now();
        let translated = translate(&parsed, ready.dict_view(), ready.hierarchy.as_ref())?;
        phases.translate_micros = t.elapsed().as_micros() as u64;
        let mut tq = match translated {
            Translation::Run(tq) => tq,
            Translation::Empty { proj_names, limit: _ } => {
                // Trivially empty (a constant is absent from the data):
                // nothing to cache and nothing to run.
                let stats = QueryRunStats {
                    prepare_micros: phases.total(),
                    phases,
                    plan: "<empty: constant absent from data>".into(),
                    cache: cache_status,
                    ..Default::default()
                };
                return Ok(QueryOutcome {
                    vars: proj_names,
                    count: 0,
                    rows: matches!(spec.mode, RunMode::Rows).then(Vec::new),
                    ids: matches!(spec.mode, RunMode::Ids).then(Vec::new),
                    stats,
                    profile: spec
                        .explain
                        .then(|| "<empty: constant absent from data>".to_string()),
                });
            }
        };

        // Would this run take the silent count path? Its answer is a
        // bare count, so it keys a different result-entry family than
        // the materializing path.
        let silent = matches!(spec.mode, RunMode::Count) && !tq.distinct && !tq.dedup_full;
        // `Some` exactly when this run participates in the cache.
        let mut fingerprint: Option<Vec<u8>> = None;
        let mut cached_plans: Option<Arc<Vec<PhysicalPlan>>> = None;
        // Per-predicate epoch stamp: the sum of the cache's epoch
        // counters over the predicates this query touches. A mutation
        // batch bumps the epochs of exactly the predicates it changed,
        // so entries of disjoint queries keep serving while any entry
        // referencing a mutated predicate goes stale (the sum moved).
        let mut epoch_sum = 0u64;
        if use_cache {
            let t = Instant::now();
            // Canonicalization makes the fingerprint stable under
            // variable renaming and pattern reordering; it only runs
            // with caching on, keeping the cache-off path untouched.
            canonicalize_query(&mut tq);
            epoch_sum = self.cache.epoch_sum(&Self::touched_predicates(&tq));
            let fp = query_fingerprint(&tq);
            let result_key = Self::result_key(&fp, silent, tq.limit, tq.offset);
            let hit = self.cache.results().lookup(&result_key, generation, epoch_sum);
            if let Some(m) = metrics {
                m.record_cache_lookup(CacheKind::Result, hit.is_some());
            }
            if let Some(entry) = hit {
                phases.cache_lookup_micros = t.elapsed().as_micros() as u64;
                if let Some(m) = metrics {
                    m.record_cache_time_saved(QueryPhase::Execute, entry.exec_micros);
                }
                return Self::serve_cached(ready, spec.mode, &tq, entry, phases);
            }
            let plan_hit = self.cache.plans().lookup(&fp, generation, epoch_sum);
            if let Some(m) = metrics {
                m.record_cache_lookup(CacheKind::Plan, plan_hit.is_some());
            }
            cache_status = match plan_hit {
                Some(entry) => {
                    if let Some(m) = metrics {
                        m.record_cache_time_saved(QueryPhase::Optimize, entry.optimize_micros);
                    }
                    cached_plans = Some(entry.plans);
                    CacheStatus::PlanHit
                }
                None => CacheStatus::Miss,
            };
            fingerprint = Some(fp);
            phases.cache_lookup_micros = t.elapsed().as_micros() as u64;
        }

        let plans: Arc<Vec<PhysicalPlan>> = match cached_plans {
            Some(p) => p,
            None => {
                let t = Instant::now();
                let built = Arc::new(Self::optimize_sets(ready, &tq)?);
                phases.optimize_micros = t.elapsed().as_micros() as u64;
                if let Some(fp) = &fingerprint {
                    let entry = PlanEntry {
                        plans: Arc::clone(&built),
                        optimize_micros: phases.optimize_micros,
                    };
                    let cost = entry.cost();
                    let evicted =
                        self.cache.plans().insert(fp.clone(), entry, cost, generation, epoch_sum);
                    if let Some(m) = metrics {
                        m.record_cache_evictions(CacheKind::Plan, evicted);
                        m.set_cache_resident(CacheKind::Plan, self.cache.plans().resident_bytes());
                    }
                }
                built
            }
        };
        let names = tq.proj_names.clone();
        let limit = tq.limit;
        let prepare_micros = phases.total();
        let explicit_threads = over.threads.is_some();
        let mut outcome = if silent {
            // Silent mode (the paper's primary measurement): count
            // without materialization.
            let offset = tq.offset.unwrap_or(0) as u64;
            let t1 = Instant::now();
            let mut count = 0u64;
            let mut search = SearchStats::default();
            for plan in plans.iter() {
                let plan_opts =
                    Self::opts_for_plan(&self.config, ready, &opts, explicit_threads, plan);
                let (sinks, s) = match Self::exec_plan(
                    self.pool.as_ref(),
                    ready,
                    plan,
                    &plan_opts,
                    CountSink::default,
                ) {
                    Ok(r) => r,
                    Err(failure) => {
                        return Err(Self::failure_to_error(
                            *failure,
                            phases,
                            t1,
                            std::mem::take(&mut search),
                            &plans,
                        ));
                    }
                };
                count += sinks.iter().map(|s| s.count).sum::<u64>();
                search.merge(&s);
            }
            let exec_micros = t1.elapsed().as_micros() as u64;
            // OFFSET/LIMIT arithmetic (ordering does not change a count;
            // this mirrors the materializing path's `drop_front` +
            // `truncate`, so both modes report the same count).
            count = count.saturating_sub(offset);
            if let Some(l) = limit {
                count = count.min(l as u64);
            }
            if let Some(fp) = &fingerprint {
                let entry = ResultEntry {
                    value: CachedResult::Count(count),
                    exec_micros,
                };
                let cost = entry.cost();
                let key = Self::result_key(fp, true, tq.limit, tq.offset);
                let evicted = self.cache.results().insert(key, entry, cost, generation, epoch_sum);
                if let Some(m) = metrics {
                    m.record_cache_evictions(CacheKind::Result, evicted);
                    m.set_cache_resident(CacheKind::Result, self.cache.results().resident_bytes());
                }
            }
            QueryOutcome {
                vars: names,
                count,
                rows: None,
                ids: None,
                stats: QueryRunStats {
                    prepare_micros,
                    phases,
                    exec_micros,
                    decode_micros: 0,
                    search,
                    rows: count,
                    plan: plans
                        .iter()
                        .map(PhysicalPlan::explain)
                        .collect::<Vec<_>>()
                        .join("\n---\n"),
                    cache: cache_status,
                },
                profile: None,
            }
        } else {
            let (batch, mut stats) = Self::run_ids_on(
                &self.config,
                self.pool.as_ref(),
                ready,
                opts,
                explicit_threads,
                &tq,
                &plans,
                phases,
            )?;
            stats.cache = cache_status;
            let count = batch.len() as u64;
            // Both `ids` and `rows` requests decode from the same
            // id-row entry, so the batch is shared with the cache.
            let batch = Arc::new(batch);
            if let Some(fp) = &fingerprint {
                let entry = ResultEntry {
                    value: CachedResult::Rows(Arc::clone(&batch)),
                    exec_micros: stats.exec_micros,
                };
                let cost = entry.cost();
                let key = Self::result_key(fp, false, tq.limit, tq.offset);
                let evicted = self.cache.results().insert(key, entry, cost, generation, epoch_sum);
                if let Some(m) = metrics {
                    m.record_cache_evictions(CacheKind::Result, evicted);
                    m.set_cache_resident(CacheKind::Result, self.cache.results().resident_bytes());
                }
            }
            let (rows, ids) = match spec.mode {
                RunMode::Count => (None, None),
                RunMode::Ids => (None, Some(batch.rows().map(<[Id]>::to_vec).collect())),
                RunMode::Rows => {
                    // Full result handling: decode ids to terms.
                    let t2 = Instant::now();
                    let rows = Self::decode_batch(ready, &batch)?;
                    stats.decode_micros += t2.elapsed().as_micros() as u64;
                    (Some(rows), None)
                }
            };
            QueryOutcome {
                vars: names,
                count,
                rows,
                ids,
                stats,
                profile: None,
            }
        };
        if spec.explain {
            let profiles = recorder
                .as_ref()
                .and_then(|r| r.profiles.as_ref())
                .map_or_else(Vec::new, |p| std::mem::take(&mut p.lock()));
            outcome.profile = Some(Self::render_annotated(&plans, &profiles));
        }
        Ok(outcome)
    }

    /// Cache key for a finished result: the query fingerprint plus the
    /// entry family (silent count vs materialized id rows) and the
    /// `LIMIT`/`OFFSET` window, which the fingerprint deliberately
    /// excludes (so the *plan* cache can share entries across windows).
    fn result_key(
        fp: &[u8],
        silent: bool,
        limit: Option<usize>,
        offset: Option<usize>,
    ) -> Vec<u8> {
        let mut key = Vec::with_capacity(fp.len() + 19);
        key.extend_from_slice(fp);
        key.push(u8::from(silent));
        for window in [limit, offset] {
            match window {
                Some(n) => {
                    key.push(1);
                    key.extend_from_slice(&(n as u64).to_le_bytes());
                }
                None => key.push(0),
            }
        }
        key
    }

    /// Builds the outcome of a result-cache hit: nothing executes, only
    /// the per-request decode (terms for `rows`, copies for `ids`) runs.
    fn serve_cached(
        ready: &Ready,
        mode: RunMode,
        tq: &crate::translate::TranslatedQuery,
        entry: ResultEntry,
        phases: PhaseTimings,
    ) -> Result<QueryOutcome, ParjError> {
        let t = Instant::now();
        let (count, rows, ids) = match &entry.value {
            CachedResult::Count(n) => (*n, None, None),
            CachedResult::Rows(batch) => {
                let count = batch.len() as u64;
                match mode {
                    RunMode::Count => (count, None, None),
                    RunMode::Ids => (count, None, Some(batch.rows().map(<[Id]>::to_vec).collect())),
                    RunMode::Rows => (count, Some(Self::decode_batch(ready, batch)?), None),
                }
            }
        };
        let decode_micros = t.elapsed().as_micros() as u64;
        Ok(QueryOutcome {
            vars: tq.proj_names.clone(),
            count,
            rows,
            ids,
            stats: QueryRunStats {
                prepare_micros: phases.total(),
                phases,
                exec_micros: 0,
                decode_micros,
                search: SearchStats::default(),
                rows: count,
                plan: "<served from result cache>".into(),
                cache: CacheStatus::ResultHit,
            },
            profile: None,
        })
    }

    /// Decodes a batch of id rows into term rows through the dictionary.
    ///
    /// Engine-produced ids always decode; if one does not, the store and
    /// dictionary disagree and the failure surfaces as
    /// [`ParjError::Internal`] rather than a panic, so facade callers
    /// (in particular a serving process) degrade instead of dying.
    fn decode_batch(ready: &Ready, batch: &RowBatch) -> Result<Vec<Vec<Term>>, ParjError> {
        let dict = ready.dict_view();
        let mut rows = Vec::with_capacity(batch.len());
        for id_row in batch.rows() {
            let mut row = Vec::with_capacity(id_row.len());
            for &id in id_row {
                row.push(dict.decode_resource(id).map_err(|e| {
                    ParjError::Internal(format!("result id {id} failed to decode: {e}"))
                })?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Silent-mode execution (the paper's primary measurement): count
    /// result rows without dictionary lookups or row materialization.
    ///
    /// `DISTINCT` queries still require materializing ids to
    /// deduplicate; `LIMIT` caps the reported count.
    #[deprecated(note = "use `engine.request(query).count_only().run()`")]
    pub fn query_count(&mut self, query: &str) -> Result<(u64, QueryRunStats), ParjError> {
        self.request(query).count_only().run().map(QueryOutcome::into_count)
    }

    /// [`Parj::query_count`] with per-run overrides.
    #[deprecated(note = "use `engine.request(query).overrides(over).count_only().run()`")]
    pub fn query_count_with(
        &mut self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<(u64, QueryRunStats), ParjError> {
        self.request(query).overrides(over).count_only().run().map(QueryOutcome::into_count)
    }

    /// `&self` variant of [`Parj::query_count_with`]: requires a
    /// finalized engine (see [`crate::SharedParj`] for concurrent use).
    #[deprecated(note = "use `engine.request_ref(query).overrides(over).count_only().run()`")]
    pub fn query_count_ref(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<(u64, QueryRunStats), ParjError> {
        self.request_ref(query).overrides(over).count_only().run().map(QueryOutcome::into_count)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_ids_on(
        config: &EngineConfig,
        pool: Option<&Arc<WorkerPool>>,
        ready: &Ready,
        opts: ExecOptions,
        explicit_threads: bool,
        tq: &crate::translate::TranslatedQuery,
        plans: &[PhysicalPlan],
        phases: PhaseTimings,
    ) -> Result<(RowBatch, QueryRunStats), ParjError> {
        // Full-width plans (hierarchy dedup / ORDER BY a non-projected
        // variable) carry every binding; see prepare.
        let arity = if tq.full_rows {
            tq.num_vars
        } else {
            tq.projection.len()
        };
        let t1 = Instant::now();
        // Rows grouped per UNION branch: hierarchy dedup must not merge
        // duplicate solutions coming from *different* branches (those
        // are legitimate SPARQL multiset results). Worker sink buffers
        // are already flat and row-aligned; they are concatenated into
        // per-branch batches wholesale, never exploded per row.
        let n_branches = tq.set_branch.iter().copied().max().map_or(1, |m| m + 1);
        let mut branch_rows: Vec<RowBatch> =
            (0..n_branches).map(|_| RowBatch::new(arity)).collect();
        let mut search = SearchStats::default();
        for (idx, plan) in plans.iter().enumerate() {
            let branch = tq.set_branch.get(idx).copied().unwrap_or(0);
            let plan_opts = Self::opts_for_plan(config, ready, &opts, explicit_threads, plan);
            let (sinks, s) = match Self::exec_plan(
                pool,
                ready,
                plan,
                &plan_opts,
                CollectSink::default,
            ) {
                Ok(r) => r,
                Err(failure) => {
                    return Err(Self::failure_to_error(
                        *failure,
                        phases,
                        t1,
                        std::mem::take(&mut search),
                        plans,
                    ));
                }
            };
            search.merge(&s);
            for sink in &sinks {
                if arity == 0 {
                    // Zero-arity plans (`ASK`-style bodies) produce no
                    // id payload; carry the match count explicitly so
                    // offset/limit/count below see the real row total.
                    branch_rows[branch].extend_rows(sink.rows as usize);
                } else {
                    branch_rows[branch].extend_flat(&sink.data);
                }
            }
        }
        let exec_micros = t1.elapsed().as_micros() as u64;
        let t2 = Instant::now();
        if tq.dedup_full {
            // Entailment semantics: one row per distinct solution
            // mapping *within each branch* (projection applied below).
            for rows in &mut branch_rows {
                rows.sort_unstable();
                rows.dedup();
            }
        }
        let mut rows = {
            let mut it = branch_rows.into_iter();
            let mut merged = it.next().unwrap_or_else(|| RowBatch::new(arity));
            for b in it {
                merged.append(&b);
            }
            merged
        };
        if !tq.order_by.is_empty() {
            // Resolve each ordering key to its column up front; an
            // unresolvable key means translate's projected-order-keys
            // invariant broke, which must surface as an error (a serving
            // process answers 500), never a panic inside the comparator.
            let mut key_cols = Vec::with_capacity(tq.order_by.len());
            for &(v, desc) in &tq.order_by {
                let col = if tq.full_rows {
                    v as usize
                } else {
                    tq.projection.iter().position(|&p| p == v).ok_or_else(|| {
                        ParjError::Internal(format!(
                            "ORDER BY key variable {v} is not in the projection"
                        ))
                    })?
                };
                key_cols.push((col, desc));
            }
            let dict = ready.dict_view();
            // Pre-validate every key id against the dictionary so the
            // decode inside the comparator below is infallible.
            for row in rows.rows() {
                for &(c, _) in &key_cols {
                    let id = row[c];
                    dict.decode_resource(id).map_err(|e| {
                        ParjError::Internal(format!("ORDER BY key id {id} failed to decode: {e}"))
                    })?;
                }
            }
            // Deterministic total order on terms via their canonical
            // dictionary keys (SPARQL operator ordering is out of scope;
            // see ParsedQuery::order_by docs).
            let key_of = |id: Id| -> Term {
                dict.decode_resource(id).expect("every key id pre-validated above")
            };
            rows.sort_by(|a, b| {
                for &(c, desc) in &key_cols {
                    let ord = key_of(a[c]).cmp(&key_of(b[c]));
                    let ord = if desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                a.cmp(b) // stable tiebreak on the raw ids
            });
        }
        if tq.full_rows {
            let mut proj = RowBatch::new(tq.projection.len());
            let mut scratch = Vec::with_capacity(tq.projection.len());
            for row in rows.rows() {
                scratch.clear();
                scratch.extend(tq.projection.iter().map(|&v| row[v as usize]));
                proj.push(&scratch);
            }
            rows = proj;
        }
        if tq.distinct {
            if tq.order_by.is_empty() {
                rows.sort_unstable();
                rows.dedup();
            } else {
                // Preserve the requested ordering: keep first
                // occurrences.
                let mut seen = std::collections::HashSet::new();
                rows.retain(|r| seen.insert(r.to_vec()));
            }
        }
        if let Some(off) = tq.offset {
            rows.drop_front(off);
        }
        if let Some(l) = tq.limit {
            rows.truncate(l);
        }
        let decode_micros = t2.elapsed().as_micros() as u64;
        let n = rows.len() as u64;
        Ok((
            rows,
            QueryRunStats {
                prepare_micros: phases.total(),
                phases,
                exec_micros,
                decode_micros,
                search,
                rows: n,
                plan: plans
                    .iter()
                    .map(PhysicalPlan::explain)
                    .collect::<Vec<_>>()
                    .join("\n---\n"),
                cache: CacheStatus::Off,
            },
        ))
    }

    /// Returns, per plan of the query, the **work units** (result rows
    /// emitted + array words touched) of every driver morsel the
    /// executor would pull off the shared cursor.
    ///
    /// Because PARJ workers share nothing and draw morsels dynamically,
    /// the parallel makespan with `K` threads on ideal hardware is
    /// bounded below by `max(total/K, max_morsel)` per plan; the
    /// benchmark harness reports the corresponding achievable speedup so
    /// the scalability of the morsel distribution is measurable even on
    /// hosts with fewer cores than worker threads.
    pub fn morsel_loads(
        &mut self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<Vec<Vec<u64>>, ParjError> {
        self.finalize();
        let ready = self.ready_or_err()?;
        let (prepared, _, _, _) = Self::prepare_on(ready, query, self.config.cache)?;
        let Some((_tq, plans)) = prepared else {
            return Ok(Vec::new());
        };
        let opts = Self::exec_options(&self.config, over, None)?;
        plans
            .iter()
            .map(|plan| {
                parj_join::morsel_loads_view(
                    &ready.store,
                    ready.exec_delta().map(|d| d.as_ref()),
                    plan,
                    &opts,
                    &ready.thresholds,
                )
                .map_err(|e| ParjError::InvalidOptions(e.to_string()))
            })
            .collect()
    }

    /// Legacy name for [`Parj::morsel_loads`], kept for callers of the
    /// static-sharding era. The returned chunks are now morsels.
    #[deprecated(
        since = "0.1.0",
        note = "static sharding was replaced by morsel-driven dispatch; use `morsel_loads`"
    )]
    pub fn shard_loads(
        &mut self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<Vec<Vec<u64>>, ParjError> {
        self.morsel_loads(query, over)
    }

    /// Materialized execution returning dictionary ids (no term decode).
    #[deprecated(note = "use `engine.request(query).ids_only().run()`")]
    pub fn query_ids(&mut self, query: &str) -> Result<(Vec<Vec<Id>>, QueryRunStats), ParjError> {
        self.request(query).ids_only().run().map(QueryOutcome::into_ids)
    }

    /// [`Parj::query_ids`] with overrides.
    #[deprecated(note = "use `engine.request(query).overrides(over).ids_only().run()`")]
    pub fn query_ids_with(
        &mut self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<(Vec<Vec<Id>>, QueryRunStats), ParjError> {
        self.request(query).overrides(over).ids_only().run().map(QueryOutcome::into_ids)
    }

    /// `&self` variant of [`Parj::query_ids_with`] (finalized engines).
    #[deprecated(note = "use `engine.request_ref(query).overrides(over).ids_only().run()`")]
    pub fn query_ids_ref(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<(Vec<Vec<Id>>, QueryRunStats), ParjError> {
        self.request_ref(query).overrides(over).ids_only().run().map(QueryOutcome::into_ids)
    }

    /// Full result handling (the paper's non-silent mode): rows decoded
    /// through the dictionary into terms.
    #[deprecated(note = "use `engine.request(query).run()`")]
    pub fn query(&mut self, query: &str) -> Result<QueryResult, ParjError> {
        self.request(query).run().map(QueryOutcome::into_result)
    }

    /// [`Parj::query`] with overrides.
    #[deprecated(note = "use `engine.request(query).overrides(over).run()`")]
    pub fn query_with(
        &mut self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<QueryResult, ParjError> {
        self.request(query).overrides(over).run().map(QueryOutcome::into_result)
    }

    /// `&self` variant of [`Parj::query_with`] (finalized engines).
    #[deprecated(note = "use `engine.request_ref(query).overrides(over).run()`")]
    pub fn query_ref(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<QueryResult, ParjError> {
        self.request_ref(query).overrides(over).run().map(QueryOutcome::into_result)
    }

    /// Renders the optimized plan(s) for a query without executing it.
    pub fn explain(&mut self, query: &str) -> Result<String, ParjError> {
        self.finalize();
        let ready = self.ready_or_err()?;
        let (prepared, _, _, _) = Self::prepare_on(ready, query, self.config.cache)?;
        Ok(match prepared {
            None => "<empty: constant absent from data>".to_string(),
            Some((_, plans)) => plans
                .iter()
                .map(PhysicalPlan::explain)
                .collect::<Vec<_>>()
                .join("\n---\n"),
        })
    }

    /// Executes the query single-threaded and renders an annotated plan:
    /// per pipeline stage, the tuples that entered it and the search
    /// decisions it made — the `EXPLAIN ANALYZE` counterpart of
    /// [`Parj::explain`]. For the same report from a real parallel run,
    /// use `engine.request(query).explain(true).run()`.
    pub fn profile(&mut self, query: &str) -> Result<String, ParjError> {
        self.finalize();
        let ready = self.ready_or_err()?;
        let (prepared, _, _, _) = Self::prepare_on(ready, query, self.config.cache)?;
        let Some((_tq, plans)) = prepared else {
            return Ok("<empty: constant absent from data>".to_string());
        };
        let opts = ExecOptions {
            threads: 1,
            ..Self::exec_options(&self.config, &RunOverrides::default(), None)?
        };
        let profiles: Vec<CapturedProfile> = plans
            .iter()
            .map(|plan| {
                let prof = parj_join::execute_profiled_view(
                    &ready.store,
                    ready.exec_delta().map(|d| d.as_ref()),
                    plan,
                    &opts,
                    &ready.thresholds,
                );
                CapturedProfile {
                    rows: prof.rows,
                    step_search: prof.step_search,
                    driver: prof.driver,
                }
            })
            .collect();
        Ok(Self::render_annotated(&plans, &profiles))
    }

    /// Renders the annotated-plan report shared by [`Parj::profile`] and
    /// the request API's `explain(true)` mode.
    fn render_annotated(plans: &[PhysicalPlan], profiles: &[CapturedProfile]) -> String {
        use std::fmt::Write;
        let fallback = CapturedProfile::default();
        let mut out = String::new();
        for (pi, plan) in plans.iter().enumerate() {
            if plans.len() > 1 {
                writeln!(out, "-- union branch plan {pi} --").expect("write");
            }
            let prof = profiles.get(pi).unwrap_or(&fallback);
            for (si, line) in plan.explain().lines().enumerate() {
                match si.checked_sub(1).and_then(|probe| prof.step_search.get(probe)) {
                    None if si == 0 => {
                        // Driver line.
                        let fed = prof.rows.first().copied().unwrap_or(0);
                        if prof.driver.group_probes > 0 {
                            writeln!(
                                out,
                                "{line}   → {fed} rows ({} group checks)",
                                prof.driver.group_probes
                            )
                            .expect("write");
                        } else {
                            writeln!(out, "{line}   → {fed} rows").expect("write");
                        }
                    }
                    Some(st) => {
                        let probe = si - 1;
                        let rows_in = prof.rows.get(probe).copied().unwrap_or(0);
                        let rows_out = prof.rows.get(probe + 1).copied().unwrap_or(0);
                        writeln!(
                            out,
                            "{line}   ← {rows_in} probes ({} seq / {} bin / {} idx) → {rows_out} rows",
                            st.sequential_searches, st.binary_searches, st.index_lookups
                        )
                        .expect("write");
                    }
                    None => {
                        // Projection line.
                        writeln!(
                            out,
                            "{line}   = {} result rows",
                            prof.rows.last().copied().unwrap_or(0)
                        )
                        .expect("write");
                    }
                }
            }
        }
        out
    }

    /// Saves a snapshot of the finalized store. A pending mutation
    /// delta is folded into a full rebuild first, so the snapshot
    /// captures exactly the triples queries were seeing.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), ParjError> {
        self.fold_delta();
        self.finalize();
        let ready = self.ready.as_ref().expect("finalized");
        ready.store.save_snapshot(path)?;
        Ok(())
    }

    /// Loads an engine from a snapshot, rebuilding statistics and
    /// thresholds under `config`.
    pub fn load_snapshot(
        path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<Parj, ParjError> {
        let store = TripleStore::load_snapshot(path)?;
        Ok(Self::from_store(store, config))
    }

    /// Manually constructs an engine around an existing store (used by
    /// the benchmark harness, which builds stores via the generators).
    pub fn from_store(mut store: TripleStore, config: EngineConfig) -> Parj {
        // Generator-built and snapshot-loaded stores arrive raw; apply
        // this engine's compression policy (also recording it in the
        // store options, so delta compaction keeps honoring it).
        if config.compress_replicas {
            store.compress_values(config.compress_min_values);
        }
        let stats = Stats::build_with_buckets(&store, config.histogram_buckets);
        let calibration = if config.calibrate {
            calibrate(&store, &config.calibration)
        } else {
            CalibrationResult::paper_defaults()
        };
        let thresholds = ThresholdTable::from_calibration(&store, &calibration);
        let hierarchy = config.reasoning.then(|| Hierarchy::extract(&store));
        let engine = Parj {
            cache: Arc::new(QueryCache::new(config.cache_bytes)),
            pool: Parj::make_pool(&config),
            config,
            staged: None,
            ready: Some(Ready::new(store, stats, thresholds, calibration, hierarchy)),
            metrics: Arc::new(EngineMetrics::new()),
        };
        engine.publish_store_gauges();
        engine
    }

    /// Spawns the engine-owned persistent pool when configured: pool
    /// workers serve as the extra participants beyond the submitting
    /// thread, so single-threaded engines need none.
    fn make_pool(config: &EngineConfig) -> Option<Arc<WorkerPool>> {
        (config.use_pool && config.threads > 1)
            .then(|| Arc::new(WorkerPool::new(config.threads - 1)))
    }

    /// Live statistics of the persistent worker pool, when one exists.
    pub fn pool_stats(&self) -> Option<parj_join::PoolStats> {
        self.pool.as_ref().map(|p| p.stats())
    }
}

/// Per-plan step counters captured for the annotated-plan report
/// (mirrors [`parj_join::PlanProfile`], but buildable from an
/// [`parj_join::ExecRecord`] of a parallel run).
#[derive(Default)]
struct CapturedProfile {
    rows: Vec<u64>,
    step_search: Vec<SearchStats>,
    driver: SearchStats,
}

/// Bridges the executor's once-per-run [`parj_join::Recorder`] callback
/// into the engine: plan-level metrics (probe volume, morsel count,
/// participant imbalance) and, under `explain`, a profile capture per
/// plan.
struct RunRecorder {
    metrics: Option<Arc<EngineMetrics>>,
    profiles: Option<parj_sync::OrderedMutex<Vec<CapturedProfile>>>,
}

impl parj_join::Recorder for RunRecorder {
    fn record_exec(&self, r: &parj_join::ExecRecord<'_>) {
        if let Some(m) = &self.metrics {
            // Tuples that entered probe steps (everything but the
            // final result count).
            let probe_rows: u64 = r.step_rows[..r.step_rows.len().saturating_sub(1)]
                .iter()
                .sum();
            // Load imbalance ×1000: max participant load over the
            // ideal per-participant share; 1000 = perfectly balanced.
            // Under morsel pulling each entry is what one participant
            // accumulated across every morsel it drew, so the ratio
            // measures the balance the dynamic cursor achieved.
            let max = r.worker_units.iter().copied().max().unwrap_or(0);
            let total: u64 = r.worker_units.iter().sum();
            let imbalance = (max * r.worker_units.len() as u64 * 1000)
                .checked_div(total)
                .unwrap_or(1000);
            m.record_plan_exec(probe_rows, imbalance, r.morsels);
        }
        if let Some(p) = &self.profiles {
            p.lock().push(CapturedProfile {
                rows: r.step_rows.to_vec(),
                step_search: r.step_search.to_vec(),
                driver: r.driver_search,
            });
        }
    }
}

impl Default for Parj {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Parj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parj")
            .field("config", &self.config)
            .field("finalized", &self.ready.is_some())
            .field(
                "triples",
                &self.ready.as_ref().map(Ready::visible_triples),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: &str = r#"
<http://e/ProfA> <http://e/teaches> <http://e/Math> .
<http://e/ProfA> <http://e/teaches> <http://e/Physics> .
<http://e/ProfB> <http://e/teaches> <http://e/Chem> .
<http://e/ProfC> <http://e/teaches> <http://e/Lit> .
<http://e/ProfA> <http://e/worksFor> <http://e/U1> .
<http://e/ProfB> <http://e/worksFor> <http://e/U2> .
<http://e/ProfC> <http://e/worksFor> <http://e/U2> .
<http://e/ProfA> <http://e/name> "Alice" .
"#;

    fn engine() -> Parj {
        let mut e = Parj::builder().threads(2).build();
        assert_eq!(e.load_ntriples_str(DATA).unwrap(), 8);
        e.finalize();
        e
    }

    fn run_query(e: &mut Parj, q: &str) -> Result<QueryResult, ParjError> {
        e.request(q).run().map(QueryOutcome::into_result)
    }

    fn run_count(e: &mut Parj, q: &str) -> Result<(u64, QueryRunStats), ParjError> {
        e.request(q).count_only().run().map(QueryOutcome::into_count)
    }

    #[test]
    fn end_to_end_example_31() {
        let mut e = engine();
        let res = run_query(
            &mut e,
            "SELECT ?x ?z ?y WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y }",
        )
        .unwrap();
        assert_eq!(res.vars, vec!["x", "z", "y"]);
        assert_eq!(res.rows.len(), 4);
        assert!(res
            .rows
            .iter()
            .any(|r| r[0] == Term::iri("http://e/ProfA") && r[1] == Term::iri("http://e/Physics")));
    }

    #[test]
    fn end_to_end_example_32_filter() {
        let mut e = engine();
        let (count, stats) = run_count(
            &mut e,
            "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> <http://e/U2> }",
        )
        .unwrap();
        assert_eq!(count, 2);
        assert!(stats.plan.contains("scan"));
    }

    #[test]
    fn silent_vs_full_agree() {
        let mut e = engine();
        let q = "SELECT ?x ?y WHERE { ?x <http://e/worksFor> ?y }";
        let (count, _) = run_count(&mut e, q).unwrap();
        let full = run_query(&mut e, q).unwrap();
        assert_eq!(count, full.rows.len() as u64);
    }

    #[test]
    fn missing_constant_empty() {
        let mut e = engine();
        let (count, stats) =
            run_count(&mut e, "SELECT ?x WHERE { ?x <http://e/teaches> <http://e/Nope> }").unwrap();
        assert_eq!(count, 0);
        assert!(stats.plan.contains("empty"));
        let res = run_query(&mut e, "SELECT ?x WHERE { ?x <http://e/nopred> ?y }").unwrap();
        assert!(res.is_empty());
        assert_eq!(res.vars, vec!["x"]);
    }

    #[test]
    fn distinct_and_limit() {
        let mut e = engine();
        // Professors teaching anything: 3 distinct, 4 rows raw.
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z }";
        let (raw, _) = run_count(&mut e, q).unwrap();
        assert_eq!(raw, 4);
        let q = "SELECT DISTINCT ?x WHERE { ?x <http://e/teaches> ?z }";
        let (distinct, _) = run_count(&mut e, q).unwrap();
        assert_eq!(distinct, 3);
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z } LIMIT 2";
        let (limited, _) = run_count(&mut e, q).unwrap();
        assert_eq!(limited, 2);
        let (rows, _) = e.request(q).ids_only().run().map(QueryOutcome::into_ids).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn ask_query() {
        let mut e = engine();
        let (yes, _) =
            run_count(&mut e, "ASK { <http://e/ProfA> <http://e/worksFor> <http://e/U1> }").unwrap();
        assert_eq!(yes, 1);
        let (no, _) =
            run_count(&mut e, "ASK { <http://e/ProfA> <http://e/worksFor> <http://e/U2> }").unwrap();
        assert_eq!(no, 0);
    }

    #[test]
    fn predicate_variable_union() {
        let mut e = engine();
        // Everything about ProfA over any predicate: 2 teaches +
        // 1 worksFor + 1 name = 4 triples.
        let (count, _) = run_count(&mut e, "SELECT ?o WHERE { <http://e/ProfA> ?p ?o }").unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn literals_in_queries() {
        let mut e = engine();
        let (count, _) =
            run_count(&mut e, r#"SELECT ?x WHERE { ?x <http://e/name> "Alice" }"#).unwrap();
        assert_eq!(count, 1);
        let (count, _) =
            run_count(&mut e, r#"SELECT ?x WHERE { ?x <http://e/name> "Bob" }"#).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn overrides_thread_and_strategy() {
        let mut e = engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y }";
        let base = run_count(&mut e, q).unwrap().0;
        for strategy in ProbeStrategy::TABLE5 {
            for threads in [1, 3, 8] {
                let got = e
                    .request(q)
                    .threads(threads)
                    .strategy(strategy)
                    .count_only()
                    .run()
                    .unwrap()
                    .count;
                assert_eq!(got, base);
            }
        }
    }

    #[test]
    fn request_builder_zero_threads_rejected() {
        let mut e = engine();
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z }";
        match e.request(q).threads(0).count_only().run() {
            Err(ParjError::InvalidOptions(msg)) => {
                assert!(msg.contains("thread"), "{msg}");
            }
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
        // The engine is unharmed afterwards.
        assert_eq!(run_count(&mut e, q).unwrap().0, 4);
    }

    #[test]
    #[allow(deprecated)] // pins the legacy shim's observable behaviour
    fn incremental_load_after_finalize() {
        let mut e = engine();
        assert_eq!(e.num_triples(), 8);
        e.add_triple(
            &Term::iri("http://e/ProfD"),
            &Term::iri("http://e/worksFor"),
            &Term::iri("http://e/U1"),
        );
        let (count, _) = run_count(&mut e, "SELECT ?x WHERE { ?x <http://e/worksFor> ?u }").unwrap();
        assert_eq!(count, 4);
        assert_eq!(e.num_triples(), 9);
    }

    #[test]
    fn snapshot_roundtrip_via_engine() {
        let mut e = engine();
        let dir = std::env::temp_dir().join(format!("parj-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.parj");
        e.save_snapshot(&path).unwrap();
        let mut back = Parj::load_snapshot(&path, EngineConfig::default()).unwrap();
        let q = "SELECT ?x ?y WHERE { ?x <http://e/worksFor> ?y }";
        assert_eq!(
            run_count(&mut back, q).unwrap().0,
            run_count(&mut e, q).unwrap().0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_without_execution() {
        let mut e = engine();
        let text = e
            .explain("SELECT ?x WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> <http://e/U2> }")
            .unwrap();
        assert!(text.contains("scan"));
        assert!(text.contains("probe"));
    }

    #[test]
    fn profile_annotates_the_plan() {
        let mut e = engine();
        let text = e
            .profile("SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> <http://e/U2> }")
            .unwrap();
        // Driver row count, probe search counts and the result total all
        // appear.
        assert!(text.contains("→ 2 rows"), "{text}");
        assert!(text.contains("probes ("), "{text}");
        assert!(text.contains("= 2 result rows"), "{text}");
        // Union plans are labelled per branch.
        let text = e
            .profile("SELECT ?x WHERE { { ?x <http://e/teaches> ?y } UNION { ?x <http://e/worksFor> ?y } }")
            .unwrap();
        assert!(text.contains("union branch plan 0"), "{text}");
        assert!(text.contains("union branch plan 1"), "{text}");
    }

    #[test]
    fn request_explain_attaches_annotated_plan() {
        let mut e = engine();
        let out = e
            .request("SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> <http://e/U2> }")
            .explain(true)
            .run()
            .unwrap();
        assert_eq!(out.count, 2);
        let profile = out.profile.as_deref().expect("explain attaches a profile");
        assert!(profile.contains("probes ("), "{profile}");
        assert!(profile.contains("= 2 result rows"), "{profile}");
        // The full report stitches the annotated plan and the phase
        // summary together.
        let report = out.report();
        assert!(report.contains("probes ("), "{report}");
        assert!(report.contains("phases: parse"), "{report}");
        // Without explain, no profile is attached.
        let out = e
            .request("SELECT ?x WHERE { ?x <http://e/teaches> ?z }")
            .run()
            .unwrap();
        assert!(out.profile.is_none());
    }

    #[test]
    fn request_records_phase_timings() {
        let mut e = engine();
        let out = e
            .request("SELECT ?x ?y WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y }")
            .run()
            .unwrap();
        assert_eq!(out.count, 4);
        assert_eq!(out.stats.prepare_micros, out.stats.phases.total());
        let report = out.report();
        assert!(report.contains("phases: parse"), "{report}");
        assert!(report.contains("rows: 4"), "{report}");
        assert!(report.contains("searches:"), "{report}");
    }

    #[test]
    fn metrics_populated_after_queries() {
        let mut e = engine();
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z }";
        assert_eq!(e.request(q).count_only().run().unwrap().count, 4);
        assert!(matches!(
            e.request(q).max_rows(2).count_only().run(),
            Err(ParjError::BudgetExceeded { .. })
        ));
        let snap = e.metrics_snapshot();
        assert!(
            snap.families.len() >= 12,
            "expected >= 12 metric families, got {}",
            snap.families.len()
        );
        assert_eq!(snap.value("parj_queries_total", &[("outcome", "ok")]), Some(1));
        assert_eq!(snap.value("parj_queries_total", &[("outcome", "budget")]), Some(1));
        assert_eq!(snap.value("parj_queries_inflight", &[]), Some(0));
        assert_eq!(snap.value("parj_store_triples", &[]), Some(8));
        assert_eq!(
            snap.value("parj_load_statements_total", &[("result", "loaded")]),
            Some(8)
        );
        assert!(snap.value("parj_result_rows_total", &[]).unwrap() >= 4);
        // Per-predicate memory gauges carry decoded labels.
        assert!(snap
            .value("parj_store_replica_bytes", &[("predicate", "<http://e/teaches>")])
            .is_some_and(|v| v > 0));
        // Exposition renders both formats.
        let prom = snap.to_prometheus();
        assert!(prom.contains("parj_queries_total"), "{prom}");
        assert!(prom.contains("outcome=\"ok\""), "{prom}");
        let json = snap.to_json();
        assert!(json.contains("parj_queries_total"), "{json}");
    }

    #[test]
    fn record_metrics_off_leaves_registry_zeroed() {
        let mut e = Parj::builder().threads(1).record_metrics(false).build();
        e.load_ntriples_str(DATA).unwrap();
        e.finalize();
        let (count, _) = run_count(&mut e, "SELECT ?x WHERE { ?x <http://e/teaches> ?z }").unwrap();
        assert_eq!(count, 4);
        let snap = e.metrics_snapshot();
        assert_eq!(snap.value("parj_queries_total", &[("outcome", "ok")]), Some(0));
        assert_eq!(snap.value("parj_store_triples", &[]), Some(0));
        assert_eq!(
            snap.value("parj_load_statements_total", &[("result", "loaded")]),
            Some(0)
        );
    }

    #[test]
    fn query_on_empty_engine() {
        let mut e = Parj::new();
        let res = run_query(&mut e, "SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert!(res.is_empty());
    }

    /// Ontology + data for the §6 reasoning extension tests.
    const ONTOLOGY: &str = r#"
<http://e/GradStudent> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/Student> .
<http://e/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/Person> .
<http://e/Prof> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/Person> .
<http://e/advisor> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://e/knows> .
<http://e/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/GradStudent> .
<http://e/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Student> .
<http://e/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Prof> .
<http://e/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> .
<http://e/alice> <http://e/advisor> <http://e/bob> .
<http://e/bob> <http://e/knows> <http://e/carol> .
"#;

    fn reasoning_engine(on: bool) -> Parj {
        let mut e = Parj::builder().threads(2).rdfs_reasoning(on).build();
        e.load_ntriples_str(ONTOLOGY).unwrap();
        e.finalize();
        e
    }

    #[test]
    fn reasoning_subclass_union() {
        let q = "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> }";
        // Without reasoning only the direct assertion matches.
        let mut plain = reasoning_engine(false);
        assert_eq!(run_count(&mut plain, q).unwrap().0, 1); // carol
        // With reasoning: alice (GradStudent ⊑ Student ⊑ Person), bob
        // (Prof ⊑ Person), carol — and alice only ONCE although she is
        // typed under two subclasses (entailment dedup).
        let mut smart = reasoning_engine(true);
        assert_eq!(run_count(&mut smart, q).unwrap().0, 3);
        let res = run_query(&mut smart, q).unwrap();
        let mut names: Vec<String> = res.rows.iter().map(|r| r[0].to_string()).collect();
        names.sort();
        assert_eq!(
            names,
            vec!["<http://e/alice>", "<http://e/bob>", "<http://e/carol>"]
        );
    }

    #[test]
    fn reasoning_subproperty_union() {
        let q = "SELECT ?a ?b WHERE { ?a <http://e/knows> ?b }";
        let mut plain = reasoning_engine(false);
        assert_eq!(run_count(&mut plain, q).unwrap().0, 1); // bob knows carol
        let mut smart = reasoning_engine(true);
        // advisor ⊑ knows adds alice→bob.
        assert_eq!(run_count(&mut smart, q).unwrap().0, 2);
    }

    #[test]
    fn reasoning_matches_materialization_oracle() {
        // Forward-chain the closure by hand, load it into a plain
        // engine, and compare DISTINCT results with the reasoning
        // engine on the original data.
        let mut materialized = Parj::builder().threads(1).build();
        materialized.load_ntriples_str(ONTOLOGY).unwrap();
        // Manual closure for this ontology:
        let closure = [
            ("alice", "Student"), // from GradStudent (already asserted too)
            ("alice", "Person"),
            ("bob", "Person"),
        ]
        .into_iter()
        .map(|(s, c)| {
            (
                Term::iri(format!("http://e/{s}")),
                Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                Term::iri(format!("http://e/{c}")),
            )
        });
        materialized
            .mutate()
            .insert_all(closure)
            .insert(
                Term::iri("http://e/alice"),
                Term::iri("http://e/knows"),
                Term::iri("http://e/bob"),
            )
            .run()
            .unwrap();
        let mut smart = reasoning_engine(true);
        for q in [
            "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> }",
            "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Student> }",
            "SELECT ?a ?b WHERE { ?a <http://e/knows> ?b }",
            "SELECT ?a ?c WHERE { ?a <http://e/knows> ?b . ?b <http://e/knows> ?c }",
        ] {
            let (expect, _) = run_count(&mut materialized, q).unwrap();
            let (got, _) = run_count(&mut smart, q).unwrap();
            assert_eq!(got, expect, "{q}");
        }
    }

    #[test]
    fn reasoning_preserves_limit_and_threads() {
        let mut smart = reasoning_engine(true);
        let q = "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> } LIMIT 2";
        assert_eq!(run_count(&mut smart, q).unwrap().0, 2);
        for threads in [1, 4] {
            let q = "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> }";
            assert_eq!(
                smart.request(q).threads(threads).count_only().run().unwrap().count,
                3
            );
        }
    }

    #[test]
    fn union_queries() {
        let mut e = engine();
        // teaches ∪ worksFor: 4 + 3 rows, multiset semantics.
        let q = "SELECT ?x ?y WHERE { \
                 { ?x <http://e/teaches> ?y } UNION { ?x <http://e/worksFor> ?y } }";
        let (count, _) = run_count(&mut e, q).unwrap();
        assert_eq!(count, 7);
        let res = run_query(&mut e, q).unwrap();
        assert_eq!(res.rows.len(), 7);

        // Overlapping branches keep duplicates (multiset union)…
        let q = "SELECT ?x WHERE { \
                 { ?x <http://e/teaches> ?z } UNION { ?x <http://e/teaches> ?z } }";
        assert_eq!(run_count(&mut e, q).unwrap().0, 8);
        // …unless DISTINCT.
        let q = "SELECT DISTINCT ?x WHERE { \
                 { ?x <http://e/teaches> ?z } UNION { ?x <http://e/teaches> ?z } }";
        assert_eq!(run_count(&mut e, q).unwrap().0, 3);

        // A branch with a missing constant contributes nothing; the
        // other still answers.
        let q = "SELECT ?x WHERE { \
                 { ?x <http://e/teaches> <http://e/Nope> } UNION { ?x <http://e/worksFor> <http://e/U2> } }";
        assert_eq!(run_count(&mut e, q).unwrap().0, 2);

        // A projected variable unbound in one branch is rejected.
        let q = "SELECT ?y WHERE { \
                 { ?x <http://e/teaches> ?y } UNION { ?x <http://e/worksFor> ?z } }";
        assert!(matches!(run_query(&mut e, q), Err(ParjError::Unsupported(_))));

        // Joins inside branches work.
        let q = "SELECT ?x ?c WHERE { \
                 { ?x <http://e/teaches> ?c . ?x <http://e/worksFor> <http://e/U1> } \
                 UNION { ?x <http://e/teaches> ?c . ?x <http://e/worksFor> <http://e/U2> } }";
        assert_eq!(run_count(&mut e, q).unwrap().0, 4);
    }

    #[test]
    fn union_with_reasoning_dedups_per_branch() {
        let mut smart = reasoning_engine(true);
        // Within one branch alice's double typing (GradStudent+Student)
        // dedups; the identical second branch re-contributes every
        // solution (multiset union).
        let person = "SELECT ?x WHERE { \
            { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> } \
            UNION \
            { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Person> } }";
        assert_eq!(run_count(&mut smart, person).unwrap().0, 6); // 3 + 3
    }

    #[test]
    fn order_by_and_offset() {
        let mut e = engine();
        // Professors ordered by IRI ascending.
        let res = run_query(&mut e, "SELECT ?x WHERE { ?x <http://e/worksFor> ?u } ORDER BY ?x")
            .unwrap();
        let names: Vec<String> = res.rows.iter().map(|r| r[0].to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 3);

        // DESC reverses.
        let res = run_query(
            &mut e,
            "SELECT ?x WHERE { ?x <http://e/worksFor> ?u } ORDER BY DESC(?x)",
        )
        .unwrap();
        let desc: Vec<String> = res.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(desc, sorted.iter().rev().cloned().collect::<Vec<_>>());

        // ORDER BY a non-projected variable forces full-width rows.
        let res = run_query(
            &mut e,
            "SELECT ?x WHERE { ?x <http://e/worksFor> ?u } ORDER BY ?u ?x",
        )
        .unwrap();
        assert_eq!(res.rows.len(), 3);
        assert_eq!(res.vars, vec!["x"]);

        // OFFSET slices after ordering; pagination covers everything.
        let page1 = run_query(
            &mut e,
            "SELECT ?x WHERE { ?x <http://e/worksFor> ?u } ORDER BY ?x LIMIT 2",
        )
        .unwrap();
        let page2 = run_query(
            &mut e,
            "SELECT ?x WHERE { ?x <http://e/worksFor> ?u } ORDER BY ?x OFFSET 2 LIMIT 2",
        )
        .unwrap();
        assert_eq!(page1.rows.len(), 2);
        assert_eq!(page2.rows.len(), 1);
        let mut all: Vec<String> = page1
            .rows
            .iter()
            .chain(&page2.rows)
            .map(|r| r[0].to_string())
            .collect();
        assert_eq!(all, sorted);
        all.dedup();
        assert_eq!(all.len(), 3);

        // Silent-mode count honors OFFSET without materializing.
        let (count, _) =
            run_count(&mut e, "SELECT ?x WHERE { ?x <http://e/teaches> ?z } OFFSET 3").unwrap();
        assert_eq!(count, 1); // 4 teaching rows - 3

        // DISTINCT preserves requested order.
        let res = run_query(
            &mut e,
            "SELECT DISTINCT ?x WHERE { ?x <http://e/teaches> ?z } ORDER BY DESC(?x)",
        )
        .unwrap();
        let names: Vec<String> = res.rows.iter().map(|r| r[0].to_string()).collect();
        let mut check = names.clone();
        check.sort();
        check.reverse();
        assert_eq!(names, check);
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn budget_exceeded_surfaces_with_partial_stats() {
        let mut e = engine();
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z }"; // 4 rows
        match e.request(q).max_rows(2).count_only().run() {
            Err(ParjError::BudgetExceeded { rows, partial }) => {
                assert!(rows > 2, "overshoot still exceeds the limit: {rows}");
                assert_eq!(partial.rows, rows);
                assert!(partial.plan.contains("scan"));
            }
            other => panic!("expected budget error, got {other:?}"),
        }
        // A budget the result fits under does not trip…
        let count = e.request(q).max_rows(4).count_only().run().unwrap().count;
        assert_eq!(count, 4);
        // …and the budget counts pre-LIMIT rows: LIMIT 1 still produces
        // 4 join rows, so a budget of 2 trips anyway.
        let limited = "SELECT ?x WHERE { ?x <http://e/teaches> ?z } LIMIT 1";
        assert!(matches!(
            e.request(limited).max_rows(2).count_only().run(),
            Err(ParjError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn engine_wide_budget_from_config() {
        let mut e = Parj::builder().threads(2).max_result_rows(1).build();
        e.load_ntriples_str(DATA).unwrap();
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z }";
        assert!(matches!(
            run_count(&mut e, q),
            Err(ParjError::BudgetExceeded { .. })
        ));
        // A per-run override lifts the engine-wide cap.
        let count = e.request(q).max_rows(100).count_only().run().unwrap().count;
        assert_eq!(count, 4);
    }

    #[test]
    fn cancelled_token_stops_query_and_resets() {
        let mut e = engine();
        let q = "SELECT ?x WHERE { ?x <http://e/teaches> ?z }";
        let (token, over) = e.query_handle();
        token.cancel();
        match e.request(q).overrides(&over).count_only().run() {
            Err(ParjError::Cancelled { partial }) => assert_eq!(partial.rows, 0),
            other => panic!("expected cancellation, got {other:?}"),
        }
        // The engine survives and the token re-arms.
        token.reset();
        assert_eq!(
            e.request(q).overrides(&over).count_only().run().unwrap().count,
            4
        );
    }

    #[test]
    fn expired_deadline_stops_query() {
        let mut e = engine();
        let q = "SELECT ?x ?z ?y WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y }";
        match e.request(q).timeout(Duration::ZERO).run() {
            Err(ParjError::DeadlineExceeded { elapsed, .. }) => {
                assert!(elapsed >= Duration::ZERO);
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        // A generous deadline lets the same query finish.
        let out = e.request(q).timeout(Duration::from_secs(60)).run().unwrap();
        assert_eq!(out.rows.unwrap().len(), 4);
    }

    #[test]
    fn guard_spans_union_branches() {
        let mut e = engine();
        // Each branch alone produces 4 rows; the shared budget of 5
        // must trip on the second branch because rows accumulate
        // across branches of one run.
        let q = "SELECT ?x WHERE { \
                 { ?x <http://e/teaches> ?z } UNION { ?x <http://e/teaches> ?z } }";
        assert_eq!(e.request(q).max_rows(8).count_only().run().unwrap().count, 8);
        match e.request(q).max_rows(5).count_only().run() {
            Err(ParjError::BudgetExceeded { rows, .. }) => assert!(rows > 5),
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn sparql_errors_surface() {
        let mut e = engine();
        assert!(matches!(
            run_query(&mut e, "SELECT ?x WHERE { OPTIONAL { ?x ?p ?o } }"),
            Err(ParjError::Sparql(_))
        ));
        assert!(matches!(
            run_query(&mut e, "SELECT ?p WHERE { ?x ?p ?o }"),
            Err(ParjError::Unsupported(_))
        ));
    }

    fn cached_engine() -> Parj {
        let mut e = Parj::builder().threads(2).cache(true).build();
        assert_eq!(e.load_ntriples_str(DATA).unwrap(), 8);
        e.finalize();
        e
    }

    /// Every count-only run must report exactly the row count of the
    /// materializing run of the same query — across `OFFSET`/`LIMIT`
    /// windows, `DISTINCT`, unions, and zero-arity (`ASK`-style)
    /// bodies.
    #[test]
    fn count_only_matches_materialized_len() {
        let mut e = engine();
        let bodies = [
            "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }",
            "SELECT DISTINCT ?x WHERE { ?x <http://e/teaches> ?z }",
            "SELECT ?x WHERE { { ?x <http://e/teaches> ?z } UNION { ?x <http://e/worksFor> ?z } }",
            "ASK { ?x <http://e/teaches> ?z }",
            "ASK { <http://e/ProfA> <http://e/name> \"Alice\" }",
        ];
        for body in bodies {
            for offset in [None, Some(0usize), Some(2), Some(100)] {
                for limit in [None, Some(0usize), Some(1), Some(3), Some(100)] {
                    let mut q = body.to_string();
                    if let Some(l) = limit {
                        q.push_str(&format!(" LIMIT {l}"));
                    }
                    if let Some(o) = offset {
                        q.push_str(&format!(" OFFSET {o}"));
                    }
                    let count = e.request(&q).count_only().run().unwrap().count;
                    let out = e.request(&q).run().unwrap();
                    let rows = out.rows.unwrap();
                    assert_eq!(
                        count,
                        rows.len() as u64,
                        "count/materialized divergence for {q}"
                    );
                    assert_eq!(count, out.count, "outcome count mismatch for {q}");
                }
            }
        }
    }

    #[test]
    fn zero_arity_rows_report_match_count() {
        let mut e = engine();
        // ASK carries an implicit LIMIT 1; a match is one empty row.
        let out = e.request("ASK { ?x <http://e/teaches> ?z }").run().unwrap();
        assert_eq!(out.count, 1);
        assert_eq!(out.rows.as_ref().unwrap().len(), 1);
        assert!(out.rows.unwrap().iter().all(Vec::is_empty));
        // Lifting the limit exposes every zero-arity match, not zero.
        let out = e
            .request("ASK { ?x <http://e/teaches> ?z } LIMIT 100")
            .run()
            .unwrap();
        assert_eq!(out.count, 4);
        assert_eq!(out.rows.unwrap().len(), 4);
        let out = e
            .request("ASK { <http://e/ProfA> <http://e/worksFor> <http://e/U2> }")
            .run()
            .unwrap();
        assert_eq!(out.count, 0);
    }

    #[test]
    fn cache_off_reports_off_and_stays_cold() {
        let mut e = engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        for _ in 0..2 {
            let out = e.request(q).run().unwrap();
            assert_eq!(out.stats.cache, crate::CacheStatus::Off);
            assert_eq!(out.count, 4);
        }
    }

    #[test]
    fn result_cache_serves_identical_answers() {
        let mut cold = engine();
        let mut e = cached_engine();
        let q = "SELECT ?x ?z ?y WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y }";
        let first = e.request(q).run().unwrap();
        assert_eq!(first.stats.cache, crate::CacheStatus::Miss);
        let second = e.request(q).run().unwrap();
        assert_eq!(second.stats.cache, crate::CacheStatus::ResultHit);
        assert_eq!(second.stats.exec_micros, 0);
        let reference = cold.request(q).run().unwrap();
        let sort = |mut rows: Vec<Vec<Term>>| {
            rows.sort();
            rows
        };
        let cold_rows = sort(reference.rows.unwrap());
        assert_eq!(sort(first.rows.unwrap()), cold_rows);
        assert_eq!(sort(second.rows.unwrap()), cold_rows);
    }

    #[test]
    fn renamed_query_hits_the_same_entry() {
        let mut e = cached_engine();
        let a = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        let b = "SELECT ?s ?c WHERE { ?s <http://e/teaches> ?c }";
        assert_eq!(e.request(a).run().unwrap().stats.cache, crate::CacheStatus::Miss);
        let out = e.request(b).run().unwrap();
        assert_eq!(out.stats.cache, crate::CacheStatus::ResultHit);
        // Names still come from the *request's* text, not the entry's.
        assert_eq!(out.vars, vec!["s", "c"]);
    }

    #[test]
    fn plan_cache_shares_across_limit_windows() {
        let mut e = cached_engine();
        let base = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        assert_eq!(
            e.request(base).run().unwrap().stats.cache,
            crate::CacheStatus::Miss
        );
        // Different LIMIT ⇒ different result entry, same plan entry.
        let out = e.request(&format!("{base} LIMIT 2")).run().unwrap();
        assert_eq!(out.stats.cache, crate::CacheStatus::PlanHit);
        assert_eq!(out.stats.phases.optimize_micros, 0);
        assert_eq!(out.count, 2);
    }

    #[test]
    fn count_and_rows_modes_key_separate_entries() {
        let mut e = cached_engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        let counted = e.request(q).count_only().run().unwrap();
        assert_eq!(counted.stats.cache, crate::CacheStatus::Miss);
        // A rows request must not be served from the silent count
        // entry — it needs the materialized ids.
        let rows = e.request(q).run().unwrap();
        assert_eq!(rows.stats.cache, crate::CacheStatus::PlanHit);
        assert_eq!(rows.rows.unwrap().len(), 4);
        // ids and rows share the materialized entry.
        let ids = e.request(q).ids_only().run().unwrap();
        assert_eq!(ids.stats.cache, crate::CacheStatus::ResultHit);
        assert_eq!(ids.ids.unwrap().len(), 4);
        // And the silent count is served on repeat.
        assert_eq!(
            e.request(q).count_only().run().unwrap().stats.cache,
            crate::CacheStatus::ResultHit
        );
    }

    #[test]
    fn updates_invalidate_cached_results() {
        let mut e = cached_engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        assert_eq!(e.request(q).run().unwrap().count, 4);
        assert_eq!(e.request(q).run().unwrap().stats.cache, crate::CacheStatus::ResultHit);
        let out = e
            .mutate()
            .insert(
                Term::iri("http://e/ProfD"),
                Term::iri("http://e/teaches"),
                Term::iri("http://e/Art"),
            )
            .run()
            .unwrap();
        assert_eq!(out.cache_invalidations, 1, "only the touched predicate bumps");
        // The write bumped the epoch of <teaches>: the old entry is
        // stale and the fresh answer reflects the new triple.
        let out = e.request(q).run().unwrap();
        assert_eq!(out.stats.cache, crate::CacheStatus::Miss);
        assert_eq!(out.count, 5);
        assert_eq!(e.request(q).run().unwrap().count, 5);
    }

    #[test]
    fn bypass_budget_and_explain_skip_the_cache() {
        let mut e = cached_engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        // Explicit bypass: nothing inserted...
        let out = e.request(q).bypass_cache().run().unwrap();
        assert_eq!(out.stats.cache, crate::CacheStatus::Bypassed);
        // ...so the next cached run is still a miss.
        assert_eq!(e.request(q).run().unwrap().stats.cache, crate::CacheStatus::Miss);
        // Row-budgeted runs bypass: a budget changes the answer itself
        // (BudgetExceeded vs a complete cached result), so budgeted runs
        // must neither read nor write the cache.
        let budgeted = e.request(q).max_rows(1_000_000).run().unwrap();
        assert_eq!(budgeted.stats.cache, crate::CacheStatus::Bypassed);
        // EXPLAIN runs execute for real, never served from cache.
        let explained = e.request(q).explain(true).run().unwrap();
        assert_eq!(explained.stats.cache, crate::CacheStatus::Bypassed);
        assert!(explained.profile.is_some());
        // The cached entry is still served afterwards, unchanged.
        assert_eq!(
            e.request(q).run().unwrap().stats.cache,
            crate::CacheStatus::ResultHit
        );
    }

    #[test]
    fn deadline_and_cancel_guarded_runs_use_the_cache() {
        let mut e = cached_engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        // A deadline-guarded run both populates and is served from the
        // cache: guards abort with an error before any insert, so a
        // successful guarded run is a complete answer like any other.
        // (The serving layer attaches a cancel token to every request.)
        let first = e
            .request(q)
            .timeout(Duration::from_secs(60))
            .cancel(crate::CancelToken::new())
            .run()
            .unwrap();
        assert_eq!(first.stats.cache, crate::CacheStatus::Miss);
        let second = e.request(q).timeout(Duration::from_secs(60)).run().unwrap();
        assert_eq!(second.stats.cache, crate::CacheStatus::ResultHit);
        assert_eq!(second.count, first.count);
        // And an unguarded run shares the same entry.
        assert_eq!(
            e.request(q).run().unwrap().stats.cache,
            crate::CacheStatus::ResultHit
        );
    }

    #[test]
    fn cache_metrics_feed_the_registry() {
        let mut e = cached_engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        e.request(q).run().unwrap();
        e.request(q).run().unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(
            snap.value("parj_cache_misses_total", &[("cache", "result")]),
            Some(1)
        );
        assert_eq!(
            snap.value("parj_cache_hits_total", &[("cache", "result")]),
            Some(1)
        );
        assert_eq!(
            snap.value("parj_cache_hits_total", &[("cache", "plan")]),
            Some(0)
        );
        assert!(
            snap.value("parj_cache_resident_bytes", &[("cache", "result")])
                .unwrap()
                > 0
        );
    }

    #[test]
    fn cached_report_names_the_hit() {
        let mut e = cached_engine();
        let q = "SELECT ?x ?z WHERE { ?x <http://e/teaches> ?z }";
        assert!(e.request(q).run().unwrap().report().contains("cache: miss"));
        assert!(e
            .request(q)
            .run()
            .unwrap()
            .report()
            .contains("cache: result-hit"));
    }
}
