//! Engine error type.

use std::fmt;

/// Anything that can go wrong between a query string and its results.
#[derive(Debug)]
pub enum ParjError {
    /// SPARQL lex/parse failure.
    Sparql(parj_sparql::SparqlError),
    /// RDF data parse failure.
    Rio(parj_rio::ParseError),
    /// Join-order optimization failure (e.g. cartesian product).
    Optimize(parj_optimizer::OptimizeError),
    /// Plan validation failure (internal invariant).
    Plan(parj_join::PlanError),
    /// Snapshot persistence failure.
    Snapshot(parj_store::SnapshotError),
    /// I/O failure.
    Io(std::io::Error),
    /// Query uses a feature the engine rejects, with an explanation.
    Unsupported(String),
    /// A `&self` query path was used on an engine that has staged,
    /// un-finalized data; call [`crate::Parj::finalize`] first.
    NotFinalized,
}

impl fmt::Display for ParjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParjError::Sparql(e) => write!(f, "{e}"),
            ParjError::Rio(e) => write!(f, "RDF parse error: {e}"),
            ParjError::Optimize(e) => write!(f, "optimizer error: {e}"),
            ParjError::Plan(e) => write!(f, "plan error: {e}"),
            ParjError::Snapshot(e) => write!(f, "{e}"),
            ParjError::Io(e) => write!(f, "I/O error: {e}"),
            ParjError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            ParjError::NotFinalized => {
                write!(f, "engine not finalized; call finalize() before &self queries")
            }
        }
    }
}

impl std::error::Error for ParjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParjError::Sparql(e) => Some(e),
            ParjError::Rio(e) => Some(e),
            ParjError::Optimize(e) => Some(e),
            ParjError::Plan(e) => Some(e),
            ParjError::Snapshot(e) => Some(e),
            ParjError::Io(e) => Some(e),
            ParjError::Unsupported(_) | ParjError::NotFinalized => None,
        }
    }
}

impl From<parj_sparql::SparqlError> for ParjError {
    fn from(e: parj_sparql::SparqlError) -> Self {
        ParjError::Sparql(e)
    }
}

impl From<parj_rio::ParseError> for ParjError {
    fn from(e: parj_rio::ParseError) -> Self {
        ParjError::Rio(e)
    }
}

impl From<parj_optimizer::OptimizeError> for ParjError {
    fn from(e: parj_optimizer::OptimizeError) -> Self {
        ParjError::Optimize(e)
    }
}

impl From<parj_join::PlanError> for ParjError {
    fn from(e: parj_join::PlanError) -> Self {
        ParjError::Plan(e)
    }
}

impl From<parj_store::SnapshotError> for ParjError {
    fn from(e: parj_store::SnapshotError) -> Self {
        ParjError::Snapshot(e)
    }
}

impl From<std::io::Error> for ParjError {
    fn from(e: std::io::Error) -> Self {
        ParjError::Io(e)
    }
}
