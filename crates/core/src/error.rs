//! Engine error type.

use std::fmt;
use std::time::Duration;

use crate::result::QueryRunStats;

/// Anything that can go wrong between a query string and its results.
#[derive(Debug)]
pub enum ParjError {
    /// SPARQL lex/parse failure.
    Sparql(parj_sparql::SparqlError),
    /// RDF data parse failure.
    Rio(parj_rio::ParseError),
    /// Join-order optimization failure (e.g. cartesian product).
    Optimize(parj_optimizer::OptimizeError),
    /// Plan validation failure (internal invariant).
    Plan(parj_join::PlanError),
    /// Snapshot persistence failure.
    Snapshot(parj_store::SnapshotError),
    /// I/O failure.
    Io(std::io::Error),
    /// Query uses a feature the engine rejects, with an explanation.
    Unsupported(String),
    /// A `&self` query path was used on an engine that has staged,
    /// un-finalized data; call [`crate::Parj::finalize`] first.
    NotFinalized,
    /// Execution options were invalid — e.g. a per-run thread override
    /// of zero. Raised at option construction instead of silently
    /// clamping.
    InvalidOptions(String),
    /// The query was cancelled through its [`crate::CancelToken`]
    /// before it finished.
    Cancelled {
        /// Progress made before the cancellation was observed.
        partial: Box<QueryRunStats>,
    },
    /// The query ran past its wall-clock deadline
    /// ([`crate::RunOverrides::timeout`] /
    /// [`crate::EngineConfig::timeout`]).
    DeadlineExceeded {
        /// Time elapsed when a worker noticed the deadline.
        elapsed: Duration,
        /// Progress made before the deadline tripped.
        partial: Box<QueryRunStats>,
    },
    /// The query produced more result rows than its budget allows
    /// ([`crate::RunOverrides::max_rows`] /
    /// [`crate::EngineConfig::max_result_rows`]). The budget counts
    /// rows *produced by the join* — before `LIMIT`/`OFFSET` trimming.
    BudgetExceeded {
        /// Rows counted when the budget tripped (bounded overshoot of
        /// up to `threads × GUARD_BATCH` past the limit).
        rows: u64,
        /// Progress made before the budget tripped.
        partial: Box<QueryRunStats>,
    },
    /// The store failed the deep structural audit
    /// ([`crate::Parj::audit_strict`]): a physical invariant — CSR
    /// shape, replica-pair multiset equality, dictionary bijectivity,
    /// snapshot stability — does not hold.
    CorruptStore {
        /// Full report with per-violation predicate/replica/row
        /// coordinates.
        report: parj_audit::AuditReport,
    },
    /// A worker thread panicked mid-query. The panic was contained,
    /// sibling workers were cancelled, and the engine remains usable.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
        /// Progress made by the workers that did not panic.
        partial: Box<QueryRunStats>,
    },
    /// An internal engine invariant did not hold (e.g. an id produced
    /// by the join failed to decode through the dictionary). These were
    /// once panics in facade callers; they are surfaced as errors so a
    /// serving layer can answer 500 and keep running instead of dying.
    Internal(String),
}

impl fmt::Display for ParjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParjError::Sparql(e) => write!(f, "{e}"),
            ParjError::Rio(e) => write!(f, "RDF parse error: {e}"),
            ParjError::Optimize(e) => write!(f, "optimizer error: {e}"),
            ParjError::Plan(e) => write!(f, "plan error: {e}"),
            ParjError::Snapshot(e) => write!(f, "{e}"),
            ParjError::Io(e) => write!(f, "I/O error: {e}"),
            ParjError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            ParjError::NotFinalized => {
                write!(f, "engine not finalized; call finalize() before &self queries")
            }
            ParjError::InvalidOptions(m) => write!(f, "invalid execution options: {m}"),
            ParjError::Cancelled { partial } => {
                write!(f, "query cancelled after {} rows", partial.rows)
            }
            ParjError::DeadlineExceeded { elapsed, .. } => {
                write!(f, "query deadline exceeded after {elapsed:.2?}")
            }
            ParjError::BudgetExceeded { rows, .. } => {
                write!(f, "query result budget exceeded at {rows} rows")
            }
            ParjError::CorruptStore { report } => {
                write!(f, "corrupt store: {report}")
            }
            ParjError::WorkerPanicked { message, .. } => {
                write!(f, "query worker panicked: {message}")
            }
            ParjError::Internal(m) => write!(f, "internal engine invariant violated: {m}"),
        }
    }
}

impl ParjError {
    /// Partial-progress statistics for failures that interrupted a
    /// running query (`Cancelled`, `DeadlineExceeded`, `BudgetExceeded`,
    /// `WorkerPanicked`); `None` for errors raised before execution.
    pub fn partial_stats(&self) -> Option<&QueryRunStats> {
        match self {
            ParjError::Cancelled { partial }
            | ParjError::DeadlineExceeded { partial, .. }
            | ParjError::BudgetExceeded { partial, .. }
            | ParjError::WorkerPanicked { partial, .. } => Some(partial),
            _ => None,
        }
    }
}

impl std::error::Error for ParjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParjError::Sparql(e) => Some(e),
            ParjError::Rio(e) => Some(e),
            ParjError::Optimize(e) => Some(e),
            ParjError::Plan(e) => Some(e),
            ParjError::Snapshot(e) => Some(e),
            ParjError::Io(e) => Some(e),
            ParjError::Unsupported(_)
            | ParjError::NotFinalized
            | ParjError::InvalidOptions(_)
            | ParjError::CorruptStore { .. }
            | ParjError::Cancelled { .. }
            | ParjError::DeadlineExceeded { .. }
            | ParjError::BudgetExceeded { .. }
            | ParjError::WorkerPanicked { .. }
            | ParjError::Internal(_) => None,
        }
    }
}

impl From<parj_sparql::SparqlError> for ParjError {
    fn from(e: parj_sparql::SparqlError) -> Self {
        ParjError::Sparql(e)
    }
}

impl From<parj_rio::ParseError> for ParjError {
    fn from(e: parj_rio::ParseError) -> Self {
        ParjError::Rio(e)
    }
}

impl From<parj_optimizer::OptimizeError> for ParjError {
    fn from(e: parj_optimizer::OptimizeError) -> Self {
        ParjError::Optimize(e)
    }
}

impl From<parj_join::PlanError> for ParjError {
    fn from(e: parj_join::PlanError) -> Self {
        ParjError::Plan(e)
    }
}

impl From<parj_store::SnapshotError> for ParjError {
    fn from(e: parj_store::SnapshotError) -> Self {
        ParjError::Snapshot(e)
    }
}

impl From<std::io::Error> for ParjError {
    fn from(e: std::io::Error) -> Self {
        ParjError::Io(e)
    }
}
