//! Canonical query fingerprints for the plan/result cache.
//!
//! Two BGPs that differ only in variable *names* or pattern *order*
//! describe the same join; the cache should serve one from the other's
//! entry. After parse+translate, [`canonicalize_query`] rewrites a
//! [`TranslatedQuery`] into a canonical form — variable slots
//! renumbered by a deterministic traversal, patterns reordered within
//! each set — and [`query_fingerprint`] serializes that form into a
//! stable byte key.
//!
//! ## Canonicalization rules
//!
//! 1. Canonical variable ids are assigned in this order: projection
//!    variables (in output order), then `ORDER BY` variables (in
//!    priority order), then pattern variables as patterns are visited.
//! 2. Within each pattern set, patterns are picked greedily: the next
//!    pattern is the one with the smallest `(subject, predicate,
//!    object)` key, where a constant sorts before an
//!    already-canonicalized variable, which sorts before a
//!    not-yet-seen variable; the original position breaks exact ties.
//!    Each picked pattern then assigns canonical ids to its unseen
//!    variables (subject before object).
//! 3. The fingerprint covers the *semantic* shape — flags
//!    (`DISTINCT`, hierarchy dedup, full-row materialization),
//!    projection, `ORDER BY`, branch structure, and the canonical
//!    patterns. It deliberately excludes `LIMIT`/`OFFSET` (result-cache
//!    keys append them separately so one plan entry serves every
//!    paging window) and all variable *names*.
//!
//! The rewrite is **sound** by construction: it is a bijective
//! renumbering plus a reorder of set elements whose union semantics is
//! order-independent, so the canonical query returns byte-identical
//! results. It is *best-effort complete*: most name/order variations
//! of the same BGP converge to one fingerprint, but a pathological tie
//! (two structurally indistinguishable patterns) falls back to input
//! order — which can only split equivalent queries across two entries,
//! never conflate different ones.

use crate::translate::TranslatedQuery;
use parj_join::{Atom, VarId};
use parj_optimizer::Pattern;

/// Bumped when the canonical form or serialization changes, so stale
/// serialized keys from other versions can never collide.
const FINGERPRINT_VERSION: u8 = 1;

/// Sort key for one atom under a partial canonical assignment.
/// Constants first (by id), then assigned variables (by canonical id),
/// then unassigned variables (all equal).
fn atom_key(a: Atom, assigned: &[Option<VarId>]) -> (u8, u64) {
    match a {
        Atom::Const(c) => (0, c as u64),
        Atom::Var(v) => match assigned[v as usize] {
            Some(c) => (1, c as u64),
            None => (2, 0),
        },
    }
}

/// Rewrites `tq` into its canonical form: variables renumbered and
/// patterns reordered per the module rules. Idempotent; results are
/// byte-identical to the original query's.
pub fn canonicalize_query(tq: &mut TranslatedQuery) {
    let mut assigned: Vec<Option<VarId>> = vec![None; tq.num_vars];
    let mut next: VarId = 0;
    let assign = |v: VarId, assigned: &mut Vec<Option<VarId>>, next: &mut VarId| {
        if assigned[v as usize].is_none() {
            assigned[v as usize] = Some(*next);
            *next += 1;
        }
    };

    for &v in &tq.projection {
        assign(v, &mut assigned, &mut next);
    }
    for &(v, _) in &tq.order_by {
        assign(v, &mut assigned, &mut next);
    }

    // Reorder each pattern set greedily under the growing assignment.
    let mut new_sets: Vec<Vec<Pattern>> = Vec::with_capacity(tq.pattern_sets.len());
    for set in &tq.pattern_sets {
        let mut remaining: Vec<(usize, &Pattern)> = set.iter().enumerate().collect();
        let mut ordered: Vec<Pattern> = Vec::with_capacity(set.len());
        while !remaining.is_empty() {
            let best = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, (orig, p))| {
                    (atom_key(p.s, &assigned), p.p, atom_key(p.o, &assigned), *orig)
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let (_, pat) = remaining.remove(best);
            if let Atom::Var(v) = pat.s {
                assign(v, &mut assigned, &mut next);
            }
            if let Atom::Var(v) = pat.o {
                assign(v, &mut assigned, &mut next);
            }
            ordered.push(*pat);
        }
        new_sets.push(ordered);
    }

    // Every subject/object variable occurs in some pattern, so the
    // assignment is total; tolerate gaps anyway (identity for unseen).
    for (old, slot) in assigned.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some(next);
            next += 1;
            debug_assert!(old < tq.num_vars);
        }
    }
    let remap = |v: VarId| -> VarId {
        match assigned[v as usize] {
            Some(c) => c,
            None => v,
        }
    };

    for set in &mut new_sets {
        for p in set.iter_mut() {
            if let Atom::Var(v) = p.s {
                p.s = Atom::Var(remap(v));
            }
            if let Atom::Var(v) = p.o {
                p.o = Atom::Var(remap(v));
            }
        }
    }
    tq.pattern_sets = new_sets;
    for v in &mut tq.projection {
        *v = remap(*v);
    }
    for (v, _) in &mut tq.order_by {
        *v = remap(*v);
    }
    let mut names = vec![String::new(); tq.num_vars];
    for (old, name) in tq.var_names.iter().enumerate() {
        names[remap(old as VarId) as usize] = name.clone();
    }
    tq.var_names = names;
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_atom(out: &mut Vec<u8>, a: Atom) {
    match a {
        Atom::Var(v) => {
            out.push(0);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Atom::Const(c) => {
            out.push(1);
            push_u64(out, c as u64);
        }
    }
}

/// Serializes the canonical shape of `tq` into a stable byte key.
/// Call [`canonicalize_query`] first — the fingerprint hashes whatever
/// form it is given. `LIMIT`/`OFFSET` and variable names are excluded
/// by design (see the module docs).
pub fn query_fingerprint(tq: &TranslatedQuery) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(FINGERPRINT_VERSION);
    push_u64(&mut out, tq.num_vars as u64);
    out.push(u8::from(tq.distinct) | (u8::from(tq.dedup_full) << 1) | (u8::from(tq.full_rows) << 2));
    push_u64(&mut out, tq.projection.len() as u64);
    for &v in &tq.projection {
        out.extend_from_slice(&v.to_le_bytes());
    }
    push_u64(&mut out, tq.order_by.len() as u64);
    for &(v, desc) in &tq.order_by {
        out.extend_from_slice(&v.to_le_bytes());
        out.push(u8::from(desc));
    }
    push_u64(&mut out, tq.pattern_sets.len() as u64);
    for (set, &branch) in tq.pattern_sets.iter().zip(&tq.set_branch) {
        push_u64(&mut out, branch as u64);
        push_u64(&mut out, set.len() as u64);
        for p in set {
            push_atom(&mut out, p.s);
            push_u64(&mut out, p.p as u64);
            push_atom(&mut out, p.o);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tq(pattern_sets: Vec<Vec<Pattern>>, num_vars: usize, projection: Vec<VarId>) -> TranslatedQuery {
        let set_branch = vec![0; pattern_sets.len()];
        TranslatedQuery {
            num_vars,
            var_names: (0..num_vars).map(|i| format!("v{i}")).collect(),
            proj_names: projection.iter().map(|v| format!("v{v}")).collect(),
            projection,
            distinct: false,
            order_by: Vec::new(),
            offset: None,
            limit: None,
            pattern_sets,
            set_branch,
            dedup_full: false,
            full_rows: false,
        }
    }

    fn pat(s: Atom, p: u64, o: Atom) -> Pattern {
        Pattern { s, p: p as parj_dict::Id, o }
    }

    #[test]
    fn renamed_variables_share_a_fingerprint() {
        // { ?x p ?y . ?y q ?z } with two different numberings.
        let mut a = tq(
            vec![vec![
                pat(Atom::Var(0), 7, Atom::Var(1)),
                pat(Atom::Var(1), 9, Atom::Var(2)),
            ]],
            3,
            vec![0, 2],
        );
        let mut b = tq(
            vec![vec![
                pat(Atom::Var(2), 7, Atom::Var(0)),
                pat(Atom::Var(0), 9, Atom::Var(1)),
            ]],
            3,
            vec![2, 1],
        );
        canonicalize_query(&mut a);
        canonicalize_query(&mut b);
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
    }

    #[test]
    fn reordered_patterns_share_a_fingerprint() {
        let p1 = pat(Atom::Var(0), 7, Atom::Var(1));
        let p2 = pat(Atom::Var(0), 9, Atom::Const(42));
        let mut a = tq(vec![vec![p1, p2]], 2, vec![0, 1]);
        let mut b = tq(vec![vec![p2, p1]], 2, vec![0, 1]);
        canonicalize_query(&mut a);
        canonicalize_query(&mut b);
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
    }

    #[test]
    fn different_shapes_do_not_collide() {
        let mut a = tq(vec![vec![pat(Atom::Var(0), 7, Atom::Var(1))]], 2, vec![0]);
        let mut b = tq(vec![vec![pat(Atom::Var(0), 8, Atom::Var(1))]], 2, vec![0]);
        let mut c = tq(vec![vec![pat(Atom::Var(0), 7, Atom::Const(8))]], 1, vec![0]);
        canonicalize_query(&mut a);
        canonicalize_query(&mut b);
        canonicalize_query(&mut c);
        let (fa, fb, fc) = (query_fingerprint(&a), query_fingerprint(&b), query_fingerprint(&c));
        assert_ne!(fa, fb);
        assert_ne!(fa, fc);
        assert_ne!(fb, fc);
    }

    #[test]
    fn limit_offset_and_names_are_excluded() {
        let mut a = tq(vec![vec![pat(Atom::Var(0), 7, Atom::Var(1))]], 2, vec![0]);
        let mut b = a.clone();
        b.limit = Some(10);
        b.offset = Some(5);
        b.var_names = vec!["other".into(), "names".into()];
        b.proj_names = vec!["other".into()];
        canonicalize_query(&mut a);
        canonicalize_query(&mut b);
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
    }

    #[test]
    fn distinct_flag_changes_the_fingerprint() {
        let mut a = tq(vec![vec![pat(Atom::Var(0), 7, Atom::Var(1))]], 2, vec![0]);
        let mut b = a.clone();
        b.distinct = true;
        canonicalize_query(&mut a);
        canonicalize_query(&mut b);
        assert_ne!(query_fingerprint(&a), query_fingerprint(&b));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let mut a = tq(
            vec![vec![
                pat(Atom::Var(2), 9, Atom::Var(1)),
                pat(Atom::Var(1), 7, Atom::Var(0)),
            ]],
            3,
            vec![2],
        );
        canonicalize_query(&mut a);
        let once = (a.clone().pattern_sets, a.projection.clone(), a.var_names.clone());
        canonicalize_query(&mut a);
        assert_eq!(once, (a.pattern_sets.clone(), a.projection.clone(), a.var_names.clone()));
    }

    #[test]
    fn projection_names_follow_their_slots() {
        let mut a = tq(
            vec![vec![pat(Atom::Var(1), 7, Atom::Var(0))]],
            2,
            vec![1, 0],
        );
        a.var_names = vec!["obj".into(), "subj".into()];
        a.proj_names = vec!["subj".into(), "obj".into()];
        canonicalize_query(&mut a);
        // Slot meanings survive the renumbering.
        let names: Vec<&str> = a.projection.iter().map(|&v| a.var_names[v as usize].as_str()).collect();
        assert_eq!(names, vec!["subj", "obj"]);
        assert_eq!(a.proj_names, vec!["subj", "obj"]);
    }
}
