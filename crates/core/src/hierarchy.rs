//! RDFS class/property hierarchies for query answering by *unioning*
//! partitions — the paper's §6 future work, implemented:
//!
//! > "We plan to extend our join method to handle such queries, by
//! > 'unioning' tables during the pipelined join execution in order to
//! > provide complete answering with respect to hierarchies, without
//! > the need to materialize the implications."
//!
//! At finalize the engine extracts `rdfs:subClassOf` /
//! `rdfs:subPropertyOf` statements from the data and computes their
//! transitive closures. At query time (when
//! [`crate::ParjBuilder::rdfs_reasoning`] is on):
//!
//! * a pattern `?x rdf:type C` expands into the union over all
//!   subclasses of `C` (including `C`);
//! * a pattern with constant predicate `P` expands into the union over
//!   all subproperties of `P` (including `P`);
//!
//! reusing the executor's pattern-set union machinery. Expanded unions
//! are alternative *derivations* of the same solution mapping, so the
//! engine deduplicates full solutions when any expansion fired —
//! exactly the semantics forward-chaining materialization would give,
//! with none of the "data size many times larger than the original"
//! the paper warns about.

use std::collections::HashMap;

use parj_dict::{Id, Term};
use parj_store::{SortOrder, TripleStore};

/// `rdfs:subClassOf`.
pub const RDFS_SUBCLASSOF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
/// `rdfs:subPropertyOf`.
pub const RDFS_SUBPROPERTYOF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Extracted transitive hierarchies over a store's dictionary ids.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    /// class resource id → all (transitive) subclasses, self included,
    /// sorted. Only classes with at least one *proper* subclass appear.
    sub_classes: HashMap<Id, Vec<Id>>,
    /// property **resource** id → predicate ids of all (transitive)
    /// subproperties that occur as predicates, self included when it
    /// occurs. Keyed by resource id because a super-property may never
    /// occur as a predicate itself (it then has no predicate id) yet its
    /// subproperties must still answer queries over it.
    sub_properties: HashMap<Id, Vec<Id>>,
    /// Predicate id of `rdf:type` in this dictionary, if present.
    rdf_type: Option<Id>,
}

/// Computes, for every node reachable as a superclass, the transitive
/// set of descendants (self included) over `edges: child → parents`.
fn transitive_descendants(direct: &HashMap<Id, Vec<Id>>) -> HashMap<Id, Vec<Id>> {
    // Invert to parent → children first.
    let mut children: HashMap<Id, Vec<Id>> = HashMap::new();
    for (&child, parents) in direct {
        for &p in parents {
            children.entry(p).or_default().push(child);
        }
    }
    let mut out = HashMap::new();
    for &root in children.keys() {
        // Iterative DFS with a visited set (hierarchies may contain
        // cycles in dirty data; they must not hang us).
        let mut seen = vec![root];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if let Some(kids) = children.get(&n) {
                for &k in kids {
                    if !seen.contains(&k) {
                        seen.push(k);
                        stack.push(k);
                    }
                }
            }
        }
        if seen.len() > 1 {
            seen.sort_unstable();
            out.insert(root, seen);
        }
    }
    out
}

impl Hierarchy {
    /// Extracts the hierarchies from `rdfs:subClassOf` /
    /// `rdfs:subPropertyOf` statements stored in `store`.
    pub fn extract(store: &TripleStore) -> Hierarchy {
        let dict = store.dict();
        let rdf_type = dict.predicate_id(&Term::iri(RDF_TYPE));

        // subClassOf: both endpoints are resource ids already.
        let mut class_parents: HashMap<Id, Vec<Id>> = HashMap::new();
        if let Some(p) = dict.predicate_id(&Term::iri(RDFS_SUBCLASSOF)) {
            if let Some(replica) = store.replica(p, SortOrder::SO) {
                for (child, parents) in replica.iter_groups() {
                    class_parents.entry(child).or_default().extend(parents);
                }
            }
        }

        // subPropertyOf: endpoints are resource-namespace encodings of
        // property IRIs. The closure is computed over resource ids (a
        // super-property may never occur as a predicate), then each
        // descendant set is mapped to the predicate ids that actually
        // occur — those are the partitions the union scans.
        let mut prop_parents: HashMap<Id, Vec<Id>> = HashMap::new();
        if let Some(p) = dict.predicate_id(&Term::iri(RDFS_SUBPROPERTYOF)) {
            if let Some(replica) = store.replica(p, SortOrder::SO) {
                for (child_res, parent_res) in replica.iter_pairs() {
                    prop_parents.entry(child_res).or_default().push(parent_res);
                }
            }
        }
        let as_pred = |res: Id| -> Option<Id> {
            dict.decode_resource(res).ok().and_then(|t| dict.predicate_id(&t))
        };
        let sub_properties: HashMap<Id, Vec<Id>> = transitive_descendants(&prop_parents)
            .into_iter()
            .filter_map(|(parent_res, descendant_res)| {
                let mut preds: Vec<Id> =
                    descendant_res.iter().copied().filter_map(as_pred).collect();
                preds.sort_unstable();
                preds.dedup();
                (!preds.is_empty()).then_some((parent_res, preds))
            })
            .collect();

        Hierarchy {
            sub_classes: transitive_descendants(&class_parents),
            sub_properties,
            rdf_type,
        }
    }

    /// All subclasses of `class` (self included), or `None` when the
    /// class has no proper subclasses (no expansion needed).
    pub fn subclasses(&self, class: Id) -> Option<&[Id]> {
        self.sub_classes.get(&class).map(Vec::as_slice)
    }

    /// Predicate ids of all subproperties of the property whose
    /// **resource** id is `property_res` (self included when it occurs
    /// as a predicate), or `None` when the property has no declared
    /// subproperties.
    pub fn subproperties(&self, property_res: Id) -> Option<&[Id]> {
        self.sub_properties.get(&property_res).map(Vec::as_slice)
    }

    /// The `rdf:type` predicate id, if the data uses it.
    pub fn rdf_type(&self) -> Option<Id> {
        self.rdf_type
    }

    /// True when no hierarchy statements were found (expansion is a
    /// no-op).
    pub fn is_empty(&self) -> bool {
        self.sub_classes.is_empty() && self.sub_properties.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_store::StoreBuilder;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://e/{s}"))
    }

    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        let mut add = |s: &Term, p: &str, o: &Term| {
            let p = if p.starts_with("http") {
                Term::iri(p)
            } else {
                iri(p)
            };
            b.add_term_triple(s, &p, o);
        };
        // Class hierarchy: GradStudent ⊑ Student ⊑ Person; Prof ⊑ Person.
        add(&iri("GradStudent"), RDFS_SUBCLASSOF, &iri("Student"));
        add(&iri("Student"), RDFS_SUBCLASSOF, &iri("Person"));
        add(&iri("Prof"), RDFS_SUBCLASSOF, &iri("Person"));
        // Property hierarchy: advisor ⊑ knows (both used as predicates).
        add(&iri("advisor"), RDFS_SUBPROPERTYOF, &iri("knows"));
        add(&iri("alice"), "advisor", &iri("bob"));
        add(&iri("carol"), "knows", &iri("dave"));
        add(&iri("alice"), RDF_TYPE, &iri("GradStudent"));
        add(&iri("bob"), RDF_TYPE, &iri("Prof"));
        b.build()
    }

    #[test]
    fn class_closure() {
        let s = store();
        let h = Hierarchy::extract(&s);
        let d = s.dict();
        let person = d.resource_id(&iri("Person")).unwrap();
        let student = d.resource_id(&iri("Student")).unwrap();
        let grad = d.resource_id(&iri("GradStudent")).unwrap();
        let prof = d.resource_id(&iri("Prof")).unwrap();
        let mut subs = h.subclasses(person).unwrap().to_vec();
        subs.sort_unstable();
        let mut expect = vec![person, student, grad, prof];
        expect.sort_unstable();
        assert_eq!(subs, expect);
        // Student's closure excludes Prof.
        let subs = h.subclasses(student).unwrap();
        assert!(subs.contains(&grad) && !subs.contains(&prof));
        // Leaf classes need no expansion.
        assert!(h.subclasses(grad).is_none());
    }

    #[test]
    fn property_closure() {
        let s = store();
        let h = Hierarchy::extract(&s);
        let d = s.dict();
        // Lookup key is the property's *resource* id; results are
        // predicate ids.
        let knows_res = d.resource_id(&iri("knows")).unwrap();
        let knows_pred = d.predicate_id(&iri("knows")).unwrap();
        let advisor_pred = d.predicate_id(&iri("advisor")).unwrap();
        let mut subs = h.subproperties(knows_res).unwrap().to_vec();
        subs.sort_unstable();
        let mut expect = vec![knows_pred, advisor_pred];
        expect.sort_unstable();
        assert_eq!(subs, expect);
        assert_eq!(h.rdf_type(), d.predicate_id(&Term::iri(RDF_TYPE)));
    }

    #[test]
    fn super_property_without_direct_use() {
        // `narrow ⊑ broad` where `broad` never occurs as a predicate:
        // its resource id must still expand to `narrow`'s partition.
        let mut b = StoreBuilder::new();
        b.add_term_triple(&iri("narrow"), &Term::iri(RDFS_SUBPROPERTYOF), &iri("broad"));
        b.add_term_triple(&iri("x"), &iri("narrow"), &iri("y"));
        let s = b.build();
        let h = Hierarchy::extract(&s);
        let broad_res = s.dict().resource_id(&iri("broad")).unwrap();
        let narrow_pred = s.dict().predicate_id(&iri("narrow")).unwrap();
        assert_eq!(h.subproperties(broad_res), Some(&[narrow_pred][..]));
    }

    #[test]
    fn cycles_terminate() {
        let mut b = StoreBuilder::new();
        b.add_term_triple(&iri("A"), &Term::iri(RDFS_SUBCLASSOF), &iri("B"));
        b.add_term_triple(&iri("B"), &Term::iri(RDFS_SUBCLASSOF), &iri("A"));
        let s = b.build();
        let h = Hierarchy::extract(&s);
        let a = s.dict().resource_id(&iri("A")).unwrap();
        let subs = h.subclasses(a).unwrap();
        assert_eq!(subs.len(), 2); // both classes, no hang
    }

    #[test]
    fn empty_hierarchy() {
        let mut b = StoreBuilder::new();
        b.add_term_triple(&iri("x"), &iri("p"), &iri("y"));
        let h = Hierarchy::extract(&b.build());
        assert!(h.is_empty());
        assert!(h.subclasses(0).is_none());
    }
}
