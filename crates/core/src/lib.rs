//! # parj-core — PARJ: Parallel Adaptive RDF Joins
//!
//! The public engine API of this reproduction of *"Scalable
//! Parallelization of RDF Joins on Multicore Architectures"* (Bilidas &
//! Koubarakis, EDBT 2019). It wires together the workspace substrates:
//!
//! | layer | crate |
//! |---|---|
//! | dictionary encoding | `parj-dict` |
//! | N-Triples I/O | `parj-rio` |
//! | vertical partitions, S-O/O-S replicas, ID-to-Position index | `parj-store` |
//! | adaptive join, calibration, parallel executor | `parj-join` |
//! | SPARQL BGP parsing | `parj-sparql` |
//! | statistics + DP join ordering | `parj-optimizer` |
//!
//! ## Lifecycle
//!
//! 1. build an engine ([`Parj::builder`]) — thread count, probe
//!    strategy, index options;
//! 2. load data ([`Parj::load_ntriples_str`], [`Parj::add_triple`], or a
//!    snapshot);
//! 3. [`Parj::finalize`] — builds partitions, statistics, and runs the
//!    calibration of Algorithm 2 (or adopts the paper's default
//!    windows);
//! 4. query through [`Parj::request`]: decoded rows by default,
//!    [`QueryRequest::ids_only`] for materialized ids,
//!    [`QueryRequest::count_only`] for the paper's "silent mode" —
//!    with per-run deadline / row-budget / cancellation / thread
//!    knobs on the same builder.
//!
//! ```
//! use parj_core::Parj;
//!
//! let mut engine = Parj::builder().threads(2).build();
//! engine.load_ntriples_str(r#"
//!     <http://e/ProfA> <http://e/teaches> <http://e/Math> .
//!     <http://e/ProfA> <http://e/worksFor> <http://e/U1> .
//!     <http://e/ProfB> <http://e/teaches> <http://e/Chem> .
//!     <http://e/ProfB> <http://e/worksFor> <http://e/U2> .
//! "#).unwrap();
//! engine.finalize();
//! let outcome = engine.request(
//!     "SELECT ?x ?y WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y . }"
//! ).run().unwrap();
//! assert_eq!(outcome.count, 2);
//! assert_eq!(outcome.rows.unwrap().len(), 2);
//! ```
//!
//! ## Observability
//!
//! Every engine owns a lock-light [`EngineMetrics`] registry
//! ([`Parj::metrics`]): query outcomes and phase timings, executor
//! internals (search-kind mix, probe volume, shard-load imbalance),
//! load-pipeline throughput, and store/dictionary memory gauges.
//! [`Parj::metrics_snapshot`] yields Prometheus-text or JSON
//! exposition; `request(..).explain(true)` attaches a per-query
//! `EXPLAIN ANALYZE` report to the outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fingerprint;
mod hierarchy;
mod error;
mod loader;
mod mutate;
mod request;
mod result;
mod shared;
mod translate;

pub use engine::{EngineConfig, Parj, ParjBuilder, RunOverrides};
pub use error::ParjError;
pub use fingerprint::{canonicalize_query, query_fingerprint};
pub use hierarchy::{Hierarchy, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDF_TYPE};
pub use mutate::{MutationOutcome, MutationPhases, MutationRequest};
pub use request::{QueryOutcome, QueryRequest};
pub use result::{CacheStatus, PhaseTimings, QueryResult, QueryRunStats};
pub use shared::SharedParj;
pub use translate::{TranslatedQuery, Translation};

// Deep structural auditing (the `parj-audit` substrate).
pub use parj_audit::{
    audit_all, audit_delta, audit_dictionary, audit_plan, audit_snapshot_roundtrip, audit_store,
    AuditReport, Coordinates, Violation,
};

// Observability vocabulary (the `parj-obs` substrate).
pub use parj_obs::{
    CacheKind, EngineMetrics, FamilySnapshot, MetricKind, MetricsSnapshot, QueryOutcomeClass,
    QueryPhase, Sample, SampleValue,
};

// Re-export the workspace vocabulary so downstream users need only this
// crate.
pub use parj_dict::{Dictionary, EncodedTriple, Id, Term};
pub use parj_join::{
    CalibrationConfig, CalibrationResult, CancelToken, ExecOptions, GuardTrip, PhysicalPlan,
    ProbeStrategy, QueryGuard, SearchStats, ThresholdTable, GUARD_BATCH,
};
pub use parj_optimizer::Stats;
pub use parj_rio::{parse_ntriples_str, LoadReport, NTriplesParser, OnParseError};
pub use parj_sparql::{parse_query, ParsedQuery, STerm, TriplePattern};
pub use parj_store::{SortOrder, StoreOptions, TripleStore};
