//! The staged parallel bulk-load pipeline.
//!
//! Wires the three parallel stages together for [`crate::Parj`]'s
//! text-based load APIs:
//!
//! ```text
//!  input text ──► chunk split ──► parse ×N ──► policy drain ──► encode+route ×N
//!                 (statement      (parj-rio     (serial, exact    (StoreBuilder::
//!                  boundaries)     chunks)       LoadReport)       add_triples_parallel)
//! ```
//!
//! Every stage is deterministic in its *output*: chunk boundaries and
//! thread counts only change scheduling, never the dictionary, the
//! store, or the `LoadReport` — the serial path and the parallel path
//! at any thread count produce byte-identical results.
//!
//! For N-Triples the equivalence is by construction: lines parse
//! independently, and the per-line results are re-assembled in
//! document order through the same [`drain_triples`] policy machinery
//! the serial reader path uses, so error positions and lossy skip
//! counts are exact. For Turtle the chunked path only handles
//! documents it can parse strictly; any split or parse failure falls
//! back to the serial parser, which remains the single source of
//! truth for error positions and lossy recovery.

use parj_rio::{drain_triples, LoadReport, OnParseError, ParseError, TermTriple};
use parj_store::StoreBuilder;

use parj_sync::atomic::{AtomicUsize, Ordering};
use parj_sync::{LockLevel, OrderedMutex};

/// Chunks cut per worker thread: enough slack that an uneven chunk
/// (comment-heavy region, long literals) cannot stall the whole load.
const CHUNKS_PER_THREAD: usize = 4;

/// Runs `f(0..n)` on `threads` workers drawing indexes from a shared
/// counter; results come back in index order.
fn par_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, threads: usize, f: F) -> Vec<T> {
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    let slot_ptrs: Vec<OrderedMutex<&mut Option<T>>> = slots
        .iter_mut()
        .map(|s| OrderedMutex::new(LockLevel::Staging, "staging.loader_slot", s))
        .collect();
    parj_sync::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                // ordering: Relaxed — index ticket only; each result is
                // published through its slot Mutex, and completion
                // through the scope join edge (loom_parallel model).
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                **slot_ptrs[i].lock() = Some(out);
            });
        }
    });
    drop(slot_ptrs);
    slots.into_iter().map(|s| s.expect("chunk computed")).collect()
}

/// Splits an already-drained triple list into even chunks for the
/// parallel encode+route stage. Chunk count does not affect the
/// result, only load balance.
fn even_chunks(triples: Vec<TermTriple>, threads: usize) -> Vec<Vec<TermTriple>> {
    if triples.is_empty() {
        return Vec::new();
    }
    let per = triples.len().div_ceil(threads * CHUNKS_PER_THREAD);
    let mut chunks = Vec::new();
    let mut it = triples.into_iter();
    loop {
        let chunk: Vec<TermTriple> = it.by_ref().take(per).collect();
        if chunk.is_empty() {
            return chunks;
        }
        chunks.push(chunk);
    }
}

/// Parses and stages N-Triples text on `threads` workers under
/// `policy`. Statements drained before an abort remain staged, like
/// the serial reader path; the returned report (and any error) is
/// exactly what the serial path would produce.
pub(crate) fn load_ntriples_text(
    staged: &mut StoreBuilder,
    text: &str,
    policy: OnParseError,
    threads: usize,
) -> Result<LoadReport, ParseError> {
    let threads = threads.max(1);
    let chunks = parj_rio::split_ntriples(text, threads * CHUNKS_PER_THREAD);
    let parsed = par_map(chunks.len(), threads, |i| {
        parj_rio::parse_ntriples_chunk(text, &chunks[i])
    });
    // Serial policy drain in document order: loaded/skipped counts and
    // abort decisions are identical to the serial path by construction.
    let mut triples = Vec::new();
    let result = drain_triples(parsed.into_iter().flatten(), policy, |t| triples.push(t));
    staged.add_triples_parallel(even_chunks(triples, threads), threads);
    result
}

/// Parses Turtle text on `threads` workers, returning chunked triples
/// ready for [`StoreBuilder::add_triples_parallel`] plus the load
/// report. Clean documents take the chunked strict path; anything the
/// splitter or a chunk parser rejects is re-parsed serially under
/// `policy`, so errors and lossy recovery match the serial parser
/// exactly. On `Err` nothing should be staged (the serial Turtle path
/// stages nothing on abort).
pub(crate) fn parse_turtle_text(
    text: &str,
    policy: OnParseError,
    threads: usize,
) -> Result<(Vec<Vec<TermTriple>>, LoadReport), ParseError> {
    let threads = threads.max(1);
    if let Some(parts) = try_parallel_turtle(text, threads) {
        let report = LoadReport {
            loaded: parts.iter().map(Vec::len).sum(),
            ..LoadReport::default()
        };
        return Ok((parts, report));
    }
    let (triples, report) = parj_rio::parse_turtle_str_lossy(text, policy)?;
    Ok((even_chunks(triples, threads), report))
}

fn try_parallel_turtle(text: &str, threads: usize) -> Option<Vec<Vec<TermTriple>>> {
    let chunks = parj_rio::split_turtle(text, threads * CHUNKS_PER_THREAD)?;
    let parsed = par_map(chunks.len(), threads, |i| {
        parj_rio::parse_turtle_chunk(text, &chunks[i])
    });
    let mut parts = Vec::with_capacity(parsed.len());
    for r in parsed {
        parts.push(r.ok()?);
    }
    Some(parj_rio::finish_turtle_chunks(parts))
}
