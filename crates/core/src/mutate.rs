//! The transactional mutation API: one builder mirroring
//! [`Parj::request`] for writes.
//!
//! A [`MutationRequest`] batches inserts and deletes and applies them
//! atomically with respect to queries: no query observes a partially
//! applied batch ([`Parj::mutate`] holds `&mut self`;
//! [`SharedParj::mutate`] holds the write lock). The batch lands in the
//! engine's per-predicate **delta overlay** — sorted insert runs plus
//! tombstone delete runs consulted by probes alongside the base CSR
//! replicas — so applying costs `O(batch + resident delta)` in the
//! touched predicates, never a store rebuild. Predicates whose resident
//! delta crosses [`crate::EngineConfig::delta_compaction_threshold`]
//! are compacted inline (a linear two-run merge into a replacement
//! partition), and cached entries referencing a touched predicate are
//! invalidated per predicate — queries over untouched predicates keep
//! serving hits.
//!
//! ```
//! use parj_core::{Parj, Term};
//!
//! let mut engine = Parj::new();
//! engine.load_ntriples_str("<http://e/a> <http://e/p> <http://e/b> .").unwrap();
//! engine.finalize();
//! let outcome = engine
//!     .mutate()
//!     .insert(Term::iri("http://e/b"), Term::iri("http://e/p"), Term::iri("http://e/c"))
//!     .delete(Term::iri("http://e/a"), Term::iri("http://e/p"), Term::iri("http://e/b"))
//!     .run()
//!     .unwrap();
//! assert_eq!((outcome.inserted, outcome.deleted), (1, 1));
//! assert_eq!(outcome.visible_triples, 1);
//! assert_eq!(engine.request("SELECT ?s ?o WHERE { ?s <http://e/p> ?o }").run().unwrap().count, 1);
//! ```

use parj_dict::Term;

use crate::engine::Parj;
use crate::error::ParjError;
use crate::shared::SharedParj;

/// One operation of a mutation batch, in call order (later operations
/// on the same triple win).
#[derive(Debug, Clone)]
pub(crate) enum MutationOp {
    /// Insert a triple (a no-op if it is already visible).
    Insert(Term, Term, Term),
    /// Delete a triple (a no-op if it is not visible; unknown terms
    /// resolve to "not visible" without being interned).
    Delete(Term, Term, Term),
}

/// What a mutation request may borrow while it runs.
enum MutTarget<'e> {
    /// Exclusive engine access.
    Mut(&'e mut Parj),
    /// A [`SharedParj`] handle: applies under its write lock.
    Shared(&'e SharedParj),
}

/// A configured mutation batch, ready to [`run`](MutationRequest::run).
/// Built by [`Parj::mutate`] or [`SharedParj::mutate`].
pub struct MutationRequest<'e> {
    target: MutTarget<'e>,
    ops: Vec<MutationOp>,
}

impl<'e> MutationRequest<'e> {
    fn new(target: MutTarget<'e>) -> Self {
        MutationRequest {
            target,
            ops: Vec::new(),
        }
    }

    /// Adds one triple insertion to the batch. Inserting a triple that
    /// is already visible is a no-op (set semantics) and does not count
    /// toward [`MutationOutcome::inserted`].
    pub fn insert(mut self, s: Term, p: Term, o: Term) -> Self {
        self.ops.push(MutationOp::Insert(s, p, o));
        self
    }

    /// Adds one triple deletion to the batch. Deleting a triple that is
    /// not visible is a no-op; terms the engine has never seen are not
    /// interned by a delete.
    pub fn delete(mut self, s: Term, p: Term, o: Term) -> Self {
        self.ops.push(MutationOp::Delete(s, p, o));
        self
    }

    /// Adds many insertions (chainable convenience over
    /// [`MutationRequest::insert`]).
    pub fn insert_all(mut self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> Self {
        self.ops
            .extend(triples.into_iter().map(|(s, p, o)| MutationOp::Insert(s, p, o)));
        self
    }

    /// Adds many deletions (chainable convenience over
    /// [`MutationRequest::delete`]).
    pub fn delete_all(mut self, triples: impl IntoIterator<Item = (Term, Term, Term)>) -> Self {
        self.ops
            .extend(triples.into_iter().map(|(s, p, o)| MutationOp::Delete(s, p, o)));
        self
    }

    /// Operations queued so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operation has been queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the batch. Later operations on the same triple win
    /// (insert-then-delete deletes; delete-then-insert inserts); the
    /// batch is visible to the next query as a whole or, on error, not
    /// at all.
    pub fn run(self) -> Result<MutationOutcome, ParjError> {
        match self.target {
            MutTarget::Mut(engine) => engine.apply_mutation(&self.ops),
            MutTarget::Shared(shared) => shared.with_write(|engine| engine.apply_mutation(&self.ops)),
        }
    }
}

impl std::fmt::Debug for MutationRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inserts = self
            .ops
            .iter()
            .filter(|op| matches!(op, MutationOp::Insert(..)))
            .count();
        f.debug_struct("MutationRequest")
            .field("inserts", &inserts)
            .field("deletes", &(self.ops.len() - inserts))
            .finish()
    }
}

/// Per-phase wall timings of one mutation batch, microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationPhases {
    /// Term → id encoding through the delta dictionary.
    pub encode_micros: u64,
    /// Per-predicate sorted run merges.
    pub apply_micros: u64,
    /// Inline compactions of threshold-crossed predicates.
    pub compact_micros: u64,
    /// Cache invalidation (per-predicate epoch bumps, or the full fold
    /// on reasoning engines).
    pub invalidate_micros: u64,
}

impl MutationPhases {
    /// Sum of every phase.
    pub fn total(&self) -> u64 {
        self.encode_micros + self.apply_micros + self.compact_micros + self.invalidate_micros
    }
}

/// The result of one [`MutationRequest::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MutationOutcome {
    /// Insertions that changed visibility (already-visible triples are
    /// no-ops).
    pub inserted: u64,
    /// Deletions that changed visibility (absent triples are no-ops).
    pub deleted: u64,
    /// Distinct predicates the batch actually changed.
    pub predicates_touched: usize,
    /// Predicates compacted inline by this batch.
    pub compactions: u64,
    /// Per-predicate cache epoch bumps performed (0 when the engine has
    /// no cache entries to protect or the batch folded into a rebuild,
    /// which invalidates by generation instead).
    pub cache_invalidations: u64,
    /// Uncompacted add/delete pairs resident in the delta after the
    /// batch.
    pub delta_resident_pairs: usize,
    /// Delta overlay heap bytes after the batch.
    pub delta_bytes: usize,
    /// Triples visible to queries after the batch.
    pub visible_triples: usize,
    /// True when the batch folded into a full store rebuild (reasoning
    /// engines, which must re-extract the RDFS hierarchy).
    pub folded: bool,
    /// Per-phase wall timings.
    pub phases: MutationPhases,
}

impl Parj {
    /// Starts a mutation batch with exclusive engine access — the write
    /// counterpart of [`Parj::request`]. Staged (never-finalized) data
    /// is finalized first when the batch runs.
    pub fn mutate(&mut self) -> MutationRequest<'_> {
        MutationRequest::new(MutTarget::Mut(self))
    }
}

impl SharedParj {
    /// Starts a mutation batch that applies under this handle's write
    /// lock: queries drain first, the batch applies atomically, and
    /// readers resume against the updated delta — no store rebuild, so
    /// the write lock is held for `O(batch + resident delta)` only.
    pub fn mutate(&self) -> MutationRequest<'_> {
        MutationRequest::new(MutTarget::Shared(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;

    const DATA: &str = "\
<http://e/a> <http://e/p> <http://e/b> .\n\
<http://e/b> <http://e/p> <http://e/c> .\n\
<http://e/a> <http://e/q> <http://e/c> .\n";

    fn engine() -> Parj {
        let mut e = Parj::builder().threads(2).build();
        e.load_ntriples_str(DATA).unwrap();
        e.finalize();
        e
    }

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://e/{s}"))
    }

    fn count(e: &mut Parj, q: &str) -> u64 {
        e.request(q).count_only().run().unwrap().count
    }

    #[test]
    fn insert_and_delete_change_visibility() {
        let mut e = engine();
        let out = e
            .mutate()
            .insert(iri("c"), iri("p"), iri("d"))
            .delete(iri("a"), iri("p"), iri("b"))
            .run()
            .unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(out.deleted, 1);
        assert_eq!(out.predicates_touched, 1);
        assert_eq!(out.visible_triples, 3);
        assert!(!out.folded);
        assert_eq!(count(&mut e, "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }"), 2);
        assert_eq!(e.num_triples(), 3);
    }

    #[test]
    fn duplicate_insert_and_absent_delete_are_noops() {
        let mut e = engine();
        let out = e
            .mutate()
            .insert(iri("a"), iri("p"), iri("b")) // already stored
            .delete(iri("zzz"), iri("p"), iri("zzz")) // never stored
            .delete(iri("a"), iri("q"), iri("b")) // wrong predicate
            .run()
            .unwrap();
        assert_eq!(out.inserted, 0);
        assert_eq!(out.deleted, 0);
        assert_eq!(out.predicates_touched, 0);
        assert_eq!(out.cache_invalidations, 0);
        assert_eq!(e.num_triples(), 3);
    }

    #[test]
    fn later_ops_on_the_same_triple_win() {
        let mut e = engine();
        // insert-then-delete: net nothing.
        let out = e
            .mutate()
            .insert(iri("x"), iri("p"), iri("y"))
            .delete(iri("x"), iri("p"), iri("y"))
            .run()
            .unwrap();
        assert_eq!((out.inserted, out.deleted), (0, 0));
        assert_eq!(e.num_triples(), 3);
        // delete-then-insert of a stored triple: still stored.
        let out = e
            .mutate()
            .delete(iri("a"), iri("p"), iri("b"))
            .insert(iri("a"), iri("p"), iri("b"))
            .run()
            .unwrap();
        assert_eq!((out.inserted, out.deleted), (0, 0));
        assert_eq!(count(&mut e, "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }"), 2);
    }

    #[test]
    fn new_terms_and_predicates_are_queryable() {
        let mut e = engine();
        let out = e
            .mutate()
            .insert(iri("fresh"), iri("brandnew"), iri("alsofresh"))
            .run()
            .unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(
            count(&mut e, "SELECT ?o WHERE { <http://e/fresh> <http://e/brandnew> ?o }"),
            1
        );
        // The new terms decode in materialized rows.
        let rows = e
            .request("SELECT ?s ?o WHERE { ?s <http://e/brandnew> ?o }")
            .run()
            .unwrap()
            .rows
            .unwrap();
        assert_eq!(rows, vec![vec![iri("fresh"), iri("alsofresh")]]);
    }

    #[test]
    fn delete_then_reinsert_across_batches() {
        let mut e = engine();
        e.mutate().delete(iri("a"), iri("p"), iri("b")).run().unwrap();
        assert_eq!(count(&mut e, "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }"), 1);
        let out = e.mutate().insert(iri("a"), iri("p"), iri("b")).run().unwrap();
        assert_eq!(out.inserted, 1, "un-tombstoning counts as an insert");
        assert_eq!(count(&mut e, "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }"), 2);
        assert_eq!(e.num_triples(), 3);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut e = engine();
        let out = e.mutate().run().unwrap();
        assert_eq!(out.inserted + out.deleted, 0);
        assert_eq!(out.predicates_touched, 0);
        assert_eq!(out.visible_triples, 3);
    }

    #[test]
    fn mutate_on_staged_engine_finalizes_first() {
        let mut e = Parj::builder().threads(1).build();
        e.load_ntriples_str(DATA).unwrap();
        // Never finalized: mutate() folds the staged triples first.
        let out = e.mutate().insert(iri("c"), iri("p"), iri("d")).run().unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(out.visible_triples, 4);
        assert!(e.is_finalized());
    }

    #[test]
    fn batch_compaction_threshold_triggers_inline_compaction() {
        let mut e = Parj::builder().threads(1).delta_compaction_threshold(8).build();
        e.load_ntriples_str(DATA).unwrap();
        e.finalize();
        let batch: Vec<(Term, Term, Term)> =
            (0..20).map(|i| (iri(&format!("s{i}")), iri("p"), iri("o"))).collect();
        let out = e.mutate().insert_all(batch).run().unwrap();
        assert_eq!(out.inserted, 20);
        assert_eq!(out.compactions, 1, "20 resident pairs >= threshold 8");
        assert_eq!(out.delta_resident_pairs, 0, "compaction emptied the runs");
        assert!(out.delta_bytes > 0, "compacted partition stays in the overlay");
        assert_eq!(count(&mut e, "SELECT ?s WHERE { ?s <http://e/p> <http://e/o> }"), 20);
        // A second batch probes against the compacted partition.
        let out = e.mutate().delete(iri("s3"), iri("p"), iri("o")).run().unwrap();
        assert_eq!(out.deleted, 1);
        assert_eq!(count(&mut e, "SELECT ?s WHERE { ?s <http://e/p> <http://e/o> }"), 19);
    }

    #[test]
    fn zero_threshold_disables_compaction() {
        let mut e = Parj::builder().threads(1).delta_compaction_threshold(0).build();
        e.load_ntriples_str(DATA).unwrap();
        e.finalize();
        let batch: Vec<(Term, Term, Term)> =
            (0..50).map(|i| (iri(&format!("s{i}")), iri("p"), iri("o"))).collect();
        let out = e.mutate().insert_all(batch).run().unwrap();
        assert_eq!(out.compactions, 0);
        assert_eq!(out.delta_resident_pairs, 50);
        assert_eq!(count(&mut e, "SELECT ?s WHERE { ?s <http://e/p> <http://e/o> }"), 50);
    }

    #[test]
    fn outcome_reports_phase_timings() {
        let mut e = engine();
        let out = e.mutate().insert(iri("x"), iri("p"), iri("y")).run().unwrap();
        assert_eq!(
            out.phases.total(),
            out.phases.encode_micros
                + out.phases.apply_micros
                + out.phases.compact_micros
                + out.phases.invalidate_micros
        );
    }

    #[test]
    fn mutations_then_unrelated_load_rebuilds_consistently() {
        let mut e = engine();
        e.mutate()
            .insert(iri("c"), iri("p"), iri("d"))
            .delete(iri("a"), iri("q"), iri("c"))
            .run()
            .unwrap();
        // A bulk load folds the delta into staging; the rebuilt store
        // must carry exactly the merged view plus the new data.
        e.load_ntriples_str("<http://e/z> <http://e/p> <http://e/z2> .\n").unwrap();
        assert_eq!(e.num_triples(), 4);
        assert_eq!(count(&mut e, "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }"), 4);
        assert_eq!(count(&mut e, "SELECT ?s WHERE { ?s <http://e/q> ?o }"), 0);
        let report = e.audit();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn snapshot_after_mutations_captures_merged_view() {
        let mut e = engine();
        e.mutate()
            .insert(iri("c"), iri("p"), iri("d"))
            .delete(iri("a"), iri("p"), iri("b"))
            .run()
            .unwrap();
        let dir = std::env::temp_dir().join(format!("parj-mutate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mutated.parj");
        e.save_snapshot(&path).unwrap();
        let mut back = Parj::load_snapshot(&path, crate::EngineConfig::default()).unwrap();
        assert_eq!(back.num_triples(), 3);
        assert_eq!(count(&mut back, "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }"), 2);
        assert_eq!(
            count(&mut back, "SELECT ?o WHERE { <http://e/c> <http://e/p> ?o }"),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reasoning_engine_folds_batches() {
        let mut e = Parj::builder().threads(1).rdfs_reasoning(true).build();
        e.load_ntriples_str(
            "<http://e/Sub> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://e/Sup> .\n",
        )
        .unwrap();
        e.finalize();
        let out = e
            .mutate()
            .insert(
                iri("x"),
                Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                iri("Sub"),
            )
            .run()
            .unwrap();
        assert!(out.folded, "reasoning engines rebuild to refresh the hierarchy");
        assert_eq!(out.delta_resident_pairs, 0);
        // The entailment sees the new instance through the hierarchy.
        assert_eq!(
            count(
                &mut e,
                "SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://e/Sup> }"
            ),
            1
        );
    }

    #[test]
    fn shared_mutate_applies_under_the_write_lock() {
        let shared = SharedParj::new(engine());
        let q = "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }";
        assert_eq!(shared.request(q).count_only().run().unwrap().count, 2);
        let out = shared
            .mutate()
            .insert(iri("c"), iri("p"), iri("d"))
            .run()
            .unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(shared.request(q).count_only().run().unwrap().count, 3);
        assert_eq!(shared.try_num_triples().unwrap(), 4);
    }

    #[test]
    fn delta_metrics_feed_the_registry() {
        let mut e = Parj::builder().threads(1).delta_compaction_threshold(4).build();
        e.load_ntriples_str(DATA).unwrap();
        e.finalize();
        let batch: Vec<(Term, Term, Term)> =
            (0..6).map(|i| (iri(&format!("s{i}")), iri("p"), iri("o"))).collect();
        e.mutate().insert_all(batch).run().unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.value("parj_delta_compactions_total", &[]), Some(1));
        assert_eq!(snap.value("parj_delta_resident_triples", &[]), Some(0));
        assert!(snap.value("parj_delta_resident_bytes", &[]).unwrap() > 0);
        // A below-threshold batch leaves resident pairs behind.
        e.mutate().insert(iri("q1"), iri("p"), iri("q2")).run().unwrap();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.value("parj_delta_resident_triples", &[]), Some(1));
        // A full rebuild zeroes the residency gauges.
        e.load_ntriples_str("<http://e/w> <http://e/p> <http://e/w2> .\n").unwrap();
        e.finalize();
        let snap = e.metrics_snapshot();
        assert_eq!(snap.value("parj_delta_resident_triples", &[]), Some(0));
        assert_eq!(snap.value("parj_delta_resident_bytes", &[]), Some(0));
    }
}
