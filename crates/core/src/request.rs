//! The unified query API: one builder replacing the nine `query*`
//! method variants that accreted on [`Parj`] (and four on
//! [`SharedParj`]).
//!
//! Every axis the old methods hard-coded is a builder knob here:
//!
//! * **result shape** — decoded rows (default), dictionary ids
//!   ([`QueryRequest::ids_only`]), or a silent-mode count
//!   ([`QueryRequest::count_only`], the paper's primary measurement);
//! * **lifecycle limits** — [`QueryRequest::timeout`],
//!   [`QueryRequest::max_rows`], [`QueryRequest::cancel`];
//! * **execution overrides** — [`QueryRequest::threads`],
//!   [`QueryRequest::strategy`], or a whole [`RunOverrides`] via
//!   [`QueryRequest::overrides`];
//! * **introspection** — [`QueryRequest::explain`] attaches an
//!   `EXPLAIN ANALYZE`-style annotated plan from the *actual* parallel
//!   run to the outcome.
//!
//! ```
//! use parj_core::Parj;
//! use std::time::Duration;
//!
//! let mut engine = Parj::new();
//! engine.load_ntriples_str(
//!     "<http://e/a> <http://e/p> <http://e/b> .",
//! ).unwrap();
//! let outcome = engine
//!     .request("SELECT ?x ?y WHERE { ?x <http://e/p> ?y }")
//!     .timeout(Duration::from_secs(5))
//!     .max_rows(10_000)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.count, 1);
//! ```

use std::time::Duration;

use parj_dict::{Id, Term};
use parj_join::{CancelToken, ProbeStrategy};

use crate::engine::{Parj, RunOverrides};
use crate::error::ParjError;
use crate::result::{QueryResult, QueryRunStats};
use crate::shared::SharedParj;

/// Result shape a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunMode {
    /// Silent mode: count only (no materialization unless forced by
    /// `DISTINCT`/entailment dedup).
    Count,
    /// Materialized dictionary ids, no term decode.
    Ids,
    /// Fully decoded term rows.
    Rows,
}

/// Everything the engine needs to run one request (the builder's
/// resolved state, minus the target borrow).
pub(crate) struct RunSpec {
    pub(crate) over: RunOverrides,
    pub(crate) mode: RunMode,
    pub(crate) explain: bool,
    pub(crate) no_cache: bool,
}

/// What a query request may borrow while it runs.
enum Target<'e> {
    /// Exclusive engine access: finalizes lazily before running.
    Mut(&'e mut Parj),
    /// Shared engine access: requires an already-finalized engine.
    Ref(&'e Parj),
    /// A [`SharedParj`] handle: runs under its read lock.
    Shared(&'e SharedParj),
}

/// A configured query, ready to [`run`](QueryRequest::run). Built by
/// [`Parj::request`], [`Parj::request_ref`] or [`SharedParj::request`].
pub struct QueryRequest<'e> {
    target: Target<'e>,
    query: String,
    spec: RunSpec,
}

impl<'e> QueryRequest<'e> {
    fn new(target: Target<'e>, query: &str) -> Self {
        QueryRequest {
            target,
            query: query.to_string(),
            spec: RunSpec {
                over: RunOverrides::default(),
                mode: RunMode::Rows,
                explain: false,
                no_cache: false,
            },
        }
    }

    /// Wall-clock deadline for this run (wins over
    /// [`crate::EngineConfig::timeout`]).
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.spec.over.timeout = Some(limit);
        self
    }

    /// Result-row budget: the join aborts with
    /// [`ParjError::BudgetExceeded`] once it has produced more rows
    /// (counted pre-`LIMIT`, with bounded overshoot).
    pub fn max_rows(mut self, rows: u64) -> Self {
        self.spec.over.max_rows = Some(rows);
        self
    }

    /// Attaches a cancellation token; trip it from any thread to stop
    /// the run.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.spec.over.cancel = Some(token);
        self
    }

    /// Overrides the worker thread count for this run. Zero is
    /// rejected at [`run`](QueryRequest::run) with
    /// [`ParjError::InvalidOptions`].
    pub fn threads(mut self, n: usize) -> Self {
        self.spec.over.threads = Some(n);
        self
    }

    /// Overrides the probe strategy for this run.
    pub fn strategy(mut self, s: ProbeStrategy) -> Self {
        self.spec.over.strategy = Some(s);
        self
    }

    /// Overrides the morsel size (driver keys per work unit) for this
    /// run. Results are byte-identical at any value; zero is rejected
    /// at [`run`](QueryRequest::run) with
    /// [`ParjError::InvalidOptions`].
    pub fn morsel_size(mut self, n: usize) -> Self {
        self.spec.over.morsel_size = Some(n);
        self
    }

    /// Replaces *all* per-run overrides with `over` (any
    /// `timeout`/`max_rows`/`cancel`/`threads`/`strategy` set earlier
    /// on this builder is discarded; knobs chained afterwards apply on
    /// top).
    pub fn overrides(mut self, over: &RunOverrides) -> Self {
        self.spec.over = over.clone();
        self
    }

    /// Request only the result count (the paper's silent mode).
    pub fn count_only(mut self) -> Self {
        self.spec.mode = RunMode::Count;
        self
    }

    /// Request materialized dictionary ids without term decoding.
    pub fn ids_only(mut self) -> Self {
        self.spec.mode = RunMode::Ids;
        self
    }

    /// Skip the plan/result cache for this run: nothing is served from
    /// it and nothing is inserted. A no-op when the engine has caching
    /// disabled ([`crate::EngineConfig::cache`]); with caching enabled
    /// the run reports [`crate::CacheStatus::Bypassed`].
    pub fn bypass_cache(mut self) -> Self {
        self.spec.no_cache = true;
        self
    }

    /// Attach an `EXPLAIN ANALYZE`-style annotated plan — per pipeline
    /// stage, the tuples that entered it and the search decisions it
    /// made, aggregated over all workers of the real parallel run — to
    /// [`QueryOutcome::profile`].
    pub fn explain(mut self, on: bool) -> Self {
        self.spec.explain = on;
        self
    }

    /// Executes the request.
    pub fn run(self) -> Result<QueryOutcome, ParjError> {
        match self.target {
            Target::Mut(engine) => {
                engine.finalize();
                engine.run_request(&self.query, &self.spec)
            }
            Target::Ref(engine) => engine.run_request(&self.query, &self.spec),
            Target::Shared(shared) => {
                shared.with_read(|engine| engine.run_request(&self.query, &self.spec))
            }
        }
    }
}

impl std::fmt::Debug for QueryRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRequest")
            .field("query", &self.query)
            .field("mode", &self.spec.mode)
            .field("explain", &self.spec.explain)
            .field("overrides", &self.spec.over)
            .finish()
    }
}

/// The result of one [`QueryRequest::run`]. Which of `rows`/`ids` is
/// populated depends on the requested shape; `count` and `stats` are
/// always set.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Projected variable names, in output order.
    pub vars: Vec<String>,
    /// Result rows (post `DISTINCT`/`OFFSET`/`LIMIT`).
    pub count: u64,
    /// Decoded term rows — `Some` for the default (rows) shape.
    pub rows: Option<Vec<Vec<Term>>>,
    /// Dictionary-id rows — `Some` under [`QueryRequest::ids_only`].
    pub ids: Option<Vec<Vec<Id>>>,
    /// Timing, counters and the executed plan text.
    pub stats: QueryRunStats,
    /// Annotated-plan report — `Some` under
    /// [`QueryRequest::explain`]`(true)`.
    pub profile: Option<String>,
}

impl QueryOutcome {
    /// Converts to the legacy [`QueryResult`] shape (empty rows unless
    /// the request asked for decoded rows).
    pub fn into_result(self) -> QueryResult {
        QueryResult {
            vars: self.vars,
            rows: self.rows.unwrap_or_default(),
            stats: self.stats,
        }
    }

    /// Converts to the legacy `(count, stats)` pair.
    pub fn into_count(self) -> (u64, QueryRunStats) {
        (self.count, self.stats)
    }

    /// Converts to the legacy `(id rows, stats)` pair (empty unless
    /// the request asked for ids).
    pub fn into_ids(self) -> (Vec<Vec<Id>>, QueryRunStats) {
        (self.ids.unwrap_or_default(), self.stats)
    }

    /// The full run report: the annotated plan (when requested) plus
    /// the phase/search summary from [`QueryRunStats::report`].
    pub fn report(&self) -> String {
        match &self.profile {
            Some(p) => format!("{p}{}", self.stats.report()),
            None => self.stats.report(),
        }
    }
}

impl Parj {
    /// Starts a query request with exclusive engine access; staged data
    /// is finalized when the request runs.
    ///
    /// This is the single entry point replacing `query`, `query_with`,
    /// `query_count`, `query_count_with`, `query_ids` and
    /// `query_ids_with`.
    pub fn request<'e>(&'e mut self, query: &str) -> QueryRequest<'e> {
        QueryRequest::new(Target::Mut(self), query)
    }

    /// Starts a query request on a shared engine reference. The engine
    /// must already be finalized or the run fails with
    /// [`ParjError::NotFinalized`] (see [`SharedParj`] for lock-managed
    /// concurrent use).
    pub fn request_ref<'e>(&'e self, query: &str) -> QueryRequest<'e> {
        QueryRequest::new(Target::Ref(self), query)
    }
}

impl SharedParj {
    /// Starts a query request that runs under this handle's read lock —
    /// any number of callers run concurrently.
    pub fn request<'e>(&'e self, query: &str) -> QueryRequest<'e> {
        QueryRequest::new(Target::Shared(self), query)
    }
}
