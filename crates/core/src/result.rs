//! Query result and run-statistics types.

use parj_dict::Term;
use parj_join::SearchStats;

/// Per-phase breakdown of the prepare pipeline (the component the
/// paper notes "cannot be avoided in multi-threaded execution").
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// SPARQL lex + parse wall time, microseconds.
    pub parse_micros: u64,
    /// Translation (dictionary lookups, hierarchy expansion) wall
    /// time, microseconds.
    pub translate_micros: u64,
    /// Fingerprint canonicalization and cache probe wall time,
    /// microseconds (zero when caching is off).
    pub cache_lookup_micros: u64,
    /// Join-order optimization wall time, microseconds.
    pub optimize_micros: u64,
}

impl PhaseTimings {
    /// Sum of all prepare phases, microseconds.
    pub fn total(&self) -> u64 {
        self.parse_micros + self.translate_micros + self.cache_lookup_micros + self.optimize_micros
    }
}

/// How the plan/result cache participated in one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CacheStatus {
    /// Caching disabled on the engine.
    #[default]
    Off,
    /// Caching enabled but this request skipped it (explicit bypass,
    /// or guarded/EXPLAIN runs, which are never cached).
    Bypassed,
    /// Probed both tiers; neither held the query.
    Miss,
    /// The optimized plan was served from cache; execution ran.
    PlanHit,
    /// The finished result was served from cache; nothing executed.
    ResultHit,
}

impl CacheStatus {
    /// The label rendered in run reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Off => "off",
            CacheStatus::Bypassed => "bypassed",
            CacheStatus::Miss => "miss",
            CacheStatus::PlanHit => "plan-hit",
            CacheStatus::ResultHit => "result-hit",
        }
    }
}

/// Timing and counter record for one query run.
///
/// `prepare_micros` covers parsing, translation and optimization — the
/// component the paper notes "cannot be avoided in multi-threaded
/// execution" and which dominates very simple queries (§5.2.3, query
/// S1). `exec_micros` is pure join time, the quantity the paper's
/// tables report in silent mode.
#[derive(Debug, Clone, Default)]
pub struct QueryRunStats {
    /// Parse + translate + optimize wall time, microseconds
    /// (equals `phases.total()`).
    pub prepare_micros: u64,
    /// Per-phase breakdown of `prepare_micros`.
    pub phases: PhaseTimings,
    /// Join execution wall time, microseconds.
    pub exec_micros: u64,
    /// Result decode / aggregation wall time, microseconds (zero in
    /// silent mode).
    pub decode_micros: u64,
    /// Merged search counters from all workers.
    pub search: SearchStats,
    /// Result rows produced (pre-LIMIT count in silent mode).
    pub rows: u64,
    /// `explain` text of the executed plan(s).
    pub plan: String,
    /// How the plan/result cache participated in this run.
    pub cache: CacheStatus,
}

impl QueryRunStats {
    /// Total wall time in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.prepare_micros + self.exec_micros + self.decode_micros
    }

    /// Renders a compact `EXPLAIN ANALYZE`-style run summary: phase
    /// timings, result rows, and the search-kind mix.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "phases: parse {}µs | translate {}µs | cache {}µs | optimize {}µs | execute {}µs | decode {}µs  (total {}µs)",
            self.phases.parse_micros,
            self.phases.translate_micros,
            self.phases.cache_lookup_micros,
            self.phases.optimize_micros,
            self.exec_micros,
            self.decode_micros,
            self.total_micros(),
        )
        .expect("write");
        writeln!(out, "rows: {}", self.rows).expect("write");
        if self.cache != CacheStatus::Off {
            writeln!(out, "cache: {}", self.cache.as_str()).expect("write");
        }
        writeln!(
            out,
            "searches: {} sequential / {} binary / {} index ({} group checks, {} words touched)",
            self.search.sequential_searches,
            self.search.binary_searches,
            self.search.index_lookups,
            self.search.group_probes,
            self.search.words_touched(),
        )
        .expect("write");
        out
    }
}

/// A fully-materialized query result (the paper's "full result handling"
/// mode: rows decoded through the dictionary).
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Projected variable names, in output order.
    pub vars: Vec<String>,
    /// Result rows of decoded terms (row-major, `vars.len()` per row).
    pub rows: Vec<Vec<Term>>,
    /// Run statistics.
    pub stats: QueryRunStats,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a compact table (for examples and debugging).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{}", self.vars.join("\t")).expect("write");
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|t| t.to_string()).collect();
            writeln!(out, "{}", cells.join("\t")).expect("write");
        }
        out
    }
}
