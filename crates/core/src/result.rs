//! Query result and run-statistics types.

use parj_dict::Term;
use parj_join::SearchStats;

/// Timing and counter record for one query run.
///
/// `prepare_micros` covers parsing, translation and optimization — the
/// component the paper notes "cannot be avoided in multi-threaded
/// execution" and which dominates very simple queries (§5.2.3, query
/// S1). `exec_micros` is pure join time, the quantity the paper's
/// tables report in silent mode.
#[derive(Debug, Clone, Default)]
pub struct QueryRunStats {
    /// Parse + translate + optimize wall time, microseconds.
    pub prepare_micros: u64,
    /// Join execution wall time, microseconds.
    pub exec_micros: u64,
    /// Result decode / aggregation wall time, microseconds (zero in
    /// silent mode).
    pub decode_micros: u64,
    /// Merged search counters from all workers.
    pub search: SearchStats,
    /// Result rows produced (pre-LIMIT count in silent mode).
    pub rows: u64,
    /// `explain` text of the executed plan(s).
    pub plan: String,
}

impl QueryRunStats {
    /// Total wall time in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.prepare_micros + self.exec_micros + self.decode_micros
    }
}

/// A fully-materialized query result (the paper's "full result handling"
/// mode: rows decoded through the dictionary).
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Projected variable names, in output order.
    pub vars: Vec<String>,
    /// Result rows of decoded terms (row-major, `vars.len()` per row).
    pub rows: Vec<Vec<Term>>,
    /// Run statistics.
    pub stats: QueryRunStats,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a compact table (for examples and debugging).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{}", self.vars.join("\t")).expect("write");
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|t| t.to_string()).collect();
            writeln!(out, "{}", cells.join("\t")).expect("write");
        }
        out
    }
}
