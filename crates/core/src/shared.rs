//! A thread-safe engine handle for serving workloads.
//!
//! [`Parj`]'s query methods take `&mut self` because they finalize
//! lazily (and rebuild after updates). A server embedding the engine
//! wants the opposite shape: many reader threads issuing queries
//! concurrently, occasional writers loading data. [`SharedParj`] wraps
//! a finalized engine in a `parking_lot::RwLock` with query paths that
//! take `&self` under a read lock — multiple queries proceed truly in
//! parallel (the store itself is immutable and PARJ's workers need no
//! synchronization; the lock only fences out rebuilds).

use parking_lot::RwLock;

use parj_dict::Term;

use crate::engine::{Parj, RunOverrides};
use crate::error::ParjError;
use crate::result::{QueryResult, QueryRunStats};

/// Thread-safe, shareable engine handle. Cheap to share by reference
/// (`&SharedParj` is `Send + Sync`); clone an `Arc<SharedParj>` to share
/// across ownership boundaries.
pub struct SharedParj {
    inner: RwLock<Parj>,
}

impl SharedParj {
    /// Wraps an engine, finalizing it first so reads never need the
    /// write lock.
    pub fn new(mut engine: Parj) -> Self {
        engine.finalize();
        SharedParj {
            inner: RwLock::new(engine),
        }
    }

    /// Full result handling under a read lock: any number of callers
    /// run concurrently.
    pub fn query(&self, query: &str) -> Result<QueryResult, ParjError> {
        self.inner.read().query_ref(query, &RunOverrides::default())
    }

    /// Silent-mode count under a read lock.
    pub fn query_count(&self, query: &str) -> Result<(u64, QueryRunStats), ParjError> {
        self.inner
            .read()
            .query_count_ref(query, &RunOverrides::default())
    }

    /// Full result handling with overrides, under a read lock. Pass
    /// overrides from [`Parj::query_handle`] to make the run
    /// cancellable from another thread (e.g. a server's connection
    /// handler): the read lock is held for the duration, but the
    /// cancel token stops the workers without needing the lock.
    pub fn query_with(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<QueryResult, ParjError> {
        self.inner.read().query_ref(query, over)
    }

    /// Silent-mode count with overrides, under a read lock.
    pub fn query_count_with(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<(u64, QueryRunStats), ParjError> {
        self.inner.read().query_count_ref(query, over)
    }

    /// Applies updates (triple additions) under the write lock; the
    /// store rebuilds once on the next query.
    pub fn update<R>(&self, f: impl FnOnce(&mut Parj) -> R) -> R {
        let mut guard = self.inner.write();
        let r = f(&mut guard);
        guard.finalize();
        r
    }

    /// Adds a triple (convenience for [`SharedParj::update`]).
    pub fn add_triple(&self, s: &Term, p: &Term, o: &Term) {
        self.update(|e| e.add_triple(s, p, o));
    }

    /// Number of stored triples.
    pub fn num_triples(&self) -> usize {
        self.inner.write().num_triples()
    }

    /// Unwraps the inner engine.
    pub fn into_inner(self) -> Parj {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn engine() -> Parj {
        let mut e = Parj::builder().threads(1).build();
        e.load_ntriples_str(
            "<http://e/a> <http://e/p> <http://e/b> .\n\
             <http://e/b> <http://e/p> <http://e/c> .\n",
        )
        .unwrap();
        e
    }

    #[test]
    fn concurrent_queries() {
        let shared = Arc::new(SharedParj::new(engine()));
        let q = "SELECT ?x ?z WHERE { ?x <http://e/p> ?y . ?y <http://e/p> ?z }";
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&shared);
                let q = q.to_string();
                std::thread::spawn(move || s.query_count(&q).unwrap().0)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
    }

    #[test]
    fn interleaved_updates_and_queries() {
        let shared = SharedParj::new(engine());
        let q = "SELECT ?x WHERE { ?x <http://e/p> ?y }";
        assert_eq!(shared.query_count(q).unwrap().0, 2);
        shared.add_triple(
            &Term::iri("http://e/c"),
            &Term::iri("http://e/p"),
            &Term::iri("http://e/a"),
        );
        assert_eq!(shared.query_count(q).unwrap().0, 3);
        assert_eq!(shared.num_triples(), 3);
        let inner = shared.into_inner();
        assert!(inner.is_finalized());
    }
}
