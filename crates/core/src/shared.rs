//! A thread-safe engine handle for serving workloads.
//!
//! [`Parj::request`] takes `&mut self` because engines finalize lazily
//! (and rebuild after updates). A server embedding the engine wants the
//! opposite shape: many reader threads issuing queries concurrently,
//! occasional writers loading data. [`SharedParj`] wraps a finalized
//! engine in a `parj_sync::RwLock` with a [`SharedParj::request`]
//! path that runs under a read lock — multiple queries proceed truly in
//! parallel (the store itself is immutable and PARJ's workers need no
//! synchronization; the lock only fences out rebuilds).
//!
//! Concurrent requests all submit to the engine's one persistent
//! [`parj_join::WorkerPool`] rather than spawning per-query threads:
//! each query's calling thread drives its own job while idle pool
//! workers pull morsels as helpers, so a serving process churns no
//! threads under load (see `EngineConfig::use_pool`).

use parj_sync::{LockLevel, OrderedRwLock};

use parj_dict::Term;
use parj_obs::MetricsSnapshot;

use crate::engine::{Parj, RunOverrides};
use crate::error::ParjError;
use crate::request::QueryOutcome;
use crate::result::{QueryResult, QueryRunStats};

/// Thread-safe, shareable engine handle. Cheap to share by reference
/// (`&SharedParj` is `Send + Sync`); clone an `Arc<SharedParj>` to share
/// across ownership boundaries.
pub struct SharedParj {
    inner: OrderedRwLock<Parj>,
}

impl SharedParj {
    /// Wraps an engine, finalizing it first so reads never need the
    /// write lock.
    pub fn new(mut engine: Parj) -> Self {
        engine.finalize();
        SharedParj {
            // Engine level: held for a whole query (read) or mutation
            // batch (write); every pool/cache/staging lock sits below.
            inner: OrderedRwLock::new(LockLevel::Engine, "engine.shared", engine),
        }
    }

    /// Runs `f` against the engine under the read lock (the request
    /// API's shared execution path).
    pub(crate) fn with_read<R>(&self, f: impl FnOnce(&Parj) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` against the engine under the write lock (the mutation
    /// API's shared execution path). Unlike [`SharedParj::update`] this
    /// does not wrap `f` in a finalize-on-drop guard: mutation batches
    /// never un-finalize the engine, so there is nothing to repair.
    pub(crate) fn with_write<R>(&self, f: impl FnOnce(&mut Parj) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Full result handling under a read lock: any number of callers
    /// run concurrently.
    #[deprecated(note = "use `shared.request(query).run()`")]
    pub fn query(&self, query: &str) -> Result<QueryResult, ParjError> {
        self.request(query).run().map(QueryOutcome::into_result)
    }

    /// Silent-mode count under a read lock.
    #[deprecated(note = "use `shared.request(query).count_only().run()`")]
    pub fn query_count(&self, query: &str) -> Result<(u64, QueryRunStats), ParjError> {
        self.request(query).count_only().run().map(QueryOutcome::into_count)
    }

    /// Full result handling with overrides, under a read lock. Pass
    /// overrides from [`Parj::query_handle`] to make the run
    /// cancellable from another thread (e.g. a server's connection
    /// handler): the read lock is held for the duration, but the
    /// cancel token stops the workers without needing the lock.
    #[deprecated(note = "use `shared.request(query).overrides(over).run()`")]
    pub fn query_with(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<QueryResult, ParjError> {
        self.request(query).overrides(over).run().map(QueryOutcome::into_result)
    }

    /// Silent-mode count with overrides, under a read lock.
    #[deprecated(note = "use `shared.request(query).overrides(over).count_only().run()`")]
    pub fn query_count_with(
        &self,
        query: &str,
        over: &RunOverrides,
    ) -> Result<(u64, QueryRunStats), ParjError> {
        self.request(query).overrides(over).count_only().run().map(QueryOutcome::into_count)
    }

    /// Applies updates (triple additions) under the write lock; the
    /// store rebuilds before the lock is released so readers never
    /// observe an un-finalized engine — even when `f` panics
    /// mid-update (the rebuild runs during unwinding; without it, one
    /// panicking closure would poison every later query with
    /// [`ParjError::NotFinalized`]).
    ///
    /// Deprecated: for triple insertions and deletions use
    /// [`SharedParj::mutate`], which lands the batch in the delta
    /// overlay instead of forcing an `O(dataset)` rebuild under the
    /// write lock. `update` remains for closures that genuinely need
    /// `&mut Parj` (bulk loads, snapshot restores).
    #[deprecated(note = "use `shared.mutate().insert(..).run()` for triple changes")]
    pub fn update<R>(&self, f: impl FnOnce(&mut Parj) -> R) -> R {
        let mut guard = self.inner.write();
        struct FinalizeOnDrop<'a>(&'a mut Parj);
        impl Drop for FinalizeOnDrop<'_> {
            fn drop(&mut self) {
                self.0.finalize();
            }
        }
        let fin = FinalizeOnDrop(&mut guard);
        f(&mut *fin.0)
        // `fin` drops here (normal return *and* unwind), finalizing
        // before the write lock is released.
    }

    /// A point-in-time snapshot of the wrapped engine's metrics
    /// registry (read lock; concurrent with queries).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.read().metrics_snapshot()
    }

    /// Adds a triple through the delta overlay.
    #[deprecated(note = "use `shared.mutate().insert(s, p, o).run()`")]
    pub fn add_triple(&self, s: &Term, p: &Term, o: &Term) {
        let _ = self
            .mutate()
            .insert(s.clone(), p.clone(), o.clone())
            .run();
    }

    /// Number of stored triples.
    pub fn num_triples(&self) -> usize {
        self.inner.write().num_triples()
    }

    /// Whether the wrapped engine is finalized and ready to answer
    /// `&self` queries. Read lock only — safe to call from a readiness
    /// probe while queries are in flight (unlike
    /// [`SharedParj::num_triples`], which takes the write lock because
    /// counting may force a finalize).
    pub fn is_finalized(&self) -> bool {
        self.inner.read().is_finalized()
    }

    /// Number of stored triples if the engine is finalized, without
    /// taking the write lock; `Err(ParjError::NotFinalized)` otherwise.
    /// The non-blocking shape a readiness probe needs: it must observe,
    /// not force, readiness.
    pub fn try_num_triples(&self) -> Result<usize, ParjError> {
        let guard = self.inner.read();
        if guard.is_finalized() {
            Ok(guard.num_triples_ref())
        } else {
            Err(ParjError::NotFinalized)
        }
    }

    /// Runs the deep structural audit ([`Parj::audit`]). Takes the
    /// write lock: audits are rare and the engine may need to finalize
    /// first.
    pub fn audit(&self) -> parj_audit::AuditReport {
        self.inner.write().audit()
    }

    /// Unwraps the inner engine.
    pub fn into_inner(self) -> Parj {
        self.inner.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn engine() -> Parj {
        let mut e = Parj::builder().threads(1).build();
        e.load_ntriples_str(
            "<http://e/a> <http://e/p> <http://e/b> .\n\
             <http://e/b> <http://e/p> <http://e/c> .\n",
        )
        .unwrap();
        e
    }

    fn count(shared: &SharedParj, q: &str) -> u64 {
        shared.request(q).count_only().run().unwrap().count
    }

    #[test]
    fn concurrent_queries() {
        let shared = Arc::new(SharedParj::new(engine()));
        let q = "SELECT ?x ?z WHERE { ?x <http://e/p> ?y . ?y <http://e/p> ?z }";
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&shared);
                let q = q.to_string();
                std::thread::spawn(move || s.request(&q).count_only().run().unwrap().count)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
    }

    #[test]
    #[allow(deprecated)] // pins the legacy shim's observable behaviour
    fn interleaved_updates_and_queries() {
        let shared = SharedParj::new(engine());
        let q = "SELECT ?x WHERE { ?x <http://e/p> ?y }";
        assert_eq!(count(&shared, q), 2);
        shared.add_triple(
            &Term::iri("http://e/c"),
            &Term::iri("http://e/p"),
            &Term::iri("http://e/a"),
        );
        assert_eq!(count(&shared, q), 3);
        assert_eq!(shared.num_triples(), 3);
        let inner = shared.into_inner();
        assert!(inner.is_finalized());
    }

    #[test]
    #[allow(deprecated)] // pins the legacy shim's panic-safety contract
    fn update_panic_leaves_engine_finalized() {
        let shared = SharedParj::new(engine());
        let q = "SELECT ?x WHERE { ?x <http://e/p> ?y }";
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.update(|e| {
                e.add_triple(
                    &Term::iri("http://e/c"),
                    &Term::iri("http://e/p"),
                    &Term::iri("http://e/a"),
                );
                panic!("boom mid-update");
            })
        }));
        assert!(panicked.is_err());
        // The half-applied update was finalized during unwinding:
        // queries keep working (and see the added triple) instead of
        // failing with NotFinalized forever after.
        assert_eq!(count(&shared, q), 3);
        assert_eq!(shared.num_triples(), 3);
    }
}
