//! Translation of a parsed SPARQL query into dictionary-encoded pattern
//! sets ready for the optimizer.
//!
//! Variables get dense [`VarId`]s in first-occurrence order. Constants
//! are resolved against the dictionary **without inserting** — a
//! constant the data never mentions makes the whole query empty, which
//! is reported as [`Translation::Empty`] so the engine can skip
//! execution entirely.
//!
//! A triple pattern with a **variable predicate** expands into a union
//! over all predicates (§3 of the paper: "a union over all properties
//! will be needed, but this is rarely encountered in real world
//! queries"): one pattern set per assignment of the predicate variables,
//! capped to keep pathological queries from exploding.

use parj_dict::{DictView, Id};
use parj_join::{Atom, VarId};
use parj_optimizer::Pattern;
use parj_sparql::{ParsedQuery, STerm};

use crate::error::ParjError;

/// Upper bound on predicate-variable expansion (`predicates ^
/// pred_vars` pattern sets).
pub const MAX_PRED_COMBINATIONS: usize = 4096;

/// A query translated to the encoded domain.
#[derive(Debug, Clone)]
pub struct TranslatedQuery {
    /// Number of (subject/object) variable slots.
    pub num_vars: usize,
    /// Variable names indexed by [`VarId`].
    pub var_names: Vec<String>,
    /// Projected variable slots, in output order.
    pub projection: Vec<VarId>,
    /// Projected variable names (parallel to `projection`).
    pub proj_names: Vec<String>,
    /// `DISTINCT`?
    pub distinct: bool,
    /// `ORDER BY` keys as `(slot, descending)` in priority order.
    pub order_by: Vec<(VarId, bool)>,
    /// `OFFSET`, if any.
    pub offset: Option<usize>,
    /// `LIMIT`, if any.
    pub limit: Option<usize>,
    /// One encoded pattern set per UNION branch × predicate-variable
    /// assignment × hierarchy alternative (exactly one for plain
    /// queries). Results are the union over all sets.
    pub pattern_sets: Vec<Vec<Pattern>>,
    /// The UNION branch each pattern set came from (parallel to
    /// `pattern_sets`). Hierarchy dedup is scoped per branch: duplicate
    /// solutions *across* branches are legitimate SPARQL multiset
    /// results, duplicates *within* a branch are alternative
    /// derivations.
    pub set_branch: Vec<usize>,
    /// True when RDFS hierarchy expansion fired: the pattern sets are
    /// alternative *derivations* of the same solutions, so the engine
    /// must deduplicate full solution mappings (the semantics
    /// forward-chaining materialization would give).
    pub dedup_full: bool,
    /// True when plans must materialize *all* variables (hierarchy
    /// dedup, or ordering by a non-projected variable); the projection
    /// is applied after dedup/sort.
    pub full_rows: bool,
}

/// Outcome of translation.
#[derive(Debug, Clone)]
pub enum Translation {
    /// A constant in the query is absent from the data; the result is
    /// empty with these projected variable names.
    Empty {
        /// Projected variable names.
        proj_names: Vec<String>,
        /// `LIMIT`, preserved for consistency.
        limit: Option<usize>,
    },
    /// A runnable translation.
    Run(TranslatedQuery),
}

/// Translates `query` against `dict` — a [`DictView`] over the base
/// dictionary plus any pending mutation-delta terms, so constants
/// introduced by incremental writes resolve exactly like loaded ones —
/// optionally expanding RDFS hierarchies (see [`crate::Hierarchy`]).
pub fn translate(
    query: &ParsedQuery,
    dict: DictView<'_>,
    hierarchy: Option<&crate::hierarchy::Hierarchy>,
) -> Result<Translation, ParjError> {
    let proj_names = query.effective_projection();

    // Assign VarIds to subject/object variables; collect predicate vars.
    let mut var_names: Vec<String> = Vec::new();
    let mut pred_vars: Vec<String> = Vec::new();
    for pat in &query.patterns {
        for slot in [&pat.s, &pat.o] {
            if let STerm::Var(v) = slot {
                if !var_names.iter().any(|n| n == v) {
                    var_names.push(v.clone());
                }
            }
        }
        if let STerm::Var(v) = &pat.p {
            if !pred_vars.iter().any(|n| n == v) {
                pred_vars.push(v.clone());
            }
        }
    }
    for pv in &pred_vars {
        if var_names.iter().any(|n| n == pv) {
            return Err(ParjError::Unsupported(format!(
                "variable ?{pv} is used in both predicate and subject/object \
                 position; predicate and resource namespaces are disjoint"
            )));
        }
        if proj_names.iter().any(|n| n == pv) {
            return Err(ParjError::Unsupported(format!(
                "projecting predicate variable ?{pv} is not supported"
            )));
        }
    }
    if var_names.len() > VarId::MAX as usize {
        return Err(ParjError::Unsupported("too many variables".into()));
    }
    let var_id = |name: &str| -> VarId {
        var_names.iter().position(|n| n == name).expect("collected") as VarId
    };

    // Projection: every projected name must be a subject/object variable.
    let mut projection = Vec::with_capacity(proj_names.len());
    for name in &proj_names {
        match var_names.iter().position(|n| n == name) {
            Some(i) => projection.push(i as VarId),
            None => {
                return Err(ParjError::Unsupported(format!(
                    "projected variable ?{name} does not occur in the pattern"
                )))
            }
        }
    }

    // Resolve terms. A missing constant empties the query.
    let resolve_atom = |slot: &STerm| -> Result<Option<Atom>, ParjError> {
        Ok(match slot {
            STerm::Var(v) => Some(Atom::Var(var_id(v))),
            STerm::Term(t) => dict.resource_id(t).map(Atom::Const),
        })
    };

    /// Predicate slot: concrete id, or index into `pred_vars`.
    enum PredSlot {
        Const(Id),
        Var(usize),
    }

    // Build pattern sets per UNION branch. Within a branch, per-pattern
    // alternatives multiply: without a hierarchy every pattern has
    // exactly one; RDFS reasoning (§6 of the paper) adds subproperty
    // alternatives for constant predicates and subclass alternatives
    // for `rdf:type` objects — the pipelined "unioning of tables".
    // A constant absent from the data empties only its own branch.
    let num_preds = dict.num_predicates();
    let mut sets: Vec<Vec<Pattern>> = Vec::new();
    let mut set_branch: Vec<usize> = Vec::new();
    let mut expanded = false;
    let mut total_sets: usize = 0;

    'branches: for (branch_idx, branch) in query.branches.iter().enumerate() {
        // Every projected variable must be bound in every branch (a
        // left-deep pipeline has no unbound-solution representation).
        for (&slot, name) in projection.iter().zip(&proj_names) {
            let bound = branch.iter().any(|pat| {
                [&pat.s, &pat.o]
                    .into_iter()
                    .any(|t| t.as_var() == Some(name.as_str()))
            });
            let _ = slot;
            if !bound {
                return Err(ParjError::Unsupported(format!(
                    "?{name} is projected but not bound in every UNION branch"
                )));
            }
        }

        // Predicate variables used in this branch (assignments for
        // variables the branch never mentions must not duplicate it).
        let branch_pred_vars: Vec<usize> = pred_vars
            .iter()
            .enumerate()
            .filter(|(_, name)| {
                branch
                    .iter()
                    .any(|pat| pat.p.as_var() == Some(name.as_str()))
            })
            .map(|(i, _)| i)
            .collect();
        if !branch_pred_vars.is_empty() && num_preds == 0 {
            continue 'branches;
        }

        let mut alternatives: Vec<Vec<(Atom, PredSlot, Atom)>> =
            Vec::with_capacity(branch.len());
        for pat in branch {
            let Some(s) = resolve_atom(&pat.s)? else {
                continue 'branches;
            };
            let Some(o) = resolve_atom(&pat.o)? else {
                continue 'branches;
            };
            // Resolve the predicate slot. With reasoning on, constant
            // predicates expand to the predicate ids of their declared
            // subproperties — keyed by the property's *resource* id, so
            // a super-property that never occurs directly still answers
            // via its descendants' partitions.
            enum PredResolution {
                Var(usize),
                Preds(Vec<Id>),
            }
            let resolution = match &pat.p {
                STerm::Var(v) => {
                    PredResolution::Var(pred_vars.iter().position(|n| n == v).expect("seen"))
                }
                STerm::Term(t) => {
                    let direct = dict.predicate_id(t);
                    let expanded_preds = hierarchy
                        .and_then(|h| dict.resource_id(t).and_then(|res| h.subproperties(res)))
                        .map(|subs| subs.to_vec());
                    match (expanded_preds, direct) {
                        (Some(preds), _) => PredResolution::Preds(preds),
                        (None, Some(id)) => PredResolution::Preds(vec![id]),
                        (None, None) => continue 'branches,
                    }
                }
            };
            let mut alts: Vec<(Atom, PredSlot, Atom)> = Vec::new();
            match resolution {
                PredResolution::Var(i) => alts.push((s, PredSlot::Var(i), o)),
                PredResolution::Preds(preds) => {
                    for pred in preds {
                        // Subclass expansion applies to `rdf:type` objects.
                        let objects: Vec<Atom> = match (hierarchy, o) {
                            (Some(h), Atom::Const(class)) if h.rdf_type() == Some(pred) => {
                                match h.subclasses(class) {
                                    Some(subs) => {
                                        subs.iter().map(|&c| Atom::Const(c)).collect()
                                    }
                                    None => vec![o],
                                }
                            }
                            _ => vec![o],
                        };
                        for obj in objects {
                            alts.push((s, PredSlot::Const(pred), obj));
                        }
                    }
                }
            }
            if alts.len() > 1 {
                expanded = true;
            }
            alternatives.push(alts);
        }

        // Branch expansion total, capped globally.
        let mut branch_total: usize = 1;
        for alts in &alternatives {
            branch_total = branch_total.saturating_mul(alts.len());
        }
        for _ in 0..branch_pred_vars.len() {
            branch_total = branch_total.saturating_mul(num_preds);
        }
        total_sets = total_sets.saturating_add(branch_total);
        if total_sets > MAX_PRED_COMBINATIONS {
            return Err(ParjError::Unsupported(format!(
                "query expansion would need more than {MAX_PRED_COMBINATIONS} \
                 pattern sets ({} predicate variables over {num_preds} \
                 predicates, hierarchy alternatives {:?})",
                pred_vars.len(),
                alternatives.iter().map(Vec::len).collect::<Vec<_>>()
            )));
        }

        // Odometer over (pattern-alternative indexes, assignments of the
        // branch's predicate variables).
        let mut alt_idx = vec![0usize; alternatives.len()];
        let mut assignment = vec![0usize; pred_vars.len()];
        'odometer: loop {
            sets.push(
                alternatives
                    .iter()
                    .zip(&alt_idx)
                    .map(|(alts, &i)| {
                        let (s, ref p, o) = alts[i];
                        Pattern {
                            s,
                            p: match p {
                                PredSlot::Const(id) => *id,
                                PredSlot::Var(v) => assignment[*v] as Id,
                            },
                            o,
                        }
                    })
                    .collect(),
            );
            set_branch.push(branch_idx);
            // Pattern alternatives first, then this branch's pred vars.
            for (i, alts) in alternatives.iter().enumerate() {
                alt_idx[i] += 1;
                if alt_idx[i] < alts.len() {
                    continue 'odometer;
                }
                alt_idx[i] = 0;
            }
            for &v in &branch_pred_vars {
                assignment[v] += 1;
                if assignment[v] < num_preds {
                    continue 'odometer;
                }
                assignment[v] = 0;
            }
            break;
        }
    }

    if sets.is_empty() {
        return Ok(Translation::Empty {
            proj_names,
            limit: query.limit,
        });
    }

    // ORDER BY keys: must be subject/object variables the query binds.
    let mut order_by: Vec<(VarId, bool)> = Vec::with_capacity(query.order_by.len());
    for (name, desc) in &query.order_by {
        match var_names.iter().position(|n| n == name) {
            Some(i) => order_by.push((i as VarId, *desc)),
            None => {
                return Err(ParjError::Unsupported(format!(
                    "ORDER BY variable ?{name} is not bound by the pattern                      (predicate variables cannot be ordering keys)"
                )))
            }
        }
    }
    let full_rows =
        expanded || order_by.iter().any(|(v, _)| !projection.contains(v));

    Ok(Translation::Run(TranslatedQuery {
        num_vars: var_names.len(),
        var_names,
        projection,
        proj_names,
        distinct: query.distinct,
        order_by,
        offset: query.offset,
        limit: query.limit,
        pattern_sets: sets,
        set_branch,
        dedup_full: expanded,
        full_rows,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_sparql::parse_query;

    use parj_dict::Dictionary;

    fn dict() -> Dictionary {
        let mut d = Dictionary::new();
        for r in ["http://e/a", "http://e/b", "http://e/c"] {
            d.encode_resource(&Term::iri(r));
        }
        for p in ["http://e/p", "http://e/q"] {
            d.encode_predicate(&Term::iri(p));
        }
        d
    }

    fn run(src: &str) -> Translation {
        let d = dict();
        translate(&parse_query(src).unwrap(), DictView::base(&d), None).unwrap()
    }

    #[test]
    fn basic_translation() {
        let t = run("SELECT ?x WHERE { ?x <http://e/p> <http://e/b> . ?x <http://e/q> ?y }");
        let Translation::Run(t) = t else {
            panic!("expected runnable")
        };
        assert_eq!(t.num_vars, 2);
        assert_eq!(t.var_names, vec!["x", "y"]);
        assert_eq!(t.projection, vec![0]);
        assert_eq!(t.pattern_sets.len(), 1);
        let pats = &t.pattern_sets[0];
        assert_eq!(pats[0].p, 0);
        assert_eq!(pats[0].o, Atom::Const(1));
        assert_eq!(pats[1].p, 1);
    }

    #[test]
    fn missing_constant_is_empty() {
        let t = run("SELECT ?x WHERE { ?x <http://e/p> <http://e/nope> }");
        assert!(matches!(t, Translation::Empty { .. }));
        let t = run("SELECT ?x WHERE { ?x <http://e/nopred> ?y }");
        assert!(matches!(t, Translation::Empty { .. }));
    }

    #[test]
    fn predicate_variable_expands() {
        let t = run("SELECT ?x ?y WHERE { ?x ?p ?y }");
        let Translation::Run(t) = t else {
            panic!("expected runnable")
        };
        assert_eq!(t.pattern_sets.len(), 2); // two predicates in the dict
        assert_eq!(t.pattern_sets[0][0].p, 0);
        assert_eq!(t.pattern_sets[1][0].p, 1);
    }

    #[test]
    fn two_pred_vars_cartesian() {
        let t = run("SELECT ?x WHERE { ?x ?p ?y . ?y ?q ?z }");
        let Translation::Run(t) = t else {
            panic!("expected runnable")
        };
        assert_eq!(t.pattern_sets.len(), 4);
        // Same pred var in two patterns must expand consistently.
        let t = run("SELECT ?x WHERE { ?x ?p ?y . ?y ?p ?z }");
        let Translation::Run(t) = t else {
            panic!("expected runnable")
        };
        assert_eq!(t.pattern_sets.len(), 2);
        for set in &t.pattern_sets {
            assert_eq!(set[0].p, set[1].p);
        }
    }

    #[test]
    fn rejects_pred_var_misuse() {
        let q = parse_query("SELECT ?p WHERE { ?x ?p ?y }").unwrap();
        assert!(matches!(
            translate(&q, DictView::base(&dict()), None),
            Err(ParjError::Unsupported(_))
        ));
        let q = parse_query("SELECT ?x WHERE { ?x ?p ?y . ?p <http://e/q> ?z }").unwrap();
        assert!(matches!(
            translate(&q, DictView::base(&dict()), None),
            Err(ParjError::Unsupported(_))
        ));
    }

    #[test]
    fn distinct_and_limit_carried() {
        let t = run("SELECT DISTINCT ?x WHERE { ?x <http://e/p> ?y } LIMIT 5");
        let Translation::Run(t) = t else {
            panic!("expected runnable")
        };
        assert!(t.distinct);
        assert_eq!(t.limit, Some(5));
    }
}
