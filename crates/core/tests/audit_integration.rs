//! Engine-level audit integration: `Parj::audit`, `audit_strict`'s
//! [`ParjError::CorruptStore`] mapping, and `SharedParj::audit`.

#![cfg(not(loom))]

use parj_core::{Parj, ParjError, SharedParj};

fn engine() -> Parj {
    let mut e = Parj::builder().threads(1).build();
    e.load_ntriples_str(
        "<http://e/a> <http://e/p> <http://e/b> .\n\
         <http://e/b> <http://e/q> <http://e/c> .\n\
         <http://e/c> <http://e/p> <http://e/a> .\n",
    )
    .unwrap();
    e
}

#[test]
fn fresh_engine_audits_clean() {
    let mut e = engine();
    let report = e.audit(); // finalizes implicitly
    assert!(report.is_clean(), "{report}");
    assert!(report.checks_run > 0);
    assert!(e.audit_strict().is_ok());
}

#[test]
fn corrupt_store_maps_to_parj_error() {
    let mut e = engine();
    e.finalize();
    let mut bytes = e.store().to_snapshot_bytes();
    let n = bytes.len();
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    let store = parj_core::TripleStore::from_snapshot_bytes(&bytes).expect("loads structurally");
    let mut bad = Parj::from_store(store, Default::default());
    let err = bad.audit_strict().unwrap_err();
    match &err {
        ParjError::CorruptStore { report } => {
            assert!(!report.is_clean());
            assert!(err.to_string().contains("corrupt store"), "{err}");
        }
        other => panic!("expected CorruptStore, got {other:?}"),
    }
}

#[test]
fn shared_engine_audit_coexists_with_queries() {
    let shared = SharedParj::new(engine());
    assert!(shared.audit().is_clean());
    let count = shared
        .request("SELECT ?x WHERE { ?x <http://e/p> ?y }")
        .count_only()
        .run()
        .unwrap()
        .count;
    assert_eq!(count, 2);
    assert!(shared.audit().is_clean());
}
