//! Loom model of the QueryGuard batched-polling protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The model drives the
//! *production* guard (via `parj-sync`, whose loom backend injects
//! scheduling decisions at every atomic op) through the same
//! cancel/budget protocol the executor uses, and checks the two
//! contracts the hot path relies on:
//!
//! * **exactness** — `rows()` after all workers stop equals the sum of
//!   rows the workers actually credited (the Relaxed `fetch_add` never
//!   loses an increment);
//! * **bounded overshoot** — with a budget of `B` and `W` workers
//!   crediting in batches of `batch`, no schedule lets total credited
//!   rows exceed `B + W × batch`.
#![cfg(loom)]

use parj_core::{CancelToken, GuardTrip, QueryGuard};
use parj_sync::thread;
use parj_sync::Arc;

/// A worker crediting `batch` rows per poll until the guard trips or
/// its work runs out; returns the rows it credited.
fn worker(guard: &QueryGuard, batch: u64, max_polls: u32) -> u64 {
    let mut credited = 0;
    for _ in 0..max_polls {
        if guard.poll(batch).is_err() {
            break;
        }
        credited += batch;
    }
    credited
}

#[test]
fn loom_budget_overshoot_is_bounded() {
    loom::model(|| {
        const BUDGET: u64 = 6;
        const BATCH: u64 = 4;
        const WORKERS: u64 = 2;
        let guard = Arc::new(QueryGuard::with_limits(None, Some(BUDGET)));
        let credited: u64 = thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|_| {
                    let g = Arc::clone(&guard);
                    s.spawn(move || worker(&g, BATCH, 16))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // Each worker's final poll credits one batch and then trips
        // (the budget is always exceeded well before max_polls), so
        // the guard saw exactly `credited + WORKERS × BATCH` rows —
        // the scope join edge makes the Relaxed adds visible here, and
        // no schedule may lose an increment.
        assert_eq!(guard.rows(), credited + WORKERS * BATCH);
        // No schedule overshoots the documented bound of
        // `budget + workers × batch` counted rows.
        assert!(
            guard.rows() <= BUDGET + WORKERS * BATCH,
            "overshoot: {} rows > {}",
            guard.rows(),
            BUDGET + WORKERS * BATCH
        );
    });
}

#[test]
fn loom_cancel_stops_every_worker() {
    loom::model(|| {
        let token = CancelToken::new();
        let guard = Arc::new(QueryGuard::new(None, None, token.clone()));
        thread::scope(|s| {
            let g = Arc::clone(&guard);
            // Bounded work, so the model terminates even on schedules
            // where cancel lands after the worker's last poll.
            let w = s.spawn(move || {
                for _ in 0..8 {
                    if let Err(trip) = g.poll(1) {
                        return Some(trip);
                    }
                }
                None
            });
            token.cancel();
            // Whenever the worker observed a trip it must be the
            // cancellation — there is no other limit to race with.
            if let Some(trip) = w.join().unwrap() {
                assert_eq!(trip, GuardTrip::Cancelled);
            }
        });
        // The flag stays visible to late observers on every schedule.
        assert!(token.is_cancelled());
        assert_eq!(guard.check(), Err(GuardTrip::Cancelled));
        token.reset();
        assert!(guard.check().is_ok());
    });
}

#[test]
fn loom_rows_are_exact_under_contention() {
    loom::model(|| {
        let guard = Arc::new(QueryGuard::unlimited());
        thread::scope(|s| {
            for _ in 0..2 {
                let g = Arc::clone(&guard);
                s.spawn(move || {
                    for _ in 0..3 {
                        g.poll(5).unwrap();
                    }
                });
            }
        });
        assert_eq!(guard.rows(), 2 * 3 * 5);
    });
}
