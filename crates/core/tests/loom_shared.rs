//! Loom model of `SharedParj` update-vs-read publication.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. Readers run count
//! queries under the read lock while a writer applies an update (and,
//! in the second model, panics mid-update); on every schedule readers
//! must see a finalized engine — either the pre-update or post-update
//! triple count, never `ParjError::NotFinalized` and never a torn
//! state. The third model checks the same atomicity for the delta
//! write path: a `mutate()` batch publishes all-or-nothing.
#![cfg(loom)]
// The first two models deliberately drive the deprecated shims: their
// publication contract must hold for as long as the shims exist.
#![allow(deprecated)]

use parj_core::{Parj, ParjError, SharedParj, Term};
use parj_sync::thread;
use parj_sync::Arc;

const Q: &str = "SELECT ?x WHERE { ?x <http://e/p> ?y }";

fn engine() -> Parj {
    let mut e = Parj::builder().threads(1).build();
    e.load_ntriples_str(
        "<http://e/a> <http://e/p> <http://e/b> .\n\
         <http://e/b> <http://e/p> <http://e/c> .\n",
    )
    .unwrap();
    e
}

fn count(shared: &SharedParj) -> Result<u64, ParjError> {
    shared.request(Q).count_only().run().map(|o| o.count)
}

#[test]
fn loom_readers_never_see_unfinalized_updates() {
    loom::model(|| {
        let shared = Arc::new(SharedParj::new(engine()));
        thread::scope(|s| {
            let reader = {
                let sh = Arc::clone(&shared);
                s.spawn(move || count(&sh).expect("reader must never fail"))
            };
            shared.add_triple(
                &Term::iri("http://e/c"),
                &Term::iri("http://e/p"),
                &Term::iri("http://e/a"),
            );
            let seen = reader.join().unwrap();
            // The read either preceded or followed the update; both
            // counts are valid, anything else is a torn publication.
            assert!(seen == 2 || seen == 3, "torn read: {seen}");
        });
        assert_eq!(count(&shared).unwrap(), 3);
    });
}

#[test]
fn loom_panicking_update_still_finalizes() {
    loom::model(|| {
        let shared = Arc::new(SharedParj::new(engine()));
        thread::scope(|s| {
            let reader = {
                let sh = Arc::clone(&shared);
                s.spawn(move || count(&sh).expect("reader must never fail"))
            };
            // The drop guard inside `update` must finalize during
            // unwinding, on every interleaving with the reader.
            let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared.update(|e| {
                    e.add_triple(
                        &Term::iri("http://e/c"),
                        &Term::iri("http://e/p"),
                        &Term::iri("http://e/a"),
                    );
                    panic!("boom mid-update");
                })
            }));
            assert!(panicked.is_err());
            let seen = reader.join().unwrap();
            assert!(seen == 2 || seen == 3, "torn read: {seen}");
        });
        // The half-applied update was finalized during unwinding.
        assert_eq!(count(&shared).unwrap(), 3);
    });
}

#[test]
fn loom_mutation_batches_publish_atomically() {
    loom::model(|| {
        let shared = Arc::new(SharedParj::new(engine()));
        thread::scope(|s| {
            let reader = {
                let sh = Arc::clone(&shared);
                s.spawn(move || count(&sh).expect("reader must never fail"))
            };
            // One batch, two ops: a reader must observe both or
            // neither — the intermediate count (2 + insert, no delete)
            // would be a torn publication.
            let out = shared
                .mutate()
                .insert(
                    Term::iri("http://e/c"),
                    Term::iri("http://e/p"),
                    Term::iri("http://e/a"),
                )
                .delete(
                    Term::iri("http://e/a"),
                    Term::iri("http://e/p"),
                    Term::iri("http://e/b"),
                )
                .run()
                .expect("mutation");
            assert_eq!((out.inserted, out.deleted), (1, 1));
            let seen = reader.join().unwrap();
            assert!(seen == 2, "torn read: {seen}");
        });
        assert_eq!(count(&shared).unwrap(), 2);
    });
}
