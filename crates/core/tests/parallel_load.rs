//! Loader determinism: the parallel bulk-load pipeline must produce a
//! store and dictionary **byte-identical** to the serial path at every
//! thread count, for strict and lossy policies, on clean and malformed
//! inputs — including exact `LoadReport` skip counts and error
//! positions.

use proptest::prelude::*;

use parj_core::{LoadReport, OnParseError, Parj, ParjError};

const THREADS: [usize; 4] = [1, 2, 4, 9];

/// Loads `text` under `policy` at the given thread count and returns
/// the load outcome plus the finalized store's snapshot bytes (which
/// embed the dictionary, so one comparison covers both).
fn load_nt(
    text: &str,
    policy: OnParseError,
    threads: usize,
) -> (Result<LoadReport, String>, Vec<u8>) {
    let mut engine = Parj::builder().load_threads(threads).build();
    let outcome = engine
        .load_ntriples_str_with(text, policy)
        .map_err(|e| e.to_string());
    (outcome, engine.store().to_snapshot_bytes())
}

fn load_ttl(
    text: &str,
    policy: OnParseError,
    threads: usize,
) -> (Result<LoadReport, String>, Vec<u8>) {
    let mut engine = Parj::builder().load_threads(threads).build();
    let outcome = engine
        .load_turtle_str_with(text, policy)
        .map_err(|e| e.to_string());
    (outcome, engine.store().to_snapshot_bytes())
}

/// A load outcome: the report (or stringified error) plus the
/// finalized store's snapshot bytes.
type LoadOutcome = (Result<LoadReport, String>, Vec<u8>);

/// Asserts every thread count reproduces the thread-count-1 outcome
/// exactly: same report (loaded, skipped, error positions) or same
/// error, and the same snapshot bytes.
fn assert_thread_invariant(
    text: &str,
    policy: OnParseError,
    load: fn(&str, OnParseError, usize) -> LoadOutcome,
) {
    let (base_outcome, base_bytes) = load(text, policy, 1);
    for threads in THREADS {
        let (outcome, bytes) = load(text, policy, threads);
        assert_eq!(outcome, base_outcome, "outcome diverged at {threads} threads");
        assert_eq!(bytes, base_bytes, "store bytes diverged at {threads} threads");
    }
}

fn lossy() -> OnParseError {
    OnParseError::Skip { max_errors: usize::MAX }
}

/// Builds an N-Triples document from a recipe: `Ok` entries become
/// valid triples over small subject/predicate/object universes (dense
/// enough that cross-chunk duplicate terms are common), `Err` entries
/// become malformed lines of a few distinct shapes.
fn nt_doc(recipe: &[Result<(u8, u8, u8), u8>]) -> String {
    let mut doc = String::new();
    for entry in recipe {
        match entry {
            Ok((s, p, o)) => {
                doc.push_str(&format!(
                    "<http://e/s{}> <http://e/p{}> <http://e/o{}> .\n",
                    s % 23,
                    p % 5,
                    o % 29
                ));
            }
            Err(kind) => doc.push_str(match kind % 4 {
                0 => "<http://e/s1> <http://e/p1> .\n", // missing object
                1 => "this is not a triple\n",
                2 => "<http://e/s1> <http://e/p1> \"unterminated .\n",
                _ => "<http://e/s1> <http://e/p1> <http://e/o1>\n", // missing dot
            }),
        }
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixes of valid and malformed lines load identically at
    /// every thread count, under both policies.
    #[test]
    fn ntriples_load_is_thread_invariant(
        recipe in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
                |(sel, s, p, o)| if sel % 5 == 0 { Err(sel) } else { Ok((s, p, o)) },
            ),
            0..120,
        ),
    ) {
        let doc = nt_doc(&recipe);
        assert_thread_invariant(&doc, OnParseError::Abort, load_nt);
        assert_thread_invariant(&doc, lossy(), load_nt);
    }
}

#[test]
fn clean_ntriples_reports_and_bytes_match() {
    // Enough triples that every thread count actually splits.
    let doc: String = (0..500)
        .map(|i| {
            format!(
                "<http://e/s{}> <http://e/p{}> <http://e/o{}> .\n",
                i % 37,
                i % 7,
                i % 53
            )
        })
        .collect();
    let (outcome, base) = load_nt(&doc, OnParseError::Abort, 1);
    assert_eq!(outcome.unwrap().loaded, 500);
    assert_thread_invariant(&doc, OnParseError::Abort, load_nt);
    assert_thread_invariant(&doc, lossy(), load_nt);
    // And the parallel Turtle path agrees with N-Triples on shared
    // syntax (N-Triples is a Turtle subset).
    let (ttl_outcome, ttl_bytes) = load_ttl(&doc, OnParseError::Abort, 4);
    assert_eq!(ttl_outcome.unwrap().loaded, 500);
    assert_eq!(ttl_bytes, base);
}

#[test]
fn lossy_skip_counts_are_exact_at_any_thread_count() {
    let mut doc = String::new();
    for i in 0..300 {
        if i % 7 == 3 {
            doc.push_str("not a triple at all\n");
        } else {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p> <http://e/o{i}> .\n"));
        }
    }
    let (outcome, _) = load_nt(&doc, lossy(), 1);
    let report = outcome.unwrap();
    assert_eq!(report.skipped, 43); // i in 0..300 with i % 7 == 3
    assert_eq!(report.loaded, 257);
    // Recorded error positions must reference document lines, capped
    // at MAX_RECORDED_ERRORS.
    assert_eq!(report.errors.len(), LoadReport::MAX_RECORDED_ERRORS.min(43));
    assert_eq!(report.errors[0].line, 4);
    assert_eq!(report.errors[1].line, 11);
    assert_thread_invariant(&doc, lossy(), load_nt);
}

#[test]
fn strict_abort_position_is_exact_at_any_thread_count() {
    let mut doc = String::new();
    for i in 0..200 {
        doc.push_str(&format!("<http://e/s{i}> <http://e/p> <http://e/o> .\n"));
    }
    doc.push_str("<http://e/bad> <http://e/p> broken\n");
    for i in 0..50 {
        doc.push_str(&format!("<http://e/t{i}> <http://e/p> <http://e/o> .\n"));
    }
    let (outcome, _) = load_nt(&doc, OnParseError::Abort, 1);
    let msg = outcome.unwrap_err();
    assert!(msg.contains("201"), "abort error should cite line 201: {msg}");
    assert_thread_invariant(&doc, OnParseError::Abort, load_nt);
}

#[test]
fn bounded_skip_budget_is_thread_invariant() {
    // 10 bad lines but a budget of 3: the load aborts on the 4th bad
    // line at every thread count, with identical staged state.
    let mut doc = String::new();
    for i in 0..100 {
        if i % 10 == 5 {
            doc.push_str("garbage\n");
        } else {
            doc.push_str(&format!("<http://e/s{i}> <http://e/p> <http://e/o> .\n"));
        }
    }
    assert_thread_invariant(&doc, OnParseError::Skip { max_errors: 3 }, load_nt);
}

#[test]
fn turtle_load_is_thread_invariant() {
    // Prefixed names, literals with dots, anonymous nodes, and a
    // mid-document prefix redefinition — everything the chunked strict
    // path handles, plus constructs near its boundary rules.
    let doc = r#"
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
ex:a ex:weight "3.25" .
ex:b ex:note "a dot . inside" .
_:x ex:p ex:a .
[ ] ex:p ex:b .
@prefix ex: <http://other.org/> .
ex:a ex:p ex:c .
ex:c ex:height "1.5e3" .
"#;
    assert_thread_invariant(doc, OnParseError::Abort, load_ttl);
    assert_thread_invariant(doc, lossy(), load_ttl);
}

#[test]
fn malformed_turtle_is_thread_invariant() {
    // The splitter hands this to the serial parser (directive the
    // chunked path rejects + a syntax error): strict aborts with the
    // serial error, lossy recovers — identically at every thread count.
    let doc = "@prefix ex: <http://e/> .\nex:a ex:p ex:b .\nex:a ex:p garbage }\nex:b ex:p ex:c .\n";
    assert_thread_invariant(doc, OnParseError::Abort, load_ttl);
    assert_thread_invariant(doc, lossy(), load_ttl);
}

#[test]
fn incremental_loads_compose_across_thread_counts() {
    // A second load over an engine that already holds terms must see
    // the existing dictionary (TermRef::Known path) and still be
    // thread-invariant.
    let first: String = (0..80)
        .map(|i| format!("<http://e/s{}> <http://e/p> <http://e/o{}> .\n", i % 11, i % 13))
        .collect();
    let second: String = (0..80)
        .map(|i| format!("<http://e/s{}> <http://e/q> <http://e/o{}> .\n", i % 17, i % 7))
        .collect();
    let run = |threads: usize| -> Vec<u8> {
        let mut engine = Parj::builder().load_threads(threads).build();
        engine.load_ntriples_str(&first).unwrap();
        engine.load_ntriples_str(&second).unwrap();
        engine.store().to_snapshot_bytes()
    };
    let base = run(1);
    for threads in THREADS {
        assert_eq!(run(threads), base, "incremental load diverged at {threads} threads");
    }
}

#[test]
fn queries_agree_after_parallel_load() {
    // End-to-end sanity: a join over a parallel-loaded store returns
    // the same rows as over a serially-loaded one.
    let doc: String = (0..60)
        .map(|i| {
            format!(
                "<http://e/s{}> <http://e/teaches> <http://e/c{}> .\n<http://e/s{}> <http://e/worksFor> <http://e/u{}> .\n",
                i % 9,
                i % 5,
                i % 9,
                i % 3
            )
        })
        .collect();
    let query = "SELECT ?x ?y WHERE { ?x <http://e/teaches> ?z . ?x <http://e/worksFor> ?y . }";
    let run = |threads: usize| -> Result<Vec<Vec<u32>>, ParjError> {
        let mut engine = Parj::builder().load_threads(threads).build();
        engine.load_ntriples_str(&doc)?;
        engine.finalize();
        let (mut rows, _) = engine.request(query).ids_only().run()?.into_ids();
        rows.sort_unstable();
        Ok(rows)
    };
    let base = run(1).unwrap();
    assert!(!base.is_empty());
    for threads in THREADS {
        assert_eq!(run(threads).unwrap(), base);
    }
}
