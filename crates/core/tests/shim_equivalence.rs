//! Every deprecated `query*` shim must stay byte-for-byte equivalent
//! to the [`parj_core::QueryRequest`] chain its deprecation note points
//! at — same rows, same counts, same search counters, same plan text,
//! and the same error classes on the resilience paths. Only wall-clock
//! fields (the various `*_micros`) are allowed to differ between the
//! two runs.
//!
//! The same contract binds the deprecated *write* shims
//! (`Parj::add_triple`, `SharedParj::add_triple`,
//! `SharedParj::update`): an engine driven through a shim must end up
//! answering every query byte-identically to one driven through the
//! [`parj_core::MutationRequest`] chain the deprecation note names.

#![allow(deprecated)]

use std::time::Duration;

use parj_core::{
    CancelToken, Parj, ParjError, ProbeStrategy, QueryRunStats, RunOverrides, SharedParj, Term,
};

const DATA: &str = "\
<http://e/ProfA> <http://e/teaches>  <http://e/Math> .\n\
<http://e/ProfB> <http://e/teaches>  <http://e/Chem> .\n\
<http://e/ProfC> <http://e/teaches>  <http://e/Lit> .\n\
<http://e/ProfA> <http://e/teaches>  <http://e/Phys> .\n\
<http://e/ProfA> <http://e/worksFor> <http://e/Uni1> .\n\
<http://e/ProfB> <http://e/worksFor> <http://e/Uni2> .\n\
<http://e/ProfC> <http://e/worksFor> <http://e/Uni2> .\n\
<http://e/ProfA> <http://e/name>     \"Alice\"@en .\n";

const JOIN: &str = "SELECT ?prof ?course ?employer WHERE { \
     ?prof <http://e/teaches> ?course . \
     ?prof <http://e/worksFor> ?employer . }";

const SELECTIVE: &str = "SELECT ?prof ?course WHERE { \
     ?prof <http://e/teaches> ?course . \
     ?prof <http://e/worksFor> <http://e/Uni2> . }";

fn engine() -> Parj {
    // Single worker: the search counters and shard mix are then exactly
    // reproducible, so the equivalence checks can be byte-precise.
    let mut e = Parj::builder().threads(1).build();
    e.load_ntriples_str(DATA).expect("load");
    e.finalize();
    e
}

/// Everything in the stats except wall-clock timings must match.
fn assert_stats_eq(shim: &QueryRunStats, req: &QueryRunStats, what: &str) {
    assert_eq!(shim.rows, req.rows, "{what}: rows");
    assert_eq!(shim.search, req.search, "{what}: search counters");
    assert_eq!(shim.plan, req.plan, "{what}: plan text");
}

#[test]
fn query_count_matches_request() {
    let mut e = engine();
    let (count, stats) = e.query_count(JOIN).expect("shim");
    let out = e.request(JOIN).count_only().run().expect("request");
    assert_eq!(count, out.count);
    assert_eq!(count, 4);
    assert_stats_eq(&stats, &out.stats, "query_count");
}

#[test]
fn query_count_with_matches_request() {
    let mut e = engine();
    for strategy in ProbeStrategy::TABLE5 {
        let over = RunOverrides::threads(1).with_strategy(strategy);
        let (count, stats) = e.query_count_with(SELECTIVE, &over).expect("shim");
        let out = e
            .request(SELECTIVE)
            .overrides(&over)
            .count_only()
            .run()
            .expect("request");
        assert_eq!(count, out.count, "{strategy}");
        assert_eq!(count, 2, "{strategy}");
        assert_stats_eq(&stats, &out.stats, "query_count_with");
    }
}

#[test]
fn query_count_ref_matches_request_ref() {
    let mut e = engine();
    e.finalize();
    let over = RunOverrides::threads(1);
    let (count, stats) = e.query_count_ref(JOIN, &over).expect("shim");
    let out = e
        .request_ref(JOIN)
        .overrides(&over)
        .count_only()
        .run()
        .expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "query_count_ref");
}

#[test]
fn query_ids_matches_request() {
    let mut e = engine();
    let (ids, stats) = e.query_ids(JOIN).expect("shim");
    let (req_ids, req_stats) = e
        .request(JOIN)
        .ids_only()
        .run()
        .expect("request")
        .into_ids();
    assert_eq!(ids, req_ids);
    assert_eq!(ids.len(), 4);
    assert_stats_eq(&stats, &req_stats, "query_ids");
}

#[test]
fn query_ids_with_matches_request() {
    let mut e = engine();
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AlwaysBinary);
    let (ids, stats) = e.query_ids_with(SELECTIVE, &over).expect("shim");
    let (req_ids, req_stats) = e
        .request(SELECTIVE)
        .overrides(&over)
        .ids_only()
        .run()
        .expect("request")
        .into_ids();
    assert_eq!(ids, req_ids);
    assert_stats_eq(&stats, &req_stats, "query_ids_with");
}

#[test]
fn query_ids_ref_matches_request_ref() {
    let mut e = engine();
    e.finalize();
    let over = RunOverrides::threads(1);
    let (ids, stats) = e.query_ids_ref(JOIN, &over).expect("shim");
    let (req_ids, req_stats) = e
        .request_ref(JOIN)
        .overrides(&over)
        .ids_only()
        .run()
        .expect("request")
        .into_ids();
    assert_eq!(ids, req_ids);
    assert_stats_eq(&stats, &req_stats, "query_ids_ref");
}

#[test]
fn query_matches_request() {
    let mut e = engine();
    let shim = e.query(JOIN).expect("shim");
    let req = e.request(JOIN).run().expect("request").into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_eq!(shim.rows.len(), 4);
    assert_stats_eq(&shim.stats, &req.stats, "query");
}

#[test]
fn query_with_matches_request() {
    let mut e = engine();
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AlwaysIndex);
    let shim = e.query_with(SELECTIVE, &over).expect("shim");
    let req = e
        .request(SELECTIVE)
        .overrides(&over)
        .run()
        .expect("request")
        .into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "query_with");
}

#[test]
fn query_ref_matches_request_ref() {
    let mut e = engine();
    e.finalize();
    let over = RunOverrides::threads(1);
    let shim = e.query_ref(JOIN, &over).expect("shim");
    let req = e
        .request_ref(JOIN)
        .overrides(&over)
        .run()
        .expect("request")
        .into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "query_ref");
}

#[test]
fn timeout_override_equivalent_on_success_path() {
    let mut e = engine();
    let over = RunOverrides::timeout(Duration::from_secs(300)).with_threads(1);
    let (count, stats) = e.query_count_with(JOIN, &over).expect("shim");
    let out = e
        .request(JOIN)
        .timeout(Duration::from_secs(300))
        .threads(1)
        .count_only()
        .run()
        .expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "generous timeout");
}

#[test]
fn row_budget_trips_identically() {
    let mut e = engine();
    let over = RunOverrides::max_rows(1).with_threads(1);
    let shim = e.query_count_with(JOIN, &over);
    let req = e.request(JOIN).max_rows(1).threads(1).count_only().run();
    match (shim, req) {
        (
            Err(ParjError::BudgetExceeded { rows: a, .. }),
            Err(ParjError::BudgetExceeded { rows: b, .. }),
        ) => assert_eq!(a, b),
        (s, r) => panic!("expected BudgetExceeded from both, got {s:?} / {r:?}"),
    }
}

#[test]
fn pre_cancelled_token_trips_identically() {
    let mut e = engine();
    let token = CancelToken::new();
    token.cancel();
    let over = RunOverrides::threads(1).with_cancel(token.clone());
    let shim = e.query_count_with(JOIN, &over);
    let req = e
        .request(JOIN)
        .cancel(token.clone())
        .threads(1)
        .count_only()
        .run();
    assert!(
        matches!(shim, Err(ParjError::Cancelled { .. })),
        "shim: {shim:?}"
    );
    assert!(
        matches!(req, Err(ParjError::Cancelled { .. })),
        "request: {req:?}"
    );
}

#[test]
fn shared_query_matches_request() {
    let shared = SharedParj::new(engine());
    let shim = shared.query(JOIN).expect("shim");
    let req = shared.request(JOIN).run().expect("request").into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "shared query");
}

#[test]
fn shared_query_count_matches_request() {
    let shared = SharedParj::new(engine());
    let (count, stats) = shared.query_count(JOIN).expect("shim");
    let out = shared.request(JOIN).count_only().run().expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "shared query_count");
}

#[test]
fn shared_query_with_matches_request() {
    let shared = SharedParj::new(engine());
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AlwaysBinary);
    let shim = shared.query_with(SELECTIVE, &over).expect("shim");
    let req = shared
        .request(SELECTIVE)
        .overrides(&over)
        .run()
        .expect("request")
        .into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "shared query_with");
}

/// The two engines must be observably identical: same triple count,
/// same decoded rows for a join crossing the mutated predicates.
fn assert_engines_equivalent(shim: &mut Parj, req: &mut Parj, what: &str) {
    assert_eq!(shim.num_triples(), req.num_triples(), "{what}: num_triples");
    for q in [
        JOIN,
        SELECTIVE,
        "SELECT ?s ?o WHERE { ?s <http://e/teaches> ?o }",
        "SELECT ?s ?o WHERE { ?s <http://e/worksFor> ?o }",
    ] {
        let a = shim.request(q).run().expect("shim engine").into_result();
        let b = req.request(q).run().expect("request engine").into_result();
        assert_eq!(a.vars, b.vars, "{what}: {q}: vars");
        assert_eq!(a.rows, b.rows, "{what}: {q}: rows");
    }
}

#[test]
fn add_triple_shim_matches_mutate() {
    let mut shim = engine();
    let mut req = engine();
    let triples = [
        ("ProfD", "teaches", "Art"),
        ("ProfD", "worksFor", "Uni1"),
        ("ProfA", "teaches", "Math"), // duplicate of stored data
    ];
    for (s, p, o) in triples {
        shim.add_triple(
            &Term::iri(format!("http://e/{s}")),
            &Term::iri(format!("http://e/{p}")),
            &Term::iri(format!("http://e/{o}")),
        );
        req.mutate()
            .insert(
                Term::iri(format!("http://e/{s}")),
                Term::iri(format!("http://e/{p}")),
                Term::iri(format!("http://e/{o}")),
            )
            .run()
            .expect("mutate");
    }
    assert_engines_equivalent(&mut shim, &mut req, "add_triple");
}

#[test]
fn add_triple_shim_matches_mutate_on_staged_engine() {
    // Shim on a never-finalized engine stages the triple; mutate
    // finalizes first and applies through the delta. Either way the
    // first query must see identical data.
    let mut shim = Parj::builder().threads(1).build();
    let mut req = Parj::builder().threads(1).build();
    shim.load_ntriples_str(DATA).expect("load");
    req.load_ntriples_str(DATA).expect("load");
    let t = (
        Term::iri("http://e/ProfD"),
        Term::iri("http://e/teaches"),
        Term::iri("http://e/Art"),
    );
    shim.add_triple(&t.0, &t.1, &t.2);
    req.mutate().insert(t.0, t.1, t.2).run().expect("mutate");
    assert_engines_equivalent(&mut shim, &mut req, "staged add_triple");
}

#[test]
fn shared_add_triple_shim_matches_mutate() {
    let shim = SharedParj::new(engine());
    let req = SharedParj::new(engine());
    let t = (
        Term::iri("http://e/ProfD"),
        Term::iri("http://e/worksFor"),
        Term::iri("http://e/Uni2"),
    );
    shim.add_triple(&t.0, &t.1, &t.2);
    req.mutate().insert(t.0, t.1, t.2).run().expect("mutate");
    let mut shim = shim.into_inner();
    let mut req = req.into_inner();
    assert_engines_equivalent(&mut shim, &mut req, "shared add_triple");
}

#[test]
fn shared_update_shim_matches_mutate() {
    let shim = SharedParj::new(engine());
    let req = SharedParj::new(engine());
    shim.update(|e| {
        e.add_triple(
            &Term::iri("http://e/ProfD"),
            &Term::iri("http://e/teaches"),
            &Term::iri("http://e/Art"),
        );
        e.add_triple(
            &Term::iri("http://e/ProfE"),
            &Term::iri("http://e/teaches"),
            &Term::iri("http://e/Bio"),
        );
    });
    req.mutate()
        .insert(
            Term::iri("http://e/ProfD"),
            Term::iri("http://e/teaches"),
            Term::iri("http://e/Art"),
        )
        .insert(
            Term::iri("http://e/ProfE"),
            Term::iri("http://e/teaches"),
            Term::iri("http://e/Bio"),
        )
        .run()
        .expect("mutate");
    let mut shim = shim.into_inner();
    let mut req = req.into_inner();
    assert_engines_equivalent(&mut shim, &mut req, "shared update");
}

#[test]
fn shared_query_count_with_matches_request() {
    let shared = SharedParj::new(engine());
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AdaptiveIndex);
    let (count, stats) = shared.query_count_with(SELECTIVE, &over).expect("shim");
    let out = shared
        .request(SELECTIVE)
        .overrides(&over)
        .count_only()
        .run()
        .expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "shared query_count_with");
}
