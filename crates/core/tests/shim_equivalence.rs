//! Every deprecated `query*` shim must stay byte-for-byte equivalent
//! to the [`parj_core::QueryRequest`] chain its deprecation note points
//! at — same rows, same counts, same search counters, same plan text,
//! and the same error classes on the resilience paths. Only wall-clock
//! fields (the various `*_micros`) are allowed to differ between the
//! two runs.

#![allow(deprecated)]

use std::time::Duration;

use parj_core::{
    CancelToken, Parj, ParjError, ProbeStrategy, QueryRunStats, RunOverrides, SharedParj,
};

const DATA: &str = "\
<http://e/ProfA> <http://e/teaches>  <http://e/Math> .\n\
<http://e/ProfB> <http://e/teaches>  <http://e/Chem> .\n\
<http://e/ProfC> <http://e/teaches>  <http://e/Lit> .\n\
<http://e/ProfA> <http://e/teaches>  <http://e/Phys> .\n\
<http://e/ProfA> <http://e/worksFor> <http://e/Uni1> .\n\
<http://e/ProfB> <http://e/worksFor> <http://e/Uni2> .\n\
<http://e/ProfC> <http://e/worksFor> <http://e/Uni2> .\n\
<http://e/ProfA> <http://e/name>     \"Alice\"@en .\n";

const JOIN: &str = "SELECT ?prof ?course ?employer WHERE { \
     ?prof <http://e/teaches> ?course . \
     ?prof <http://e/worksFor> ?employer . }";

const SELECTIVE: &str = "SELECT ?prof ?course WHERE { \
     ?prof <http://e/teaches> ?course . \
     ?prof <http://e/worksFor> <http://e/Uni2> . }";

fn engine() -> Parj {
    // Single worker: the search counters and shard mix are then exactly
    // reproducible, so the equivalence checks can be byte-precise.
    let mut e = Parj::builder().threads(1).build();
    e.load_ntriples_str(DATA).expect("load");
    e.finalize();
    e
}

/// Everything in the stats except wall-clock timings must match.
fn assert_stats_eq(shim: &QueryRunStats, req: &QueryRunStats, what: &str) {
    assert_eq!(shim.rows, req.rows, "{what}: rows");
    assert_eq!(shim.search, req.search, "{what}: search counters");
    assert_eq!(shim.plan, req.plan, "{what}: plan text");
}

#[test]
fn query_count_matches_request() {
    let mut e = engine();
    let (count, stats) = e.query_count(JOIN).expect("shim");
    let out = e.request(JOIN).count_only().run().expect("request");
    assert_eq!(count, out.count);
    assert_eq!(count, 4);
    assert_stats_eq(&stats, &out.stats, "query_count");
}

#[test]
fn query_count_with_matches_request() {
    let mut e = engine();
    for strategy in ProbeStrategy::TABLE5 {
        let over = RunOverrides::threads(1).with_strategy(strategy);
        let (count, stats) = e.query_count_with(SELECTIVE, &over).expect("shim");
        let out = e
            .request(SELECTIVE)
            .overrides(&over)
            .count_only()
            .run()
            .expect("request");
        assert_eq!(count, out.count, "{strategy}");
        assert_eq!(count, 2, "{strategy}");
        assert_stats_eq(&stats, &out.stats, "query_count_with");
    }
}

#[test]
fn query_count_ref_matches_request_ref() {
    let mut e = engine();
    e.finalize();
    let over = RunOverrides::threads(1);
    let (count, stats) = e.query_count_ref(JOIN, &over).expect("shim");
    let out = e
        .request_ref(JOIN)
        .overrides(&over)
        .count_only()
        .run()
        .expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "query_count_ref");
}

#[test]
fn query_ids_matches_request() {
    let mut e = engine();
    let (ids, stats) = e.query_ids(JOIN).expect("shim");
    let (req_ids, req_stats) = e
        .request(JOIN)
        .ids_only()
        .run()
        .expect("request")
        .into_ids();
    assert_eq!(ids, req_ids);
    assert_eq!(ids.len(), 4);
    assert_stats_eq(&stats, &req_stats, "query_ids");
}

#[test]
fn query_ids_with_matches_request() {
    let mut e = engine();
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AlwaysBinary);
    let (ids, stats) = e.query_ids_with(SELECTIVE, &over).expect("shim");
    let (req_ids, req_stats) = e
        .request(SELECTIVE)
        .overrides(&over)
        .ids_only()
        .run()
        .expect("request")
        .into_ids();
    assert_eq!(ids, req_ids);
    assert_stats_eq(&stats, &req_stats, "query_ids_with");
}

#[test]
fn query_ids_ref_matches_request_ref() {
    let mut e = engine();
    e.finalize();
    let over = RunOverrides::threads(1);
    let (ids, stats) = e.query_ids_ref(JOIN, &over).expect("shim");
    let (req_ids, req_stats) = e
        .request_ref(JOIN)
        .overrides(&over)
        .ids_only()
        .run()
        .expect("request")
        .into_ids();
    assert_eq!(ids, req_ids);
    assert_stats_eq(&stats, &req_stats, "query_ids_ref");
}

#[test]
fn query_matches_request() {
    let mut e = engine();
    let shim = e.query(JOIN).expect("shim");
    let req = e.request(JOIN).run().expect("request").into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_eq!(shim.rows.len(), 4);
    assert_stats_eq(&shim.stats, &req.stats, "query");
}

#[test]
fn query_with_matches_request() {
    let mut e = engine();
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AlwaysIndex);
    let shim = e.query_with(SELECTIVE, &over).expect("shim");
    let req = e
        .request(SELECTIVE)
        .overrides(&over)
        .run()
        .expect("request")
        .into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "query_with");
}

#[test]
fn query_ref_matches_request_ref() {
    let mut e = engine();
    e.finalize();
    let over = RunOverrides::threads(1);
    let shim = e.query_ref(JOIN, &over).expect("shim");
    let req = e
        .request_ref(JOIN)
        .overrides(&over)
        .run()
        .expect("request")
        .into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "query_ref");
}

#[test]
fn timeout_override_equivalent_on_success_path() {
    let mut e = engine();
    let over = RunOverrides::timeout(Duration::from_secs(300)).with_threads(1);
    let (count, stats) = e.query_count_with(JOIN, &over).expect("shim");
    let out = e
        .request(JOIN)
        .timeout(Duration::from_secs(300))
        .threads(1)
        .count_only()
        .run()
        .expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "generous timeout");
}

#[test]
fn row_budget_trips_identically() {
    let mut e = engine();
    let over = RunOverrides::max_rows(1).with_threads(1);
    let shim = e.query_count_with(JOIN, &over);
    let req = e.request(JOIN).max_rows(1).threads(1).count_only().run();
    match (shim, req) {
        (
            Err(ParjError::BudgetExceeded { rows: a, .. }),
            Err(ParjError::BudgetExceeded { rows: b, .. }),
        ) => assert_eq!(a, b),
        (s, r) => panic!("expected BudgetExceeded from both, got {s:?} / {r:?}"),
    }
}

#[test]
fn pre_cancelled_token_trips_identically() {
    let mut e = engine();
    let token = CancelToken::new();
    token.cancel();
    let over = RunOverrides::threads(1).with_cancel(token.clone());
    let shim = e.query_count_with(JOIN, &over);
    let req = e
        .request(JOIN)
        .cancel(token.clone())
        .threads(1)
        .count_only()
        .run();
    assert!(
        matches!(shim, Err(ParjError::Cancelled { .. })),
        "shim: {shim:?}"
    );
    assert!(
        matches!(req, Err(ParjError::Cancelled { .. })),
        "request: {req:?}"
    );
}

#[test]
fn shared_query_matches_request() {
    let shared = SharedParj::new(engine());
    let shim = shared.query(JOIN).expect("shim");
    let req = shared.request(JOIN).run().expect("request").into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "shared query");
}

#[test]
fn shared_query_count_matches_request() {
    let shared = SharedParj::new(engine());
    let (count, stats) = shared.query_count(JOIN).expect("shim");
    let out = shared.request(JOIN).count_only().run().expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "shared query_count");
}

#[test]
fn shared_query_with_matches_request() {
    let shared = SharedParj::new(engine());
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AlwaysBinary);
    let shim = shared.query_with(SELECTIVE, &over).expect("shim");
    let req = shared
        .request(SELECTIVE)
        .overrides(&over)
        .run()
        .expect("request")
        .into_result();
    assert_eq!(shim.vars, req.vars);
    assert_eq!(shim.rows, req.rows);
    assert_stats_eq(&shim.stats, &req.stats, "shared query_with");
}

#[test]
fn shared_query_count_with_matches_request() {
    let shared = SharedParj::new(engine());
    let over = RunOverrides::threads(1).with_strategy(ProbeStrategy::AdaptiveIndex);
    let (count, stats) = shared.query_count_with(SELECTIVE, &over).expect("shim");
    let out = shared
        .request(SELECTIVE)
        .overrides(&over)
        .count_only()
        .run()
        .expect("request");
    assert_eq!(count, out.count);
    assert_stats_eq(&stats, &out.stats, "shared query_count_with");
}
