//! # parj-datagen — benchmark data and query generators
//!
//! Deterministic, laptop-scale substitutes for the two benchmark suites
//! the PARJ paper evaluates on (§5):
//!
//! * [`lubm`] — a university-domain generator mirroring the **Lehigh
//!   University Benchmark** structure (universities → departments →
//!   faculty/students/courses, 17 predicates like the paper reports for
//!   LUBM 10240) together with analogues of the queries **LUBM1–LUBM7**
//!   (the seven commonly used without reasoning, from the Trinity.RDF
//!   evaluation) and **LUBM8–LUBM10** (the three extra queries from the
//!   dynamic-exchange paper).
//! * [`watdiv`] — an e-commerce/social generator mirroring the
//!   **Waterloo SPARQL Diversity Test Suite** entity mix (users,
//!   products, reviews, retailers…) with the basic workload classes
//!   **L/S/F/C** and the extended **IL-1/2/3** (incremental linear) and
//!   **ML-1/2** (mixed linear) workloads of lengths 5–10.
//!
//! The real generators are Java programs with closed seeds; what the
//! paper's experiments depend on is the *shape* of the data — dense
//! subject ranges per predicate (dictionary order correlates with
//! generation order, which PARJ's sequential-search mode exploits),
//! skewed fan-outs, and the selectivity classes of the query templates.
//! Both generators here are seeded and deterministic: the same config
//! always produces the identical triple set, so experiments are
//! reproducible bit-for-bit.
//!
//! ```
//! use parj_datagen::lubm;
//!
//! let store = lubm::generate_store(&lubm::LubmConfig { universities: 1, seed: 7 });
//! assert!(store.num_triples() > 1_000);
//! assert_eq!(store.num_predicates(), 17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lubm;
pub mod watdiv;

/// A benchmark query: a stable name (e.g. `LUBM2`, `IL-3-7`), the
/// workload group it reports under, and its SPARQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedQuery {
    /// Stable identifier used in tables (e.g. `LUBM2`, `S3`, `ML-1-7`).
    pub name: String,
    /// Reporting group (e.g. `LUBM`, `L`, `S`, `F`, `C`, `IL-1`…).
    pub group: String,
    /// The SPARQL text (absolute IRIs; parses with `parj-sparql`).
    pub sparql: String,
}

impl NamedQuery {
    pub(crate) fn new(
        name: impl Into<String>,
        group: impl Into<String>,
        sparql: impl Into<String>,
    ) -> Self {
        NamedQuery {
            name: name.into(),
            group: group.into(),
            sparql: sparql.into(),
        }
    }
}

/// A minimal deterministic PRNG (splitmix64) used by both generators.
/// `rand`'s `StdRng` is also seeded where distributions are needed; this
/// one is for cheap structural decisions where reproducibility across
/// `rand` versions matters most.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let x = r.range(3, 7);
            assert!((3..=7).contains(&x));
        }
    }
}
