//! LUBM-like university data generator and the LUBM1–LUBM10 query
//! analogues.
//!
//! The real Lehigh University Benchmark generator (UBA) produces, per
//! university, 15–25 departments each populated with faculty, students,
//! courses, research groups and publications, linked by 17 predicates.
//! This generator reproduces that structure at a laptop-friendly density
//! (≈17 k triples per university; tune with
//! [`LubmConfig::universities`]) while preserving the properties PARJ's
//! evaluation depends on:
//!
//! * **generation-order locality** — entities of one department get
//!   consecutive dictionary ids, so predicate key arrays contain long
//!   sorted runs that the adaptive join's sequential mode exploits
//!   (Table 6's "sequential searches heavily outnumber binary
//!   searches");
//! * **fan-out skew** — students take several courses, professors hold
//!   three degrees, departments hold many members;
//! * **closed-world query constants** — `u0`, `u0/d0`, … always exist,
//!   so the query templates below are valid at every scale;
//! * **triangle closures** — graduate students sometimes hold their
//!   undergraduate degree from their own university (LUBM2's triangle)
//!   and often take courses their advisor teaches (LUBM9's triangle).

use parj_dict::Term;
use parj_store::{StoreBuilder, TripleStore};

use crate::{NamedQuery, SplitMix64};

/// Namespace prefix of all generated IRIs.
pub const NS: &str = "http://lubm/";
/// The `rdf:type` IRI used for class membership.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// The 16 domain predicates (plus `rdf:type` = 17, matching the count
/// the paper reports for LUBM).
pub const PREDICATES: [&str; 16] = [
    "worksFor",
    "memberOf",
    "subOrganizationOf",
    "undergraduateDegreeFrom",
    "mastersDegreeFrom",
    "doctoralDegreeFrom",
    "teacherOf",
    "takesCourse",
    "advisor",
    "publicationAuthor",
    "headOf",
    "name",
    "emailAddress",
    "telephone",
    "researchInterest",
    "teachingAssistantOf",
];

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct LubmConfig {
    /// Number of universities (the benchmark's scale knob; the paper
    /// runs 1280–10240, this reproduction defaults to tens).
    pub universities: usize,
    /// PRNG seed; equal configs generate identical triple sets.
    pub seed: u64,
}

impl Default for LubmConfig {
    fn default() -> Self {
        Self {
            universities: 5,
            seed: 0x4c55_424d,
        }
    }
}

fn iri(path: String) -> Term {
    Term::iri(format!("{NS}{path}"))
}

fn pred(name: &str) -> Term {
    Term::iri(format!("{NS}{name}"))
}

fn class(name: &str) -> Term {
    Term::iri(format!("{NS}{name}"))
}

/// Generates all triples, invoking `emit(s, p, o)` for each.
pub fn generate<F: FnMut(Term, Term, Term)>(cfg: &LubmConfig, mut emit: F) {
    let rdf_type = Term::iri(RDF_TYPE);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x4c55_424d); // "LUBM"

    for u in 0..cfg.universities {
        let univ = iri(format!("u{u}"));
        emit(univ.clone(), rdf_type.clone(), class("University"));
        emit(
            univ.clone(),
            pred("name"),
            Term::literal(format!("University {u}")),
        );

        let depts = rng.range(12, 18);
        for d in 0..depts {
            let dept = iri(format!("u{u}/d{d}"));
            emit(dept.clone(), rdf_type.clone(), class("Department"));
            emit(dept.clone(), pred("subOrganizationOf"), univ.clone());
            emit(
                dept.clone(),
                pred("name"),
                Term::literal(format!("Department {d} of University {u}")),
            );

            // Courses first so teachers/students can reference them.
            let n_courses = rng.range(18, 28);
            let n_grad_courses = rng.range(10, 16);
            let course = |i: usize| iri(format!("u{u}/d{d}/c{i}"));
            let grad_course = |i: usize| iri(format!("u{u}/d{d}/gc{i}"));
            for i in 0..n_courses {
                emit(course(i), rdf_type.clone(), class("Course"));
                emit(
                    course(i),
                    pred("name"),
                    Term::literal(format!("Course {i}")),
                );
            }
            for i in 0..n_grad_courses {
                emit(grad_course(i), rdf_type.clone(), class("GraduateCourse"));
                emit(
                    grad_course(i),
                    pred("name"),
                    Term::literal(format!("GraduateCourse {i}")),
                );
            }

            // Faculty: full / associate / assistant professors, lecturers.
            let n_full = rng.range(2, 3);
            let n_assoc = rng.range(3, 4);
            let n_assist = rng.range(3, 4);
            let n_lect = rng.range(2, 3);
            let mut faculty: Vec<Term> = Vec::new();
            // Which courses each faculty member teaches (indexes into the
            // unified course list: 0..n_courses are Course, then grad).
            let total_courses = n_courses + n_grad_courses;
            let course_term = |i: usize| {
                if i < n_courses {
                    course(i)
                } else {
                    grad_course(i - n_courses)
                }
            };
            let mut teacher_courses: Vec<Vec<usize>> = Vec::new();
            let mut next_course = 0usize;

            let kinds: [(&str, usize); 4] = [
                ("FullProfessor", n_full),
                ("AssociateProfessor", n_assoc),
                ("AssistantProfessor", n_assist),
                ("Lecturer", n_lect),
            ];
            for (kind, count) in kinds {
                for i in 0..count {
                    let tag = match kind {
                        "FullProfessor" => "fp",
                        "AssociateProfessor" => "ap",
                        "AssistantProfessor" => "asp",
                        _ => "lect",
                    };
                    let person = iri(format!("u{u}/d{d}/{tag}{i}"));
                    emit(person.clone(), rdf_type.clone(), class(kind));
                    emit(person.clone(), pred("worksFor"), dept.clone());
                    emit(
                        person.clone(),
                        pred("name"),
                        Term::literal(format!("{kind} {i} of u{u}/d{d}")),
                    );
                    emit(
                        person.clone(),
                        pred("emailAddress"),
                        Term::literal(format!("{tag}{i}@u{u}d{d}.edu")),
                    );
                    emit(
                        person.clone(),
                        pred("telephone"),
                        Term::literal(format!("+1-555-{u:03}-{d:02}{i:02}")),
                    );
                    if kind != "Lecturer" {
                        // Professors hold three degrees from random
                        // universities.
                        for degree in ["undergraduateDegreeFrom", "mastersDegreeFrom", "doctoralDegreeFrom"] {
                            let from = iri(format!("u{}", rng.below(cfg.universities)));
                            emit(person.clone(), pred(degree), from);
                        }
                        let n_interests = rng.range(1, 2);
                        for r in 0..n_interests {
                            emit(
                                person.clone(),
                                pred("researchInterest"),
                                Term::literal(format!("Research{}", rng.below(30) + r)),
                            );
                        }
                    }
                    // Teaching load: 1-2 courses each, assigned round-robin
                    // so every faculty member teaches something.
                    let load = rng.range(1, 2);
                    let mut mine = Vec::with_capacity(load);
                    for _ in 0..load {
                        if next_course < total_courses {
                            emit(person.clone(), pred("teacherOf"), course_term(next_course));
                            mine.push(next_course);
                            next_course += 1;
                        }
                    }
                    faculty.push(person);
                    teacher_courses.push(mine);
                }
            }
            // Head of department: the first full professor.
            emit(faculty[0].clone(), pred("headOf"), dept.clone());
            // Orphan courses get the head as teacher.
            while next_course < total_courses {
                emit(faculty[0].clone(), pred("teacherOf"), course_term(next_course));
                teacher_courses[0].push(next_course);
                next_course += 1;
            }

            // Publications: each professor authors a few; some co-authors.
            let n_professors = n_full + n_assoc + n_assist;
            for (fi, person) in faculty.iter().take(n_professors).enumerate() {
                let n_pubs = rng.range(2, 5);
                for j in 0..n_pubs {
                    let publ = iri(format!("u{u}/d{d}/pub{fi}_{j}"));
                    emit(publ.clone(), rdf_type.clone(), class("Publication"));
                    emit(publ.clone(), pred("publicationAuthor"), person.clone());
                    emit(
                        publ.clone(),
                        pred("name"),
                        Term::literal(format!("Publication {fi}.{j}")),
                    );
                    if rng.below(3) == 0 {
                        let co = &faculty[rng.below(faculty.len())];
                        if co != person {
                            emit(publ.clone(), pred("publicationAuthor"), co.clone());
                        }
                    }
                }
            }

            // Research groups.
            let n_groups = rng.range(4, 6);
            for g in 0..n_groups {
                let group = iri(format!("u{u}/d{d}/rg{g}"));
                emit(group.clone(), rdf_type.clone(), class("ResearchGroup"));
                emit(group, pred("subOrganizationOf"), dept.clone());
            }

            // Undergraduate students.
            let n_ugrad = rng.range(50, 70);
            for i in 0..n_ugrad {
                let stud = iri(format!("u{u}/d{d}/us{i}"));
                emit(stud.clone(), rdf_type.clone(), class("UndergraduateStudent"));
                emit(stud.clone(), pred("memberOf"), dept.clone());
                emit(
                    stud.clone(),
                    pred("name"),
                    Term::literal(format!("UndergraduateStudent {i}")),
                );
                emit(
                    stud.clone(),
                    pred("emailAddress"),
                    Term::literal(format!("us{i}@u{u}d{d}.edu")),
                );
                emit(
                    stud.clone(),
                    pred("telephone"),
                    Term::literal(format!("+1-556-{u:03}-{d:02}{i:03}")),
                );
                let n_takes = rng.range(2, 4);
                for _ in 0..n_takes {
                    emit(stud.clone(), pred("takesCourse"), course(rng.below(n_courses)));
                }
                // A fifth of undergraduates have a professor advisor.
                if rng.below(5) == 0 {
                    emit(
                        stud.clone(),
                        pred("advisor"),
                        faculty[rng.below(n_professors)].clone(),
                    );
                }
            }

            // Graduate students.
            let n_grad = rng.range(15, 25);
            for i in 0..n_grad {
                let stud = iri(format!("u{u}/d{d}/gs{i}"));
                emit(stud.clone(), rdf_type.clone(), class("GraduateStudent"));
                emit(stud.clone(), pred("memberOf"), dept.clone());
                emit(
                    stud.clone(),
                    pred("name"),
                    Term::literal(format!("GraduateStudent {i}")),
                );
                emit(
                    stud.clone(),
                    pred("emailAddress"),
                    Term::literal(format!("gs{i}@u{u}d{d}.edu")),
                );
                emit(
                    stud.clone(),
                    pred("telephone"),
                    Term::literal(format!("+1-557-{u:03}-{d:02}{i:03}")),
                );
                // LUBM2's triangle: 20% earned their degree here.
                let degree_univ = if rng.below(5) == 0 {
                    univ.clone()
                } else {
                    iri(format!("u{}", rng.below(cfg.universities)))
                };
                emit(stud.clone(), pred("undergraduateDegreeFrom"), degree_univ);
                // Advisor among the professors.
                let advisor_idx = rng.below(n_professors);
                emit(stud.clone(), pred("advisor"), faculty[advisor_idx].clone());
                // Courses: 2-3, biased toward the advisor's own courses
                // (LUBM9's triangle).
                let n_takes = rng.range(2, 3);
                for _ in 0..n_takes {
                    let adv_courses = &teacher_courses[advisor_idx];
                    let pick = if !adv_courses.is_empty() && rng.below(5) < 2 {
                        adv_courses[rng.below(adv_courses.len())]
                    } else {
                        n_courses + rng.below(n_grad_courses)
                    };
                    emit(stud.clone(), pred("takesCourse"), course_term(pick));
                }
                // A third of graduate students TA a course.
                if rng.below(3) == 0 {
                    emit(
                        stud.clone(),
                        pred("teachingAssistantOf"),
                        course(rng.below(n_courses)),
                    );
                }
            }
        }
    }
}

/// Generates into a fresh [`StoreBuilder`].
pub fn generate_builder(cfg: &LubmConfig) -> StoreBuilder {
    let mut b = StoreBuilder::new();
    generate(cfg, |s, p, o| {
        b.add_term_triple(&s, &p, &o);
    });
    b
}

/// Generates and builds a complete store.
pub fn generate_store(cfg: &LubmConfig) -> TripleStore {
    generate_builder(cfg).build()
}

/// Serializes the generated data as N-Triples.
pub fn write_ntriples<W: std::io::Write>(cfg: &LubmConfig, w: &mut W) -> std::io::Result<()> {
    let mut result = Ok(());
    generate(cfg, |s, p, o| {
        if result.is_ok() {
            result = parj_rio_write(w, &s, &p, &o);
        }
    });
    result
}

fn parj_rio_write<W: std::io::Write>(
    w: &mut W,
    s: &Term,
    p: &Term,
    o: &Term,
) -> std::io::Result<()> {
    writeln!(w, "{s} {p} {o} .")
}

/// The ten benchmark queries: analogues of LUBM1–LUBM7 (the seven used
/// by systems without reasoning, per the Trinity.RDF evaluation) plus
/// LUBM8–LUBM10 (the dynamic-exchange additions). Shapes and selectivity
/// classes mirror the originals:
///
/// | query | profile (paper's Table 2 behaviour) |
/// |---|---|
/// | LUBM1 | complex join, large intermediates, large result |
/// | LUBM2 | triangle with very large result (≈10 M at scale 10240) |
/// | LUBM3 | mid-size chain |
/// | LUBM4 | selective attribute star (few ms) |
/// | LUBM5 | very selective membership (≈1 ms) |
/// | LUBM6 | selective with class check |
/// | LUBM7 | complex teacher/student join |
/// | LUBM8 | large intermediate, few finals (single-university filter) |
/// | LUBM9 | advisor triangle — the heaviest query |
/// | LUBM10 | mixed chain + triangle |
pub fn queries() -> Vec<NamedQuery> {
    let q = |name: &str, body: String| NamedQuery::new(name, "LUBM", body);
    vec![
        q(
            "LUBM1",
            format!(
                "SELECT ?x ?c ?p WHERE {{ ?x <{NS}takesCourse> ?c . ?p <{NS}teacherOf> ?c . ?x <{NS}memberOf> ?d . }}"
            ),
        ),
        q(
            "LUBM2",
            format!(
                "SELECT ?x ?d ?u WHERE {{ ?x <{NS}memberOf> ?d . ?d <{NS}subOrganizationOf> ?u . ?x <{NS}undergraduateDegreeFrom> ?u . }}"
            ),
        ),
        q(
            "LUBM3",
            format!(
                "SELECT ?pub ?a ?d WHERE {{ ?pub <{NS}publicationAuthor> ?a . ?a <{NS}worksFor> ?d . ?d <{NS}subOrganizationOf> ?u . }}"
            ),
        ),
        q(
            "LUBM4",
            format!(
                "SELECT ?x ?n ?e ?t WHERE {{ ?x <{NS}worksFor> <{NS}u0/d0> . ?x <{NS}name> ?n . ?x <{NS}emailAddress> ?e . ?x <{NS}telephone> ?t . }}"
            ),
        ),
        q(
            "LUBM5",
            format!(
                "SELECT ?x WHERE {{ ?x <{NS}memberOf> <{NS}u0/d0> . ?x <{RDF_TYPE}> <{NS}UndergraduateStudent> . }}"
            ),
        ),
        q(
            "LUBM6",
            format!(
                "SELECT ?x ?c WHERE {{ ?x <{NS}teachingAssistantOf> ?c . ?x <{NS}memberOf> <{NS}u0/d0> . }}"
            ),
        ),
        q(
            "LUBM7",
            format!(
                "SELECT ?x ?c ?p WHERE {{ ?p <{NS}teacherOf> ?c . ?x <{NS}takesCourse> ?c . ?x <{RDF_TYPE}> <{NS}UndergraduateStudent> . }}"
            ),
        ),
        q(
            "LUBM8",
            format!(
                "SELECT ?x ?d ?e WHERE {{ ?x <{NS}memberOf> ?d . ?d <{NS}subOrganizationOf> <{NS}u0> . ?x <{NS}emailAddress> ?e . }}"
            ),
        ),
        q(
            "LUBM9",
            format!(
                "SELECT ?x ?p ?c WHERE {{ ?x <{NS}advisor> ?p . ?p <{NS}teacherOf> ?c . ?x <{NS}takesCourse> ?c . }}"
            ),
        ),
        q(
            "LUBM10",
            format!(
                "SELECT ?x ?c ?d ?u WHERE {{ ?x <{NS}takesCourse> ?c . ?x <{NS}memberOf> ?d . ?d <{NS}subOrganizationOf> ?u . ?x <{NS}undergraduateDegreeFrom> ?u . }}"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let cfg = LubmConfig {
            universities: 1,
            seed: 9,
        };
        let a = generate_store(&cfg);
        let b = generate_store(&cfg);
        assert_eq!(a.num_triples(), b.num_triples());
        let ta: Vec<_> = a.iter_triples().collect();
        let tb: Vec<_> = b.iter_triples().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn seventeen_predicates() {
        let store = generate_store(&LubmConfig {
            universities: 1,
            seed: 1,
        });
        assert_eq!(store.num_predicates(), 17);
        assert_eq!(store.check_invariants(), Ok(()));
    }

    #[test]
    fn scale_grows_linearly() {
        let one = generate_store(&LubmConfig {
            universities: 1,
            seed: 5,
        })
        .num_triples();
        let four = generate_store(&LubmConfig {
            universities: 4,
            seed: 5,
        })
        .num_triples();
        assert!(one > 5_000, "single university too small: {one}");
        assert!(four > 3 * one && four < 5 * one, "one={one} four={four}");
    }

    #[test]
    fn query_constants_exist() {
        let store = generate_store(&LubmConfig {
            universities: 1,
            seed: 3,
        });
        for c in [
            format!("{NS}u0"),
            format!("{NS}u0/d0"),
            format!("{NS}UndergraduateStudent"),
        ] {
            assert!(
                store.dict().resource_id(&Term::iri(&c)).is_some(),
                "missing constant {c}"
            );
        }
    }

    #[test]
    fn queries_parse() {
        for q in queries() {
            parj_sparql_check(&q.sparql, &q.name);
        }
    }

    fn parj_sparql_check(_sparql: &str, _name: &str) {
        // The full parse-and-run check lives in the integration tests
        // (needs parj-core); here we only assert the templates are
        // well-formed strings mentioning the namespace.
        assert!(_sparql.contains(NS), "{_name} lost its namespace");
    }
}
