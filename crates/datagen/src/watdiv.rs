//! WatDiv-like e-commerce/social data generator and the basic,
//! incremental-linear and mixed-linear workloads.
//!
//! The Waterloo SPARQL Diversity Test Suite stresses engines with
//! *structurally diverse* queries over a store mixing an e-commerce
//! domain (products, retailers, reviews) with a social one (users,
//! follows/friendOf). The paper runs its **basic workload** (linear
//! L1–L5, star S1–S7, snowflake F1–F5, complex C1–C3, Table 3) and the
//! **incremental linear** (IL-1/2/3) and **mixed linear** (ML-1/2)
//! extensions with path lengths 5–10 (Table 4).
//!
//! The generator reproduces the selectivity classes that make those
//! workloads interesting:
//!
//! * IL-1/IL-2 chains are **anchored at a constant**, so results stay
//!   small no matter the length;
//! * IL-3 chains are **unanchored `friendOf` paths**, whose result count
//!   grows geometrically with length — the workload family where the
//!   paper's TriAD comparison blows up (out-of-memory at IL-3-8);
//! * ML variants append an attribute pattern to the path's endpoint,
//!   with ML-1 anchored (very selective) and ML-2 unanchored (medium).

use parj_dict::Term;
use parj_store::{StoreBuilder, TripleStore};

use crate::{NamedQuery, SplitMix64};

/// Namespace prefix of generated IRIs.
pub const NS: &str = "http://watdiv/";
/// `rdf:type`.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// `xsd:integer`, the datatype of `rating`/`age`/`price` literals (bare
/// integers in SPARQL parse to the same form).
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// Number of genres (fixed, so `genre0..genre9` are always valid query
/// constants).
pub const GENRES: usize = 10;
/// Number of cities.
pub const CITIES: usize = 20;
/// Number of countries.
pub const COUNTRIES: usize = 5;

/// Generator configuration. One scale unit ≈ 100 users, 50 products,
/// 150 reviews, 2 retailers ≈ 2.5 k triples.
#[derive(Debug, Clone, Copy)]
pub struct WatDivConfig {
    /// Scale factor (the paper runs WatDiv scale 1000 ≈ 110 M triples;
    /// defaults here are tens).
    pub scale: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WatDivConfig {
    fn default() -> Self {
        Self {
            scale: 10,
            seed: 0x5741_5444,
        }
    }
}

impl WatDivConfig {
    /// Users generated at this scale.
    pub fn users(&self) -> usize {
        100 * self.scale.max(1)
    }

    /// Products generated at this scale.
    pub fn products(&self) -> usize {
        50 * self.scale.max(1)
    }

    /// Reviews generated at this scale.
    pub fn reviews(&self) -> usize {
        150 * self.scale.max(1)
    }

    /// Retailers generated at this scale.
    pub fn retailers(&self) -> usize {
        2 * self.scale.max(1) + 1
    }
}

fn iri(path: String) -> Term {
    Term::iri(format!("{NS}{path}"))
}

fn pred(name: &str) -> Term {
    Term::iri(format!("{NS}{name}"))
}

fn int_lit(v: usize) -> Term {
    Term::typed_literal(v.to_string(), XSD_INTEGER)
}

/// Generates all triples through `emit`.
pub fn generate<F: FnMut(Term, Term, Term)>(cfg: &WatDivConfig, mut emit: F) {
    let rdf_type = Term::iri(RDF_TYPE);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x5741_5444); // "WATD"
    let users = cfg.users();
    let products = cfg.products();
    let reviews = cfg.reviews();
    let retailers = cfg.retailers();

    let user = |i: usize| iri(format!("user{i}"));
    let product = |i: usize| iri(format!("product{i}"));
    let review = |i: usize| iri(format!("review{i}"));
    let retailer = |i: usize| iri(format!("retailer{i}"));
    let genre = |i: usize| iri(format!("genre{i}"));
    let city = |i: usize| iri(format!("city{i}"));
    let country = |i: usize| iri(format!("country{i}"));

    // Geography backbone.
    for c in 0..CITIES {
        emit(city(c), rdf_type.clone(), iri("City".into()));
        emit(city(c), pred("cityIn"), country(c % COUNTRIES));
    }
    for c in 0..COUNTRIES {
        emit(country(c), rdf_type.clone(), iri("Country".into()));
    }
    for g in 0..GENRES {
        emit(genre(g), rdf_type.clone(), iri("Genre".into()));
    }

    // Zipf-ish popularity: user i follows mostly low-index users;
    // product popularity likewise. A cheap skew: pick two uniforms and
    // take the min.
    let skewed = |n: usize, rng: &mut SplitMix64| -> usize {
        let a = rng.below(n);
        let b = rng.below(n);
        a.min(b)
    };

    // Users.
    for i in 0..users {
        let u = user(i);
        emit(u.clone(), rdf_type.clone(), iri("User".into()));
        emit(
            u.clone(),
            pred("familyName"),
            Term::literal(format!("Family{}", i % 977)),
        );
        emit(u.clone(), pred("age"), int_lit(18 + rng.below(60)));
        emit(
            u.clone(),
            pred("gender"),
            Term::literal(if rng.below(2) == 0 { "female" } else { "male" }.to_string()),
        );
        emit(u.clone(), pred("locatedIn"), city(rng.below(CITIES)));
        // follows: 2-5 edges, popularity-skewed.
        let n_follows = rng.range(2, 5);
        for _ in 0..n_follows {
            let t = skewed(users, &mut rng);
            if t != i {
                emit(u.clone(), pred("follows"), user(t));
            }
        }
        // friendOf: 1-2 edges (average ≈ 1.5 keeps unanchored IL-3
        // chains geometric but tractable).
        let n_friends = rng.range(1, 2);
        for _ in 0..n_friends {
            let t = rng.below(users);
            if t != i {
                emit(u.clone(), pred("friendOf"), user(t));
            }
        }
        // likes: 2-5 products, skewed.
        let n_likes = rng.range(2, 5);
        for _ in 0..n_likes {
            emit(u.clone(), pred("likes"), product(skewed(products, &mut rng)));
        }
        // purchases: 0-2.
        for _ in 0..rng.below(3) {
            emit(u.clone(), pred("purchases"), product(skewed(products, &mut rng)));
        }
    }

    // Products.
    for i in 0..products {
        let p = product(i);
        emit(p.clone(), rdf_type.clone(), iri("Product".into()));
        emit(
            p.clone(),
            pred("title"),
            Term::literal(format!("Product number {i}")),
        );
        emit(
            p.clone(),
            pred("caption"),
            Term::literal(format!("The finest product {i}")),
        );
        emit(p.clone(), pred("price"), int_lit(1 + rng.below(1000)));
        let n_genres = rng.range(1, 2);
        for g in 0..n_genres {
            emit(p.clone(), pred("genre"), genre((rng.below(GENRES) + g) % GENRES));
        }
    }

    // Reviews: review i is about a skewed product by a skewed user.
    for i in 0..reviews {
        let r = review(i);
        let p = skewed(products, &mut rng);
        emit(r.clone(), rdf_type.clone(), iri("Review".into()));
        emit(product(p), pred("hasReview"), r.clone());
        emit(r.clone(), pred("reviewer"), user(skewed(users, &mut rng)));
        emit(r.clone(), pred("rating"), int_lit(1 + rng.below(5)));
        emit(
            r.clone(),
            pred("reviewText"),
            Term::literal(format!("Review text {i}")),
        );
    }

    // Retailers.
    for i in 0..retailers {
        let rt = retailer(i);
        emit(rt.clone(), rdf_type.clone(), iri("Retailer".into()));
        emit(
            rt.clone(),
            pred("homepage"),
            Term::literal(format!("http://shop{i}.example.com")),
        );
        let n_offers = rng.range(3, 8);
        for _ in 0..n_offers {
            emit(rt.clone(), pred("offers"), product(rng.below(products)));
        }
    }
}

/// Generates into a fresh [`StoreBuilder`].
pub fn generate_builder(cfg: &WatDivConfig) -> StoreBuilder {
    let mut b = StoreBuilder::new();
    generate(cfg, |s, p, o| {
        b.add_term_triple(&s, &p, &o);
    });
    b
}

/// Generates and builds a complete store.
pub fn generate_store(cfg: &WatDivConfig) -> TripleStore {
    generate_builder(cfg).build()
}

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

fn q(name: impl Into<String>, group: &str, body: String) -> NamedQuery {
    NamedQuery::new(name, group, body)
}

/// The basic workload: L1–L5, S1–S7, F1–F5, C1–C3 (Table 3's query mix).
pub fn basic_workload() -> Vec<NamedQuery> {
    let t = RDF_TYPE;
    vec![
        // ----- linear -----
        q("L1", "L", format!(
            "SELECT ?u ?p WHERE {{ ?u <{NS}likes> ?p . ?p <{NS}genre> <{NS}genre0> . }}")),
        q("L2", "L", format!(
            "SELECT ?a ?p WHERE {{ <{NS}user0> <{NS}follows> ?a . ?a <{NS}likes> ?p . }}")),
        q("L3", "L", format!(
            "SELECT ?p ?r WHERE {{ ?p <{NS}hasReview> ?r . ?r <{NS}reviewer> <{NS}user1> . }}")),
        q("L4", "L", format!(
            "SELECT ?r ?u WHERE {{ ?r <{NS}rating> 5 . ?r <{NS}reviewer> ?u . ?u <{NS}locatedIn> <{NS}city0> . }}")),
        q("L5", "L", format!(
            "SELECT ?u ?c WHERE {{ ?u <{NS}locatedIn> ?c . ?c <{NS}cityIn> <{NS}country0> . ?u <{NS}age> 25 . }}")),
        // ----- star -----
        q("S1", "S", format!(
            "SELECT ?p ?g ?ti ?pr ?ca ?r ?rt ?u ?gd WHERE {{ \
             <{NS}retailer0> <{NS}offers> ?p . ?p <{NS}genre> ?g . ?p <{NS}title> ?ti . \
             ?p <{NS}price> ?pr . ?p <{NS}caption> ?ca . ?p <{NS}hasReview> ?r . \
             ?r <{NS}rating> ?rt . ?r <{NS}reviewer> ?u . ?u <{NS}gender> ?gd . }}")),
        q("S2", "S", format!(
            "SELECT ?u ?a ?f WHERE {{ ?u <{NS}locatedIn> <{NS}city1> . ?u <{NS}age> ?a . ?u <{NS}familyName> ?f . }}")),
        q("S3", "S", format!(
            "SELECT ?p ?pr ?ti WHERE {{ ?p <{NS}genre> <{NS}genre1> . ?p <{NS}price> ?pr . ?p <{NS}title> ?ti . }}")),
        q("S4", "S", format!(
            "SELECT ?u ?c ?f WHERE {{ ?u <{NS}age> 30 . ?u <{NS}locatedIn> ?c . ?u <{NS}familyName> ?f . }}")),
        q("S5", "S", format!(
            "SELECT ?p ?ca WHERE {{ ?p <{t}> <{NS}Product> . ?p <{NS}genre> <{NS}genre2> . ?p <{NS}caption> ?ca . }}")),
        q("S6", "S", format!(
            "SELECT ?rt ?p WHERE {{ ?rt <{NS}offers> ?p . ?p <{NS}genre> <{NS}genre4> . }}")),
        q("S7", "S", format!(
            "SELECT ?p ?ti WHERE {{ ?p <{t}> <{NS}Product> . ?p <{NS}title> ?ti . <{NS}user2> <{NS}likes> ?p . }}")),
        // ----- snowflake -----
        q("F1", "F", format!(
            "SELECT ?p ?r ?u ?c WHERE {{ ?p <{NS}genre> <{NS}genre0> . ?p <{NS}hasReview> ?r . \
             ?r <{NS}reviewer> ?u . ?u <{NS}locatedIn> ?c . }}")),
        q("F2", "F", format!(
            "SELECT ?p ?ti ?r ?rt WHERE {{ ?p <{NS}hasReview> ?r . ?r <{NS}rating> ?rt . \
             ?p <{NS}title> ?ti . ?p <{NS}genre> <{NS}genre3> . ?r <{NS}reviewer> ?u . }}")),
        q("F3", "F", format!(
            "SELECT ?p ?r ?u WHERE {{ <{NS}retailer1> <{NS}offers> ?p . ?p <{NS}hasReview> ?r . \
             ?r <{NS}reviewer> ?u . ?u <{NS}age> ?a . ?u <{NS}locatedIn> ?c . }}")),
        q("F4", "F", format!(
            "SELECT ?u ?p ?r WHERE {{ ?u <{NS}likes> ?p . ?p <{NS}hasReview> ?r . ?r <{NS}rating> 1 . \
             ?u <{NS}locatedIn> <{NS}city2> . }}")),
        q("F5", "F", format!(
            "SELECT ?u ?v ?p ?g WHERE {{ ?u <{NS}follows> ?v . ?v <{NS}likes> ?p . \
             ?p <{NS}genre> ?g . ?g <{t}> <{NS}Genre> . ?u <{NS}locatedIn> <{NS}city3> . }}")),
        // ----- complex -----
        q("C1", "C", format!(
            "SELECT ?u ?p ?r ?u2 ?p2 WHERE {{ ?u <{NS}likes> ?p . ?p <{NS}hasReview> ?r . \
             ?r <{NS}reviewer> ?u2 . ?u2 <{NS}likes> ?p2 . ?p2 <{NS}genre> <{NS}genre5> . }}")),
        q("C2", "C", format!(
            "SELECT ?rt ?p ?r ?u ?v WHERE {{ ?rt <{NS}offers> ?p . ?p <{NS}hasReview> ?r . \
             ?r <{NS}reviewer> ?u . ?u <{NS}follows> ?v . ?v <{NS}locatedIn> <{NS}city4> . }}")),
        q("C3", "C", format!(
            "SELECT ?u ?v ?p WHERE {{ ?u <{NS}friendOf> ?v . ?u <{NS}likes> ?p . ?v <{NS}likes> ?p . }}")),
    ]
}

/// Chain-building helper: emits `n` path patterns starting from `start`
/// (a constant IRI or a variable), cycling through `cycle` predicates.
/// Returns (pattern text, final variable index).
fn chain(start: Option<String>, cycle: &[&str], n: usize) -> (String, usize) {
    let mut body = String::new();
    for step in 0..n {
        let p = cycle[step % cycle.len()];
        let subj = if step == 0 {
            match &start {
                Some(c) => format!("<{NS}{c}>"),
                None => "?x0".to_string(),
            }
        } else {
            format!("?x{step}")
        };
        body.push_str(&format!("{subj} <{NS}{p}> ?x{} . ", step + 1));
    }
    (body, n)
}

/// The type of node a chain built from `cycle` ends on after `n` steps,
/// given the starting node type `start` ("user"/"product"/"review").
fn chain_end_type(cycle: &[&str], n: usize) -> &'static str {
    // Cycle predicates map node types: follows u→u, friendOf u→u,
    // likes u→p, hasReview p→r, reviewer r→u.
    let mut node = "user";
    for step in 0..n {
        node = match (node, cycle[step % cycle.len()]) {
            (_, "follows") | (_, "friendOf") => "user",
            (_, "likes") => "product",
            (_, "hasReview") => "review",
            (_, "reviewer") => "user",
            (n, p) => unreachable!("bad cycle step {n}/{p}"),
        };
    }
    node
}

/// Incremental linear workload `IL-k-5 … IL-k-10` (k ∈ 1..=3).
///
/// * IL-1: constant-anchored mixed chain (selective at every length);
/// * IL-2: constant-anchored product/review chain (selective);
/// * IL-3: unanchored `friendOf` chain (result count grows geometrically
///   — the family where materializing engines collapse, Table 4).
pub fn incremental_linear(k: u8) -> Vec<NamedQuery> {
    assert!((1..=3).contains(&k), "IL variants are 1..=3");
    let group = format!("IL-{k}");
    (5..=10)
        .map(|n| {
            let (body, last) = match k {
                1 => chain(Some("user0".into()), &["follows", "likes", "hasReview", "reviewer"], n),
                2 => chain(Some("user1".into()), &["likes", "hasReview", "reviewer"], n),
                _ => chain(None, &["friendOf"], n),
            };
            let vars: Vec<String> = (1..=last).map(|i| format!("?x{i}")).collect();
            q(
                format!("IL-{k}-{n}"),
                &group,
                format!("SELECT {} WHERE {{ {body}}}", vars.join(" ")),
            )
        })
        .collect()
}

/// Mixed linear workload `ML-k-5 … ML-k-10` (k ∈ 1..=2): a path plus an
/// attribute pattern on its endpoint.
///
/// * ML-1: anchored path + endpoint attribute (very selective);
/// * ML-2: unanchored path + endpoint attribute (medium).
pub fn mixed_linear(k: u8) -> Vec<NamedQuery> {
    assert!((1..=2).contains(&k), "ML variants are 1..=2");
    let group = format!("ML-{k}");
    (5..=10)
        .map(|n| {
            let cycle: &[&str] = if k == 1 {
                &["follows", "likes", "hasReview", "reviewer"]
            } else {
                &["likes", "hasReview", "reviewer"]
            };
            let start = if k == 1 { Some("user2".to_string()) } else { None };
            let (mut body, last) = chain(start, cycle, n);
            // The "mixed" part: constrain the endpoint by an attribute.
            let endpoint = format!("?x{last}");
            match chain_end_type(cycle, n) {
                "user" => body.push_str(&format!("{endpoint} <{NS}locatedIn> <{NS}city0> . ")),
                "product" => body.push_str(&format!("{endpoint} <{NS}genre> <{NS}genre0> . ")),
                _ => body.push_str(&format!("{endpoint} <{NS}rating> 5 . ")),
            }
            let vars: Vec<String> = (1..=last).map(|i| format!("?x{i}")).collect();
            q(
                format!("ML-{k}-{n}"),
                &group,
                format!("SELECT {} WHERE {{ {body}}}", vars.join(" ")),
            )
        })
        .collect()
}

/// Every WatDiv query the paper's Tables 3 and 4 report: basic + IL-1/2/3
/// + ML-1/2.
pub fn all_queries() -> Vec<NamedQuery> {
    let mut out = basic_workload();
    for k in 1..=3 {
        out.extend(incremental_linear(k));
    }
    for k in 1..=2 {
        out.extend(mixed_linear(k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = WatDivConfig { scale: 1, seed: 2 };
        let a = generate_store(&cfg);
        let b = generate_store(&cfg);
        assert_eq!(
            a.iter_triples().collect::<Vec<_>>(),
            b.iter_triples().collect::<Vec<_>>()
        );
        assert_eq!(a.check_invariants(), Ok(()));
    }

    #[test]
    fn entity_counts_scale() {
        let cfg = WatDivConfig { scale: 2, seed: 2 };
        assert_eq!(cfg.users(), 200);
        assert_eq!(cfg.products(), 100);
        let store = generate_store(&cfg);
        assert!(store.num_triples() > 3_000, "{}", store.num_triples());
    }

    #[test]
    fn query_constants_exist() {
        let store = generate_store(&WatDivConfig { scale: 1, seed: 7 });
        for c in [
            "user0", "user1", "user2", "retailer0", "retailer1", "genre0", "genre5", "city0",
            "city4", "country0",
        ] {
            assert!(
                store
                    .dict()
                    .resource_id(&Term::iri(format!("{NS}{c}")))
                    .is_some(),
                "missing {c}"
            );
        }
    }

    #[test]
    fn workload_inventory_matches_paper() {
        let basic = basic_workload();
        assert_eq!(basic.iter().filter(|q| q.group == "L").count(), 5);
        assert_eq!(basic.iter().filter(|q| q.group == "S").count(), 7);
        assert_eq!(basic.iter().filter(|q| q.group == "F").count(), 5);
        assert_eq!(basic.iter().filter(|q| q.group == "C").count(), 3);
        for k in 1..=3 {
            let il = incremental_linear(k);
            assert_eq!(il.len(), 6);
            assert_eq!(il[0].name, format!("IL-{k}-5"));
            assert_eq!(il[5].name, format!("IL-{k}-10"));
        }
        for k in 1..=2 {
            assert_eq!(mixed_linear(k).len(), 6);
        }
        assert_eq!(all_queries().len(), 20 + 18 + 12);
    }

    #[test]
    fn chain_builder_shapes() {
        let (body, last) = chain(Some("user0".into()), &["follows"], 3);
        assert_eq!(last, 3);
        assert!(body.starts_with(&format!("<{NS}user0> <{NS}follows> ?x1 . ")));
        assert!(body.contains("?x2 <{") || body.contains(&format!("?x2 <{NS}follows> ?x3")));
        let (body, _) = chain(None, &["friendOf"], 2);
        assert!(body.starts_with("?x0"));
    }

    #[test]
    fn chain_end_types() {
        assert_eq!(chain_end_type(&["friendOf"], 7), "user");
        assert_eq!(chain_end_type(&["likes", "hasReview", "reviewer"], 1), "product");
        assert_eq!(chain_end_type(&["likes", "hasReview", "reviewer"], 2), "review");
        assert_eq!(chain_end_type(&["likes", "hasReview", "reviewer"], 3), "user");
    }
}
