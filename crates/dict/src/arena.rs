//! Append-only string arena: one contiguous byte buffer plus an offset
//! table, giving O(1) index-to-slice access with two `Vec` allocations
//! total regardless of how many strings are stored.

/// An append-only arena of UTF-8 strings.
///
/// Strings are identified by their insertion index. Compared to
/// `Vec<String>`, the arena removes one pointer + capacity word + heap
/// allocation per entry — at LUBM-10240 scale (hundreds of millions of
/// terms) that is tens of gigabytes of savings and much better decode
/// locality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringArena {
    data: String,
    /// `offsets[i]..offsets[i+1]` is the byte range of string `i`.
    /// Invariant: non-empty, starts with 0, monotonically non-decreasing.
    offsets: Vec<u64>,
}

impl Default for StringArena {
    fn default() -> Self {
        Self::new()
    }
}

impl StringArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self {
            data: String::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty arena with room for `strings` entries totalling
    /// `bytes` bytes.
    pub fn with_capacity(strings: usize, bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(strings + 1);
        offsets.push(0);
        Self {
            data: String::with_capacity(bytes),
            offsets,
        }
    }

    /// Appends a string, returning its index.
    #[inline]
    pub fn push(&mut self, s: &str) -> usize {
        self.data.push_str(s);
        self.offsets.push(self.data.len() as u64);
        self.offsets.len() - 2
    }

    /// Returns the string at `index`, or `None` if out of bounds.
    #[inline]
    pub fn get(&self, index: usize) -> Option<&str> {
        let start = *self.offsets.get(index)? as usize;
        let end = *self.offsets.get(index + 1)? as usize;
        Some(&self.data[start..end])
    }

    /// Number of strings stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if no strings are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of string payload (excluding the offset table).
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// Iterates over all stored strings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }

    /// Raw parts for serialization: `(payload, offsets)`.
    pub(crate) fn raw_parts(&self) -> (&str, &[u64]) {
        (&self.data, &self.offsets)
    }

    /// Rebuilds an arena from raw parts, validating the offset table.
    ///
    /// Returns `None` if the offsets are not a valid monotone table over
    /// `data` or cut a UTF-8 sequence.
    pub(crate) fn from_raw_parts(data: String, offsets: Vec<u64>) -> Option<Self> {
        if offsets.first() != Some(&0) {
            return None;
        }
        if offsets.last().copied()? != data.len() as u64 {
            return None;
        }
        let mut prev = 0u64;
        for &o in &offsets {
            if o < prev || !data.is_char_boundary(o as usize) {
                return None;
            }
            prev = o;
        }
        Some(Self { data, offsets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut a = StringArena::new();
        let i0 = a.push("hello");
        let i1 = a.push("");
        let i2 = a.push("wörld");
        assert_eq!((i0, i1, i2), (0, 1, 2));
        assert_eq!(a.get(0), Some("hello"));
        assert_eq!(a.get(1), Some(""));
        assert_eq!(a.get(2), Some("wörld"));
        assert_eq!(a.get(3), None);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_arena() {
        let a = StringArena::new();
        assert!(a.is_empty());
        assert_eq!(a.get(0), None);
        assert_eq!(a.iter().count(), 0);
    }

    #[test]
    fn iter_matches_insertion_order() {
        let mut a = StringArena::new();
        let input = ["a", "bb", "", "cccc"];
        for s in input {
            a.push(s);
        }
        let collected: Vec<&str> = a.iter().collect();
        assert_eq!(collected, input);
    }

    #[test]
    fn raw_roundtrip() {
        let mut a = StringArena::new();
        a.push("x");
        a.push("yz");
        let (d, o) = a.raw_parts();
        let b = StringArena::from_raw_parts(d.to_string(), o.to_vec()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_raw_rejects_bad_offsets() {
        // Not starting at 0.
        assert!(StringArena::from_raw_parts("ab".into(), vec![1, 2]).is_none());
        // Not ending at len.
        assert!(StringArena::from_raw_parts("ab".into(), vec![0, 1]).is_none());
        // Non-monotone.
        assert!(StringArena::from_raw_parts("ab".into(), vec![0, 2, 1, 2]).is_none());
        // Splits a UTF-8 char ('ö' is two bytes).
        assert!(StringArena::from_raw_parts("ö".into(), vec![0, 1, 2]).is_none());
        // Valid empty.
        assert!(StringArena::from_raw_parts(String::new(), vec![0]).is_some());
    }
}
