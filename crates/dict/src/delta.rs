//! Append-only dictionary overlay for incremental mutations.
//!
//! The base [`Dictionary`] is immutable once a store is finalized —
//! query workers share it read-only with no synchronization. Mutation
//! batches can still introduce *new* terms, so the engine keeps a small
//! [`DictDelta`] beside the base dictionary: two extra [`Namespace`]s
//! whose ids **continue the base dense id spaces** (a delta resource
//! with delta-index `i` has the global id `base.num_resources() + i`,
//! and likewise for predicates).
//!
//! Continuing the dense spaces is load-bearing twice over:
//!
//! * probe structures and the ID-to-Position index assume dense ids, so
//!   a delta term is indistinguishable from a base term downstream;
//! * folding the delta into a cloned base dictionary **in insertion
//!   order** reassigns exactly the same ids (dense ids are handed out
//!   in first-seen order), which is what lets the audit layer compare a
//!   delta-overlaid store against a from-scratch rebuild byte for byte.
//!
//! Reads go through [`DictView`], a borrowed (base, delta) pair with
//! the same lookup surface as [`Dictionary`]; every decode consults the
//! base first and falls through to the delta by offset.

use crate::dict::{Dictionary, Namespace};
use crate::term::{Term, TermParseError};
use crate::Id;

/// New terms introduced by mutations since the last finalize, with ids
/// continuing the base dictionary's dense spaces.
#[derive(Debug, Clone, Default)]
pub struct DictDelta {
    resources: Namespace,
    predicates: Namespace,
    base_resources: usize,
    base_predicates: usize,
}

impl DictDelta {
    /// Creates an empty delta anchored at the current end of `base`'s
    /// id spaces.
    pub fn new(base: &Dictionary) -> Self {
        DictDelta {
            resources: Namespace::new(),
            predicates: Namespace::new(),
            base_resources: base.num_resources(),
            base_predicates: base.num_predicates(),
        }
    }

    /// True if no new term has been added.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty() && self.predicates.is_empty()
    }

    /// Number of new resource terms.
    pub fn num_new_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of new predicate terms.
    pub fn num_new_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Total new terms (resources + predicates).
    pub fn num_new_terms(&self) -> usize {
        self.resources.len() + self.predicates.len()
    }

    /// Resource id space length including the base.
    pub fn num_resources(&self) -> usize {
        self.base_resources + self.resources.len()
    }

    /// Predicate id space length including the base.
    pub fn num_predicates(&self) -> usize {
        self.base_predicates + self.predicates.len()
    }

    /// Encodes a resource term: the base id if the base knows it,
    /// otherwise an id in the delta extension (inserting on first use).
    ///
    /// `base` must be the dictionary this delta was anchored to.
    pub fn encode_resource(&mut self, base: &Dictionary, term: &Term) -> Id {
        debug_assert_eq!(base.num_resources(), self.base_resources);
        let key = term.canonical_key();
        if let Some(id) = base.resources_ns().get_key(&key) {
            return id;
        }
        self.base_resources as Id + self.resources.encode_key(&key)
    }

    /// Encodes a predicate term, continuing the base predicate space.
    pub fn encode_predicate(&mut self, base: &Dictionary, term: &Term) -> Id {
        debug_assert_eq!(base.num_predicates(), self.base_predicates);
        let key = term.canonical_key();
        if let Some(id) = base.predicates_ns().get_key(&key) {
            return id;
        }
        self.base_predicates as Id + self.predicates.encode_key(&key)
    }

    /// Looks up a resource term without inserting.
    pub fn resource_id(&self, base: &Dictionary, term: &Term) -> Option<Id> {
        let key = term.canonical_key();
        base.resources_ns().get_key(&key).or_else(|| {
            self.resources
                .get_key(&key)
                .map(|i| self.base_resources as Id + i)
        })
    }

    /// Looks up a predicate term without inserting.
    pub fn predicate_id(&self, base: &Dictionary, term: &Term) -> Option<Id> {
        let key = term.canonical_key();
        base.predicates_ns().get_key(&key).or_else(|| {
            self.predicates
                .get_key(&key)
                .map(|i| self.base_predicates as Id + i)
        })
    }

    /// Decodes a resource id, falling through to the delta extension.
    pub fn decode_resource(
        &self,
        base: &Dictionary,
        id: Id,
    ) -> Result<Term, TermParseError> {
        if (id as usize) < self.base_resources {
            return base.decode_resource(id);
        }
        let key = self
            .resources
            .key(id - self.base_resources as Id)
            .ok_or_else(|| TermParseError {
                message: format!("resource id {id} out of range"),
            })?;
        Term::from_canonical_key(key)
    }

    /// Decodes a predicate id, falling through to the delta extension.
    pub fn decode_predicate(
        &self,
        base: &Dictionary,
        id: Id,
    ) -> Result<Term, TermParseError> {
        if (id as usize) < self.base_predicates {
            return base.decode_predicate(id);
        }
        let key = self
            .predicates
            .key(id - self.base_predicates as Id)
            .ok_or_else(|| TermParseError {
                message: format!("predicate id {id} out of range"),
            })?;
        Term::from_canonical_key(key)
    }

    /// Folds every delta term into `dict` in insertion order.
    ///
    /// `dict` must be a clone of (or id-compatible with) the base this
    /// delta was anchored to: because dense ids are assigned in
    /// first-seen order, re-encoding the delta terms in insertion order
    /// reproduces exactly the ids this delta handed out, so triples
    /// encoded against the overlay stay valid against the folded
    /// dictionary.
    pub fn fold_into(&self, dict: &mut Dictionary) {
        for i in 0..self.resources.len() {
            let key = self
                .resources
                .key(i as Id)
                .expect("delta resource ids are dense");
            let id = dict.resources_ns_mut().encode_key(key);
            debug_assert_eq!(id as usize, self.base_resources + i);
        }
        for i in 0..self.predicates.len() {
            let key = self
                .predicates
                .key(i as Id)
                .expect("delta predicate ids are dense");
            let id = dict.predicates_ns_mut().encode_key(key);
            debug_assert_eq!(id as usize, self.base_predicates + i);
        }
    }

    /// Approximate heap footprint of the delta namespaces.
    pub fn memory_bytes(&self) -> usize {
        self.resources.memory_bytes() + self.predicates.memory_bytes()
    }
}

/// A borrowed read view over a base [`Dictionary`] plus an optional
/// [`DictDelta`] — the lookup surface the query path uses so that
/// delta-introduced terms translate and decode exactly like base terms.
#[derive(Debug, Clone, Copy)]
pub struct DictView<'a> {
    base: &'a Dictionary,
    delta: Option<&'a DictDelta>,
}

impl<'a> DictView<'a> {
    /// A view over `base` alone (no pending mutations).
    pub fn base(base: &'a Dictionary) -> Self {
        DictView { base, delta: None }
    }

    /// A view over `base` plus `delta`. An empty delta is treated the
    /// same as no delta.
    pub fn with_delta(base: &'a Dictionary, delta: &'a DictDelta) -> Self {
        DictView {
            base,
            delta: (!delta.is_empty()).then_some(delta),
        }
    }

    /// The underlying base dictionary.
    pub fn base_dict(&self) -> &'a Dictionary {
        self.base
    }

    /// Looks up a resource term without inserting.
    pub fn resource_id(&self, term: &Term) -> Option<Id> {
        match self.delta {
            Some(d) => d.resource_id(self.base, term),
            None => self.base.resource_id(term),
        }
    }

    /// Looks up a predicate term without inserting.
    pub fn predicate_id(&self, term: &Term) -> Option<Id> {
        match self.delta {
            Some(d) => d.predicate_id(self.base, term),
            None => self.base.predicate_id(term),
        }
    }

    /// Decodes a resource id.
    pub fn decode_resource(&self, id: Id) -> Result<Term, TermParseError> {
        match self.delta {
            Some(d) => d.decode_resource(self.base, id),
            None => self.base.decode_resource(id),
        }
    }

    /// Decodes a predicate id.
    pub fn decode_predicate(&self, id: Id) -> Result<Term, TermParseError> {
        match self.delta {
            Some(d) => d.decode_predicate(self.base, id),
            None => self.base.decode_predicate(id),
        }
    }

    /// Resource id space length (base + delta extension).
    pub fn num_resources(&self) -> usize {
        match self.delta {
            Some(d) => d.num_resources(),
            None => self.base.num_resources(),
        }
    }

    /// Predicate id space length (base + delta extension).
    pub fn num_predicates(&self) -> usize {
        match self.delta {
            Some(d) => d.num_predicates(),
            None => self.base.num_predicates(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_dict() -> Dictionary {
        let mut d = Dictionary::new();
        d.encode_resource(&Term::iri("a"));
        d.encode_resource(&Term::iri("b"));
        d.encode_predicate(&Term::iri("p"));
        d
    }

    #[test]
    fn base_terms_keep_base_ids() {
        let base = base_dict();
        let mut delta = DictDelta::new(&base);
        let a = delta.encode_resource(&base, &Term::iri("a"));
        assert_eq!(a, base.resource_id(&Term::iri("a")).unwrap());
        assert!(delta.is_empty());
    }

    #[test]
    fn new_terms_continue_dense_spaces() {
        let base = base_dict();
        let mut delta = DictDelta::new(&base);
        let c = delta.encode_resource(&base, &Term::iri("c"));
        let d = delta.encode_resource(&base, &Term::iri("d"));
        assert_eq!(c as usize, base.num_resources());
        assert_eq!(d as usize, base.num_resources() + 1);
        // Idempotent, like the base encoder.
        assert_eq!(c, delta.encode_resource(&base, &Term::iri("c")));
        let q = delta.encode_predicate(&base, &Term::iri("q"));
        assert_eq!(q as usize, base.num_predicates());
        assert_eq!(delta.num_new_terms(), 3);
    }

    #[test]
    fn view_lookup_and_decode_cover_both_layers() {
        let base = base_dict();
        let mut delta = DictDelta::new(&base);
        let c = delta.encode_resource(&base, &Term::iri("c"));
        let view = DictView::with_delta(&base, &delta);
        assert_eq!(view.resource_id(&Term::iri("a")), base.resource_id(&Term::iri("a")));
        assert_eq!(view.resource_id(&Term::iri("c")), Some(c));
        assert_eq!(view.resource_id(&Term::iri("zz")), None);
        assert_eq!(view.decode_resource(c).unwrap(), Term::iri("c"));
        assert_eq!(view.decode_resource(0).unwrap(), Term::iri("a"));
        assert!(view.decode_resource(99).is_err());
        assert_eq!(view.num_resources(), base.num_resources() + 1);
    }

    #[test]
    fn fold_reproduces_identical_ids() {
        let base = base_dict();
        let mut delta = DictDelta::new(&base);
        let ids: Vec<Id> = ["x", "c", "m"]
            .iter()
            .map(|t| delta.encode_resource(&base, &Term::iri(*t)))
            .collect();
        let q = delta.encode_predicate(&base, &Term::iri("q"));

        let mut folded = base.clone();
        delta.fold_into(&mut folded);
        for (term, id) in [("x", ids[0]), ("c", ids[1]), ("m", ids[2])] {
            assert_eq!(folded.resource_id(&Term::iri(term)), Some(id));
        }
        assert_eq!(folded.predicate_id(&Term::iri("q")), Some(q));
        assert_eq!(folded.num_resources(), delta.num_resources());
    }

    #[test]
    fn empty_delta_view_equals_base_view() {
        let base = base_dict();
        let delta = DictDelta::new(&base);
        let view = DictView::with_delta(&base, &delta);
        assert_eq!(view.num_resources(), base.num_resources());
        assert_eq!(view.num_predicates(), base.num_predicates());
    }
}
