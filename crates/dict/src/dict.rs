//! The two-namespace dictionary (resources + predicates).

use std::collections::HashMap;

use bytes::{Buf, BufMut};

use crate::arena::StringArena;
use crate::hash::{fx_hash_bytes, FxBuildHasher};
use crate::term::{Term, TermParseError};
use crate::Id;

/// Value of a hash-index bucket: the common case is a single id per
/// 64-bit hash; genuine collisions chain into a vector.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Bucket {
    One(Id),
    Many(Vec<Id>),
}

/// One dense id namespace: an arena of canonical keys plus a hash index
/// over them.
///
/// Ids are assigned densely in insertion order: the `i`-th distinct term
/// gets id `i`. Lookups hash the canonical key and verify candidates
/// against the arena, so 64-bit hash collisions are handled correctly.
#[derive(Debug, Default, Clone)]
pub struct Namespace {
    arena: StringArena,
    index: HashMap<u64, Bucket, FxBuildHasher>,
}

impl Namespace {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms.
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True if the namespace holds no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Encodes `key` (a canonical term key), inserting it if new, and
    /// returns its id.
    pub fn encode_key(&mut self, key: &str) -> Id {
        let hash = fx_hash_bytes(key.as_bytes());
        if let Some(id) = self.find(hash, key) {
            return id;
        }
        self.insert_new(hash, key)
    }

    /// Appends `key` (known to be absent) to the arena and index. The
    /// caller must have verified absence — `hash` must be
    /// `fx_hash_bytes(key)` and `find(hash, key)` must be `None` —
    /// otherwise the same term would get two ids.
    pub(crate) fn insert_new(&mut self, hash: u64, key: &str) -> Id {
        let id = self.arena.push(key) as Id;
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Bucket::One(id));
            }
            std::collections::hash_map::Entry::Occupied(mut o) => match o.get_mut() {
                Bucket::One(existing) => {
                    let existing = *existing;
                    *o.get_mut() = Bucket::Many(vec![existing, id]);
                }
                Bucket::Many(v) => v.push(id),
            },
        }
        id
    }

    /// Looks up `key` without inserting.
    pub fn get_key(&self, key: &str) -> Option<Id> {
        self.find(fx_hash_bytes(key.as_bytes()), key)
    }

    /// [`Namespace::get_key`] with the hash supplied by the caller, for
    /// batch pipelines that hash once and probe many times. `hash` must
    /// equal `fx_hash_bytes(key.as_bytes())`.
    pub fn get_key_hashed(&self, hash: u64, key: &str) -> Option<Id> {
        debug_assert_eq!(hash, fx_hash_bytes(key.as_bytes()));
        self.find(hash, key)
    }

    /// Returns the canonical key for `id`.
    pub fn key(&self, id: Id) -> Option<&str> {
        self.arena.get(id as usize)
    }

    fn find(&self, hash: u64, key: &str) -> Option<Id> {
        match self.index.get(&hash)? {
            Bucket::One(id) => (self.arena.get(*id as usize) == Some(key)).then_some(*id),
            Bucket::Many(ids) => ids
                .iter()
                .copied()
                .find(|&id| self.arena.get(id as usize) == Some(key)),
        }
    }

    /// Approximate heap usage in bytes (payload + offsets; the hash index
    /// is estimated at 16 bytes/entry).
    pub fn memory_bytes(&self) -> usize {
        self.arena.payload_bytes() + (self.arena.len() + 1) * 8 + self.index.len() * 16
    }

    fn rebuild_index(arena: StringArena) -> Self {
        let mut ns = Namespace {
            arena,
            index: HashMap::default(),
        };
        for id in 0..ns.arena.len() as Id {
            let key = ns.arena.get(id as usize).expect("id in range");
            let hash = fx_hash_bytes(key.as_bytes());
            match ns.index.entry(hash) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(Bucket::One(id));
                }
                std::collections::hash_map::Entry::Occupied(mut o) => match o.get_mut() {
                    Bucket::One(existing) => {
                        let existing = *existing;
                        *o.get_mut() = Bucket::Many(vec![existing, id]);
                    }
                    Bucket::Many(v) => v.push(id),
                },
            }
        }
        ns
    }
}

/// The PARJ dictionary: resource and predicate namespaces (§3 of the
/// paper uses "a different numbering for values appearing in the
/// property position").
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    resources: Namespace,
    predicates: Namespace,
}

/// Errors from decoding a serialized dictionary.
#[derive(Debug)]
pub enum DictDecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Stored payload was not valid UTF-8 or had a corrupt offset table.
    Corrupt(&'static str),
}

impl std::fmt::Display for DictDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DictDecodeError::Truncated => write!(f, "dictionary payload truncated"),
            DictDecodeError::Corrupt(what) => write!(f, "dictionary payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for DictDecodeError {}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a term in the resource (subject/object) namespace.
    pub fn encode_resource(&mut self, term: &Term) -> Id {
        self.resources.encode_key(&term.canonical_key())
    }

    /// Encodes a term in the predicate namespace.
    pub fn encode_predicate(&mut self, term: &Term) -> Id {
        self.predicates.encode_key(&term.canonical_key())
    }

    /// Looks up a resource term without inserting. `None` means the term
    /// never occurs in the data — any query constant mapping here has an
    /// empty result.
    pub fn resource_id(&self, term: &Term) -> Option<Id> {
        self.resources.get_key(&term.canonical_key())
    }

    /// Looks up a predicate term without inserting.
    pub fn predicate_id(&self, term: &Term) -> Option<Id> {
        self.predicates.get_key(&term.canonical_key())
    }

    /// Decodes a resource id back to a term.
    pub fn decode_resource(&self, id: Id) -> Result<Term, TermParseError> {
        let key = self.resources.key(id).ok_or_else(|| TermParseError {
            message: format!("resource id {id} out of range"),
        })?;
        Term::from_canonical_key(key)
    }

    /// Decodes a predicate id back to a term.
    pub fn decode_predicate(&self, id: Id) -> Result<Term, TermParseError> {
        let key = self.predicates.key(id).ok_or_else(|| TermParseError {
            message: format!("predicate id {id} out of range"),
        })?;
        Term::from_canonical_key(key)
    }

    /// Number of distinct resource terms (the `N` of §4.2: the
    /// ID-to-Position index sizes itself on this).
    #[inline]
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of distinct predicates.
    #[inline]
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.resources.memory_bytes() + self.predicates.memory_bytes()
    }

    /// Approximate heap bytes of the resource arena + index alone
    /// (memory-accounting breakdown; see [`Dictionary::memory_bytes`]).
    pub fn resources_memory_bytes(&self) -> usize {
        self.resources.memory_bytes()
    }

    /// Approximate heap bytes of the predicate arena + index alone.
    pub fn predicates_memory_bytes(&self) -> usize {
        self.predicates.memory_bytes()
    }

    /// Serializes the dictionary into `out` (length-prefixed arenas; the
    /// hash indexes are rebuilt on decode).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for ns in [&self.resources, &self.predicates] {
            let (data, offsets) = ns.arena.raw_parts();
            out.put_u64_le(data.len() as u64);
            out.put_slice(data.as_bytes());
            out.put_u64_le(offsets.len() as u64);
            for &o in offsets {
                out.put_u64_le(o);
            }
        }
    }

    /// Decodes a dictionary previously written by
    /// [`Dictionary::encode_into`], advancing `buf` past it.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, DictDecodeError> {
        let mut namespaces = Vec::with_capacity(2);
        for _ in 0..2 {
            if buf.remaining() < 8 {
                return Err(DictDecodeError::Truncated);
            }
            let data_len = buf.get_u64_le() as usize;
            if buf.remaining() < data_len {
                return Err(DictDecodeError::Truncated);
            }
            let data = String::from_utf8(buf[..data_len].to_vec())
                .map_err(|_| DictDecodeError::Corrupt("non-UTF-8 arena payload"))?;
            buf.advance(data_len);
            if buf.remaining() < 8 {
                return Err(DictDecodeError::Truncated);
            }
            let n_offsets = buf.get_u64_le() as usize;
            if buf.remaining() < n_offsets.saturating_mul(8) {
                return Err(DictDecodeError::Truncated);
            }
            let mut offsets = Vec::with_capacity(n_offsets);
            for _ in 0..n_offsets {
                offsets.push(buf.get_u64_le());
            }
            let arena = StringArena::from_raw_parts(data, offsets)
                .ok_or(DictDecodeError::Corrupt("invalid offset table"))?;
            namespaces.push(Namespace::rebuild_index(arena));
        }
        let predicates = namespaces.pop().expect("two namespaces");
        let resources = namespaces.pop().expect("two namespaces");
        Ok(Dictionary {
            resources,
            predicates,
        })
    }

    pub(crate) fn resources_ns(&self) -> &Namespace {
        &self.resources
    }

    pub(crate) fn resources_ns_mut(&mut self) -> &mut Namespace {
        &mut self.resources
    }

    pub(crate) fn predicates_ns(&self) -> &Namespace {
        &self.predicates
    }

    pub(crate) fn predicates_ns_mut(&mut self) -> &mut Namespace {
        &mut self.predicates
    }

    /// Iterates `(id, term)` over all resources in id order.
    pub fn resources(&self) -> impl Iterator<Item = (Id, Term)> + '_ {
        (0..self.num_resources() as Id)
            .map(move |id| (id, self.decode_resource(id).expect("valid stored key")))
    }

    /// Iterates `(id, term)` over all predicates in id order.
    pub fn predicates(&self) -> impl Iterator<Item = (Id, Term)> + '_ {
        (0..self.num_predicates() as Id)
            .map(move |id| (id, self.decode_predicate(id).expect("valid stored key")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_in_insertion_order() {
        let mut d = Dictionary::new();
        for i in 0..100u32 {
            let id = d.encode_resource(&Term::iri(format!("http://e/{i}")));
            assert_eq!(id, i);
        }
        assert_eq!(d.num_resources(), 100);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut d = Dictionary::new();
        let r = d.encode_resource(&Term::iri("http://e/same"));
        let p = d.encode_predicate(&Term::iri("http://e/same"));
        assert_eq!(r, 0);
        assert_eq!(p, 0);
        assert_eq!(d.num_resources(), 1);
        assert_eq!(d.num_predicates(), 1);
    }

    #[test]
    fn paper_table1_example() {
        // Table 1 of the paper assigns integers to the teaching example.
        // We verify the same grouping behaviour: each distinct value one
        // id, idempotent re-encoding.
        let mut d = Dictionary::new();
        let names = [
            "ProfessorA",
            "Mathematics",
            "ProfessorB",
            "Chemistry",
            "ProfessorC",
            "Literature",
            "Physics",
            "University1",
            "University2",
        ];
        let ids: Vec<Id> = names.iter().map(|n| d.encode_resource(&Term::iri(*n))).collect();
        let teaches = d.encode_predicate(&Term::iri("teaches"));
        let works_for = d.encode_predicate(&Term::iri("worksFor"));
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
        assert_eq!((teaches, works_for), (0, 1));
        // Re-encoding returns identical ids.
        for (n, &id) in names.iter().zip(&ids) {
            assert_eq!(d.encode_resource(&Term::iri(*n)), id);
        }
    }

    #[test]
    fn lookup_without_insert() {
        let mut d = Dictionary::new();
        let t = Term::iri("http://e/a");
        assert_eq!(d.resource_id(&t), None);
        let id = d.encode_resource(&t);
        assert_eq!(d.resource_id(&t), Some(id));
        assert_eq!(d.predicate_id(&t), None);
        assert_eq!(d.num_resources(), 1);
    }

    #[test]
    fn decode_out_of_range() {
        let d = Dictionary::new();
        assert!(d.decode_resource(0).is_err());
        assert!(d.decode_predicate(7).is_err());
    }

    #[test]
    fn literals_and_blanks_coexist() {
        let mut d = Dictionary::new();
        let a = d.encode_resource(&Term::literal("x"));
        let b = d.encode_resource(&Term::blank("x"));
        let c = d.encode_resource(&Term::iri("x"));
        assert_eq!(3, [a, b, c].iter().collect::<std::collections::HashSet<_>>().len());
        assert_eq!(d.decode_resource(a).unwrap(), Term::literal("x"));
        assert_eq!(d.decode_resource(b).unwrap(), Term::blank("x"));
        assert_eq!(d.decode_resource(c).unwrap(), Term::iri("x"));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut d = Dictionary::new();
        for i in 0..500 {
            d.encode_resource(&Term::iri(format!("http://e/r{i}")));
        }
        d.encode_resource(&Term::lang_literal("héllo", "fr"));
        d.encode_predicate(&Term::iri("http://e/p"));
        let mut buf = Vec::new();
        d.encode_into(&mut buf);
        let mut slice = buf.as_slice();
        let back = Dictionary::decode_from(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.num_resources(), d.num_resources());
        assert_eq!(back.num_predicates(), d.num_predicates());
        // Index rebuilt correctly: lookups still work.
        assert_eq!(
            back.resource_id(&Term::iri("http://e/r250")),
            d.resource_id(&Term::iri("http://e/r250"))
        );
        assert_eq!(
            back.decode_resource(500).unwrap(),
            Term::lang_literal("héllo", "fr")
        );
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut d = Dictionary::new();
        d.encode_resource(&Term::iri("a"));
        let mut buf = Vec::new();
        d.encode_into(&mut buf);
        for cut in [0, 1, 7, buf.len() / 2, buf.len() - 1] {
            let mut slice = &buf[..cut];
            assert!(
                Dictionary::decode_from(&mut slice).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn memory_accounting_monotone() {
        let mut d = Dictionary::new();
        let before = d.memory_bytes();
        d.encode_resource(&Term::iri("http://example.org/some/long/resource"));
        assert!(d.memory_bytes() > before);
    }
}
