//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc) for dictionary string lookups.
//!
//! The default `std` hasher (SipHash-1-3) is DoS-resistant but measurably
//! slower for the short, trusted strings a loader hashes billions of
//! times. Dictionary keys come from data the operator chose to load, so
//! hash-flooding is not part of the threat model and the faster
//! multiply-xor hash is the right trade (see the Rust Performance Book's
//! "Hashing" chapter). Implemented inline to keep the workspace free of
//! extra dependencies.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash state. Use via [`FxBuildHasher`] in a `HashMap`, or call
/// [`fx_hash_bytes`] directly.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "a" and "a\0" differ.
            buf[7] = rem.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Murmur3-style finalizer: the bare multiply-xor state leaves the
        // low 32 bits untouched when inputs differ only in high bytes of
        // the final word (e.g. same-length IRIs differing in one digit),
        // which would collapse `HashMap` buckets. fmix64 restores
        // avalanche over all 64 bits.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hash a byte string with FxHash in one call.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_bytes(b"hello"), fx_hash_bytes(b"hello"));
    }

    #[test]
    fn distinguishes_common_strings() {
        let a = fx_hash_bytes(b"http://example.org/a");
        let b = fx_hash_bytes(b"http://example.org/b");
        assert_ne!(a, b);
    }

    #[test]
    fn length_sensitive_tail() {
        // Trailing NULs must not collide with the shorter string.
        assert_ne!(fx_hash_bytes(b"a"), fx_hash_bytes(b"a\0"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
    }

    #[test]
    fn empty_input_is_stable() {
        assert_eq!(fx_hash_bytes(b""), fx_hash_bytes(b""));
    }

    #[test]
    fn spread_over_buckets() {
        // Sanity check the hash actually spreads sequential keys: with
        // 1024 keys into 256 buckets no bucket should hold more than ~5x
        // the mean.
        let mut buckets = [0u32; 256];
        for i in 0..1024 {
            let s = format!("http://example.org/resource/{i}");
            buckets[(fx_hash_bytes(s.as_bytes()) % 256) as usize] += 1;
        }
        let max = buckets.iter().copied().max().unwrap();
        assert!(max <= 20, "suspiciously clustered hash: max bucket {max}");
    }
}
