//! # parj-dict — dictionary encoding for PARJ
//!
//! RDF terms (IRIs, literals, blank nodes) are mapped to dense integer
//! [`Id`]s so that the storage and join layers operate purely on integer
//! arrays, exactly as in Section 3 of the PARJ paper (Bilidas &
//! Koubarakis, EDBT 2019):
//!
//! > "we use dictionary encoding, by assigning an integer value to each
//! > value encountered in the RDF data. We use common numbering for
//! > values appearing in the subject and object positions and a
//! > different numbering for values appearing in the property position."
//!
//! Accordingly a [`Dictionary`] holds **two independent namespaces**:
//!
//! * **resources** — terms that occur in subject or object position,
//!   sharing one dense id space `0..num_resources()`;
//! * **predicates** — terms in predicate position, with their own dense
//!   id space `0..num_predicates()`.
//!
//! Dense resource ids are load-bearing: the ID-to-Position index of
//! `parj-store` allocates bitmap space proportional to the *maximum
//! resource id*, so gaps would waste memory (§4.2 of the paper).
//!
//! Terms are stored in an append-only string arena (one contiguous
//! `String` plus an offset table) rather than as individual allocations,
//! following the flat-storage idiom for memory-bound database code: a
//! decode is a bounds-checked slice of the arena, and the whole
//! dictionary is two `Vec`s plus the arena per namespace.
//!
//! ## Example
//!
//! ```
//! use parj_dict::{Dictionary, Term};
//!
//! let mut d = Dictionary::new();
//! let s = d.encode_resource(&Term::iri("http://example.org/ProfessorA"));
//! let p = d.encode_predicate(&Term::iri("http://example.org/teaches"));
//! let o = d.encode_resource(&Term::iri("http://example.org/Mathematics"));
//! assert_eq!(d.decode_resource(s).unwrap().as_iri().unwrap(),
//!            "http://example.org/ProfessorA");
//! assert_eq!(d.decode_predicate(p).unwrap().as_iri().unwrap(),
//!            "http://example.org/teaches");
//! // Encoding is idempotent:
//! assert_eq!(s, d.encode_resource(&Term::iri("http://example.org/ProfessorA")));
//! assert_ne!(s, o);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod delta;
mod dict;
mod hash;
mod sharded;
mod term;

pub use arena::StringArena;
pub use delta::{DictDelta, DictView};
pub use dict::{Dictionary, Namespace};
pub use hash::{fx_hash_bytes, FxBuildHasher, FxHasher};
pub use sharded::TermBatch;
pub use term::{Term, TermParseError};

/// Dense integer identifier for a dictionary-encoded RDF term.
///
/// The paper stores ids as 4-byte integers ("using 4-byte integers" in
/// §4.2); `u32` supports up to ~4.3 billion distinct resources, beyond
/// the 336 million of LUBM 10240.
pub type Id = u32;

/// Sentinel id meaning "absent"; never assigned to a term.
pub const NO_ID: Id = u32::MAX;

/// A dictionary-encoded triple: `(subject, predicate, object)` with the
/// subject/object drawn from the resource namespace and the predicate
/// from the predicate namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EncodedTriple {
    /// Subject resource id.
    pub s: Id,
    /// Predicate id (predicate namespace).
    pub p: Id,
    /// Object resource id.
    pub o: Id,
}

impl EncodedTriple {
    /// Convenience constructor.
    #[inline]
    pub const fn new(s: Id, p: Id, o: Id) -> Self {
        Self { s, p, o }
    }
}
