//! Deterministic two-phase parallel dictionary encoding.
//!
//! The bulk loader wants to intern millions of terms from many parser
//! threads, but PARJ's dense ids are load-bearing: snapshots, the
//! ID-to-Position bitmaps and every query plan assume the `i`-th
//! distinct term owns id `i` in first-occurrence order. A lock-per-term
//! concurrent map would make ids depend on thread interleaving, so the
//! loader splits interning into two phases instead:
//!
//! 1. **Collect** (parallel, read-only): each input chunk probes the
//!    existing namespace and gathers its *novel* candidate keys into a
//!    [`TermBatch`], deduplicated within the chunk, in encounter order.
//! 2. **Assign** ([`Namespace::extend_batches`]): candidates are
//!    hash-partitioned into shards; shards deduplicate *across* chunks
//!    in parallel (each shard owns a disjoint slice of hash space, so no
//!    two shards ever see the same key); then a single serial sweep
//!    appends the surviving first occurrences in `(chunk, position)`
//!    order.
//!
//! Because chunks are cut from the document in order, `(chunk,
//! position)` order *is* document order, so phase 2 assigns exactly the
//! ids a serial `encode_key` loop over the document would — independent
//! of thread count, shard count and chunk boundaries. That is the
//! determinism argument the loader's property tests enforce.

use std::collections::HashMap;

use parj_sync::atomic::{AtomicUsize, Ordering};
use parj_sync::{LockLevel, OrderedMutex};

use crate::dict::{Dictionary, Namespace};
use crate::hash::{fx_hash_bytes, FxBuildHasher};
use crate::{Id, NO_ID};

/// Candidate terms from one input chunk: canonical keys that were
/// absent from the namespace when collected, deduplicated within the
/// chunk, in encounter order, each paired with its precomputed hash.
#[derive(Debug, Default, Clone)]
pub struct TermBatch {
    hashes: Vec<u64>,
    keys: Vec<String>,
}

impl TermBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a candidate key with its precomputed `fx_hash_bytes`
    /// hash; returns its position in the batch. The caller is
    /// responsible for within-batch deduplication.
    pub fn push(&mut self, hash: u64, key: String) -> u32 {
        debug_assert_eq!(hash, fx_hash_bytes(key.as_bytes()));
        self.hashes.push(hash);
        self.keys.push(key);
        (self.keys.len() - 1) as u32
    }

    /// Number of candidates in the batch.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Hash of the `i`-th candidate.
    pub fn hash(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// Key of the `i`-th candidate.
    pub fn key(&self, i: usize) -> &str {
        &self.keys[i]
    }
}

/// Per-shard classification of the candidates routed to it.
#[derive(Default)]
struct ShardOut {
    /// `(chunk, pos)` of each first occurrence, in scan order.
    firsts: Vec<(u32, u32)>,
    /// `(chunk, pos, index into firsts)` for repeated occurrences.
    dups: Vec<(u32, u32, u32)>,
}

impl Namespace {
    /// Phase 2 of the two-phase encode: assigns ids to every candidate
    /// in `batches` and returns one id table per batch (`ids[c][i]` is
    /// the id of `batches[c].key(i)`).
    ///
    /// Candidates must have been collected against the *current* state
    /// of this namespace (absent at collect time); keys that slipped in
    /// since would be interned twice. Within a batch keys must be
    /// distinct; across batches duplicates are expected and resolved
    /// here. Ids come out identical to a serial `encode_key` sweep in
    /// `(chunk, position)` order, for any `shards`/`threads`.
    pub fn extend_batches(
        &mut self,
        batches: &[TermBatch],
        shards: usize,
        threads: usize,
    ) -> Vec<Vec<Id>> {
        let n_shards = shards.clamp(1, 1 << 16).next_power_of_two();
        let mask = (n_shards - 1) as u64;
        let total: usize = batches.iter().map(TermBatch::len).sum();
        let mut ids: Vec<Vec<Id>> = batches.iter().map(|b| vec![NO_ID; b.len()]).collect();
        if total == 0 {
            return ids;
        }

        // Cross-chunk dedup, one shard per disjoint hash-space slice.
        let classify = |shard: u64| -> ShardOut {
            let mut out = ShardOut::default();
            let mut map: HashMap<u64, Vec<u32>, FxBuildHasher> = HashMap::default();
            for (c, batch) in batches.iter().enumerate() {
                for i in 0..batch.len() {
                    let hash = batch.hash(i);
                    if hash & mask != shard {
                        continue;
                    }
                    let key = batch.key(i);
                    let candidates = map.entry(hash).or_default();
                    let hit = candidates.iter().copied().find(|&f| {
                        let (fc, fi) = out.firsts[f as usize];
                        batches[fc as usize].key(fi as usize) == key
                    });
                    match hit {
                        Some(f) => out.dups.push((c as u32, i as u32, f)),
                        None => {
                            candidates.push(out.firsts.len() as u32);
                            out.firsts.push((c as u32, i as u32));
                        }
                    }
                }
            }
            out
        };

        let threads = threads.max(1).min(n_shards);
        let outs: Vec<ShardOut> = if threads <= 1 {
            (0..n_shards as u64).map(classify).collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<ShardOut>> = Vec::new();
            slots.resize_with(n_shards, || None);
            let slot_ptrs: Vec<OrderedMutex<&mut Option<ShardOut>>> = slots
                .iter_mut()
                .map(|s| OrderedMutex::new(LockLevel::Staging, "staging.dict_slot", s))
                .collect();
            parj_sync::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        // ordering: Relaxed — shard ticket only; shard
                        // output is published through its slot Mutex and
                        // the scope join edge (loom_sharded model checks
                        // the id assignment stays deterministic).
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= n_shards {
                            break;
                        }
                        let out = classify(shard as u64);
                        **slot_ptrs[shard].lock() = Some(out);
                    });
                }
            });
            drop(slot_ptrs);
            slots
                .into_iter()
                .map(|s| s.expect("every shard classified"))
                .collect()
        };

        // Canonical assignment: append first occurrences in document
        // order — exactly the order a serial encode_key sweep sees.
        let mut merged: Vec<(u32, u32, u32, u32)> = Vec::new();
        for (s, out) in outs.iter().enumerate() {
            for (f, &(c, i)) in out.firsts.iter().enumerate() {
                merged.push((c, i, s as u32, f as u32));
            }
        }
        merged.sort_unstable();
        let mut first_ids: Vec<Vec<Id>> =
            outs.iter().map(|o| vec![NO_ID; o.firsts.len()]).collect();
        for &(c, i, s, f) in &merged {
            let (c, i) = (c as usize, i as usize);
            let id = self.insert_new(batches[c].hash(i), batches[c].key(i));
            ids[c][i] = id;
            first_ids[s as usize][f as usize] = id;
        }
        for (s, out) in outs.iter().enumerate() {
            for &(c, i, f) in &out.dups {
                ids[c as usize][i as usize] = first_ids[s][f as usize];
            }
        }
        ids
    }
}

impl Dictionary {
    /// Read access to the resource namespace, for batch collection
    /// pipelines that probe by precomputed hash.
    pub fn resource_namespace(&self) -> &Namespace {
        self.resources_ns()
    }

    /// Read access to the predicate namespace.
    pub fn predicate_namespace(&self) -> &Namespace {
        self.predicates_ns()
    }

    /// [`Namespace::extend_batches`] on the resource namespace.
    pub fn extend_resources(
        &mut self,
        batches: &[TermBatch],
        shards: usize,
        threads: usize,
    ) -> Vec<Vec<Id>> {
        self.resources_ns_mut().extend_batches(batches, shards, threads)
    }

    /// [`Namespace::extend_batches`] on the predicate namespace.
    pub fn extend_predicates(
        &mut self,
        batches: &[TermBatch],
        shards: usize,
        threads: usize,
    ) -> Vec<Vec<Id>> {
        self.predicates_ns_mut().extend_batches(batches, shards, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_of(ns: &Namespace, keys: &[&str], seen: &mut Vec<String>) -> TermBatch {
        // Collect phase as the loader performs it: skip keys already in
        // the namespace, dedup within the batch.
        let mut b = TermBatch::new();
        for &k in keys {
            let hash = fx_hash_bytes(k.as_bytes());
            if ns.get_key_hashed(hash, k).is_some() || seen.iter().any(|s| s == k) {
                continue;
            }
            seen.push(k.to_string());
            b.push(hash, k.to_string());
        }
        b
    }

    fn ids_match_serial(chunks: &[Vec<&str>], shards: usize, threads: usize) {
        // Serial oracle: encode_key in document order.
        let mut serial = Namespace::new();
        for chunk in chunks {
            for &k in chunk {
                serial.encode_key(k);
            }
        }

        let mut ns = Namespace::new();
        let mut batches = Vec::new();
        for chunk in chunks {
            let mut seen = Vec::new();
            batches.push(batch_of(&ns, chunk, &mut seen));
        }
        let ids = ns.extend_batches(&batches, shards, threads);

        assert_eq!(ns.len(), serial.len());
        for id in 0..ns.len() as Id {
            assert_eq!(ns.key(id), serial.key(id), "id {id} diverges");
        }
        for (c, b) in batches.iter().enumerate() {
            for (i, &id) in ids[c].iter().enumerate() {
                assert_eq!(id, serial.get_key(b.key(i)).unwrap());
            }
        }
    }

    #[test]
    fn matches_serial_insertion_order() {
        let chunks = vec![
            vec!["a", "b", "c", "a"],
            vec!["d", "b", "e"],
            vec!["c", "f", "a", "g"],
        ];
        for shards in [1, 2, 4, 32] {
            for threads in [1, 2, 4, 9] {
                ids_match_serial(&chunks, shards, threads);
            }
        }
    }

    #[test]
    fn respects_preexisting_terms() {
        let mut ns = Namespace::new();
        let pre_a = ns.encode_key("a");
        let pre_b = ns.encode_key("b");
        let mut seen = Vec::new();
        let batches = vec![batch_of(&ns, &["a", "x", "b", "y"], &mut seen)];
        // Only x and y are novel candidates.
        assert_eq!(batches[0].len(), 2);
        let ids = ns.extend_batches(&batches, 8, 2);
        assert_eq!(ids[0], vec![2, 3]);
        assert_eq!(ns.get_key("a"), Some(pre_a));
        assert_eq!(ns.get_key("b"), Some(pre_b));
        assert_eq!(ns.len(), 4);
    }

    #[test]
    fn many_chunks_many_keys() {
        let universe: Vec<String> = (0..500).map(|i| format!("http://e/r{}", i % 170)).collect();
        let chunks: Vec<Vec<&str>> = universe.chunks(37).map(|c| {
            c.iter().map(String::as_str).collect()
        }).collect();
        ids_match_serial(&chunks, 32, 4);
    }

    #[test]
    fn empty_batches_are_fine() {
        let mut ns = Namespace::new();
        let ids = ns.extend_batches(&[], 32, 4);
        assert!(ids.is_empty());
        let ids = ns.extend_batches(&[TermBatch::new(), TermBatch::new()], 32, 4);
        assert_eq!(ids, vec![Vec::<Id>::new(), Vec::new()]);
        assert!(ns.is_empty());
    }
}
