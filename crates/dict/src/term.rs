//! RDF term model and its canonical single-string encoding used as the
//! dictionary key.

use std::fmt;

/// Canonical keys for two-part literals are length-prefixed:
/// `l<len>:<lang><lexical>` / `T<len>:<datatype><lexical>`, where `<len>`
/// is the decimal byte length of the lang/datatype component. This is
/// unambiguous for *arbitrary* component content (even content containing
/// separators or digits), which matters because the dictionary must
/// round-trip whatever the parser accepted.
fn split_len_prefixed(rest: &str) -> Option<(&str, &str)> {
    let colon = rest.find(':')?;
    let len: usize = rest[..colon].parse().ok()?;
    let body = &rest[colon + 1..];
    if len <= body.len() && body.is_char_boundary(len) {
        Some((&body[..len], &body[len..]))
    } else {
        None
    }
}

/// An RDF term: IRI, blank node, or literal.
///
/// Literals carry an optional language tag (for `rdf:langString`) or an
/// optional datatype IRI; a literal with neither is a plain
/// `xsd:string`. Terms order lexicographically on their canonical key,
/// which gives a deterministic total order used by tests and snapshots.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI reference, stored without the surrounding `<` `>`.
    Iri(String),
    /// A blank node label, stored without the leading `_:`.
    BlankNode(String),
    /// A literal value.
    Literal {
        /// The lexical form (unescaped).
        lexical: String,
        /// Language tag, if any (mutually exclusive with `datatype`).
        lang: Option<String>,
        /// Datatype IRI, if any.
        datatype: Option<String>,
    },
}

/// Error produced when decoding a malformed canonical key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermParseError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for TermParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid canonical term key: {}", self.message)
    }
}

impl std::error::Error for TermParseError {}

impl Term {
    /// Creates an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        Term::Iri(iri.into())
    }

    /// Creates a blank node term from its label (without `_:`).
    pub fn blank(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into())
    }

    /// Creates a plain (`xsd:string`) literal.
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: None,
        }
    }

    /// Creates a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: Some(lang.into()),
            datatype: None,
        }
    }

    /// Creates a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// Returns the IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the lexical form if this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// True if this term is a literal. Literals may only appear in the
    /// object position of a triple.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// Encodes the term into the canonical single-string key stored in
    /// the dictionary arena. Inverse of [`Term::from_canonical_key`].
    pub fn canonical_key(&self) -> String {
        let mut out = String::new();
        self.write_canonical_key(&mut out);
        out
    }

    /// Appends the canonical key onto `out` (allocation-reuse variant of
    /// [`Term::canonical_key`]).
    pub fn write_canonical_key(&self, out: &mut String) {
        match self {
            Term::Iri(iri) => {
                out.push('I');
                out.push_str(iri);
            }
            Term::BlankNode(label) => {
                out.push('B');
                out.push_str(label);
            }
            Term::Literal {
                lexical,
                lang: Some(lang),
                ..
            } => {
                out.push('l');
                out.push_str(&lang.len().to_string());
                out.push(':');
                out.push_str(lang);
                out.push_str(lexical);
            }
            Term::Literal {
                lexical,
                datatype: Some(dt),
                ..
            } => {
                out.push('T');
                out.push_str(&dt.len().to_string());
                out.push(':');
                out.push_str(dt);
                out.push_str(lexical);
            }
            Term::Literal { lexical, .. } => {
                out.push('L');
                out.push_str(lexical);
            }
        }
    }

    /// Decodes a canonical key produced by [`Term::canonical_key`].
    pub fn from_canonical_key(key: &str) -> Result<Self, TermParseError> {
        let mut chars = key.chars();
        let tag = chars.next().ok_or_else(|| TermParseError {
            message: "empty key".to_string(),
        })?;
        let rest = chars.as_str();
        match tag {
            'I' => Ok(Term::Iri(rest.to_string())),
            'B' => Ok(Term::BlankNode(rest.to_string())),
            'L' => Ok(Term::literal(rest)),
            'l' => {
                let (lang, lexical) = split_len_prefixed(rest).ok_or_else(|| TermParseError {
                    message: "lang literal key missing length prefix".to_string(),
                })?;
                Ok(Term::lang_literal(lexical, lang))
            }
            'T' => {
                let (dt, lexical) = split_len_prefixed(rest).ok_or_else(|| TermParseError {
                    message: "typed literal key missing length prefix".to_string(),
                })?;
                Ok(Term::typed_literal(lexical, dt))
            }
            other => Err(TermParseError {
                message: format!("unknown tag character {other:?}"),
            }),
        }
    }
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax (with escaping).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BlankNode(label) => write!(f, "_:{label}"),
            Term::Literal {
                lexical,
                lang,
                datatype,
            } => {
                f.write_str("\"")?;
                for c in lexical.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")?;
                if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Term) {
        let key = t.canonical_key();
        let back = Term::from_canonical_key(&key).expect("decodable");
        assert_eq!(&back, t, "roundtrip failed for key {key:?}");
    }

    #[test]
    fn canonical_roundtrips() {
        roundtrip(&Term::iri("http://example.org/x"));
        roundtrip(&Term::iri(""));
        roundtrip(&Term::blank("b0"));
        roundtrip(&Term::literal("hello world"));
        roundtrip(&Term::literal(""));
        roundtrip(&Term::literal("with \u{1F} separator inside"));
        roundtrip(&Term::lang_literal("bonjour", "fr"));
        roundtrip(&Term::lang_literal("", "en-US"));
        roundtrip(&Term::typed_literal(
            "42",
            "http://www.w3.org/2001/XMLSchema#integer",
        ));
    }

    #[test]
    fn distinct_terms_have_distinct_keys() {
        let terms = [
            Term::iri("x"),
            Term::blank("x"),
            Term::literal("x"),
            Term::lang_literal("x", "en"),
            Term::typed_literal("x", "http://dt"),
            Term::lang_literal("", "enx"), // must not collide with lang "en", lex "x"
        ];
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                if i != j {
                    assert_ne!(a.canonical_key(), b.canonical_key(), "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn rejects_malformed_keys() {
        assert!(Term::from_canonical_key("").is_err());
        assert!(Term::from_canonical_key("Zoops").is_err());
        assert!(Term::from_canonical_key("lno-separator").is_err());
        assert!(Term::from_canonical_key("Tno-separator").is_err());
    }

    #[test]
    fn display_ntriples() {
        assert_eq!(Term::iri("http://e/x").to_string(), "<http://e/x>");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
        assert_eq!(Term::literal("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Term::lang_literal("hi", "en").to_string(), "\"hi\"@en");
        assert_eq!(
            Term::typed_literal("1", "http://dt").to_string(),
            "\"1\"^^<http://dt>"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::iri("x").as_iri(), Some("x"));
        assert_eq!(Term::literal("x").as_iri(), None);
        assert_eq!(Term::literal("x").as_literal(), Some("x"));
        assert!(Term::literal("x").is_literal());
        assert!(!Term::blank("x").is_literal());
    }
}
