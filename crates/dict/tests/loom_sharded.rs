//! Loom model of the two-phase sharded dictionary encode.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The determinism
//! argument in `sharded.rs` says ids are independent of thread
//! interleaving because phase 1 publishes shard outputs through slot
//! mutexes and the scope join edge, and the id-assigning sweep is
//! serial. The model re-runs `extend_batches` under injected schedules
//! and checks every one produces exactly the serial `encode_key` ids.
#![cfg(loom)]

use parj_dict::{fx_hash_bytes, Id, Namespace, TermBatch};

fn batch_of(ns: &Namespace, keys: &[&str], seen: &mut Vec<String>) -> TermBatch {
    let mut b = TermBatch::new();
    for &k in keys {
        let hash = fx_hash_bytes(k.as_bytes());
        if ns.get_key_hashed(hash, k).is_some() || seen.iter().any(|s| s == k) {
            continue;
        }
        seen.push(k.to_string());
        b.push(hash, k.to_string());
    }
    b
}

#[test]
fn loom_extend_batches_is_schedule_independent() {
    // Serial oracle, computed once outside the model.
    let chunks: Vec<Vec<&str>> = vec![
        vec!["a", "b", "c", "a"],
        vec!["d", "b", "e"],
        vec!["c", "f", "a", "g"],
    ];
    let mut serial = Namespace::new();
    for chunk in &chunks {
        for &k in chunk {
            serial.encode_key(k);
        }
    }
    let oracle: Vec<String> = (0..serial.len() as Id)
        .map(|id| serial.key(id).expect("oracle id in range").to_string())
        .collect();

    loom::model(|| {
        let mut ns = Namespace::new();
        let mut batches = Vec::new();
        for chunk in &chunks {
            let mut seen = Vec::new();
            batches.push(batch_of(&ns, chunk, &mut seen));
        }
        let ids = ns.extend_batches(&batches, 4, 3);

        assert_eq!(ns.len(), oracle.len(), "id universe diverged");
        for (id, key) in oracle.iter().enumerate() {
            assert_eq!(
                ns.key(id as Id),
                Some(key.as_str()),
                "id {id} diverged on this schedule"
            );
        }
        for (c, b) in batches.iter().enumerate() {
            for (i, &id) in ids[c].iter().enumerate() {
                assert_eq!(
                    ns.key(id),
                    Some(b.key(i)),
                    "returned id table wrong for chunk {c} slot {i}"
                );
            }
        }
    });
}
