//! Property-based tests for the dictionary: canonical-key round trips,
//! dense-id invariants, and serialization faithfulness under arbitrary
//! term mixes.

use proptest::prelude::*;

use parj_dict::{Dictionary, Term};

/// Strategy producing arbitrary (possibly adversarial) terms, including
/// strings containing the canonical-key separator and quotes.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\u{1F}éλ\"\\\\\n]{0,24}").unwrap()
}

fn arb_term() -> impl Strategy<Value = Term> {
    let lang = proptest::string::string_regex("[a-z]{2}(-[A-Z]{2})?").unwrap();
    prop_oneof![
        arb_text().prop_map(Term::iri),
        proptest::string::string_regex("[A-Za-z0-9]{1,12}")
            .unwrap()
            .prop_map(Term::blank),
        arb_text().prop_map(Term::literal),
        (arb_text(), lang).prop_map(|(l, g)| Term::lang_literal(l, g)),
        (arb_text(), arb_text()).prop_map(|(l, d)| Term::typed_literal(l, d)),
    ]
}

proptest! {
    /// canonical_key / from_canonical_key is the identity on terms.
    #[test]
    fn canonical_key_roundtrip(t in arb_term()) {
        let key = t.canonical_key();
        let back = Term::from_canonical_key(&key).unwrap();
        prop_assert_eq!(back, t);
    }

    /// encode is idempotent and decode inverts it, for every term in an
    /// arbitrary batch; ids are dense 0..n over distinct terms.
    #[test]
    fn encode_decode_inverse(terms in proptest::collection::vec(arb_term(), 1..64)) {
        let mut d = Dictionary::new();
        let ids: Vec<_> = terms.iter().map(|t| d.encode_resource(t)).collect();
        // Idempotency.
        for (t, &id) in terms.iter().zip(&ids) {
            prop_assert_eq!(d.encode_resource(t), id);
            prop_assert_eq!(d.resource_id(t), Some(id));
            prop_assert_eq!(d.decode_resource(id).unwrap(), t.clone());
        }
        // Density: ids form exactly 0..num_resources.
        let mut sorted: Vec<_> = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), d.num_resources());
        prop_assert_eq!(sorted, (0..d.num_resources() as u32).collect::<Vec<_>>());
        // Equal terms share ids, distinct terms do not.
        for (i, a) in terms.iter().enumerate() {
            for (j, b) in terms.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b, "terms {} vs {}", i, j);
            }
        }
    }

    /// Serialization round-trips the whole dictionary including lookups.
    #[test]
    fn serde_roundtrip(res in proptest::collection::vec(arb_term(), 0..40),
                       preds in proptest::collection::vec(arb_term(), 0..10)) {
        let mut d = Dictionary::new();
        for t in &res { d.encode_resource(t); }
        for t in &preds { d.encode_predicate(t); }
        let mut buf = Vec::new();
        d.encode_into(&mut buf);
        let mut slice = buf.as_slice();
        let back = Dictionary::decode_from(&mut slice).unwrap();
        prop_assert!(slice.is_empty());
        prop_assert_eq!(back.num_resources(), d.num_resources());
        prop_assert_eq!(back.num_predicates(), d.num_predicates());
        for t in &res {
            prop_assert_eq!(back.resource_id(t), d.resource_id(t));
        }
        for t in &preds {
            prop_assert_eq!(back.predicate_id(t), d.predicate_id(t));
        }
    }
}
