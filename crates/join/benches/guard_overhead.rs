//! Measures what the lifecycle guard costs on a probe-heavy plan.
//!
//! The guard is polled every [`GUARD_BATCH`] bindings; between polls a
//! worker pays one local counter decrement per binding. This bench
//! pins that claim: silent-mode execution of a two-step chain join —
//! probes dominate, emits are cheap, so any per-binding overhead is
//! maximally visible — compared across (a) no guard, (b) an unlimited
//! guard (cancel flag only), and (c) a guard with a far deadline and a
//! huge budget (all three checks armed). The expected spread is under
//! 2%; anything more is a hot-path regression.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use parj_dict::Term;
use parj_join::{
    execute_count, Atom, CancelToken, ExecOptions, PhysicalPlan, PlanStep, QueryGuard,
};
use parj_store::{SortOrder, StoreBuilder, TripleStore};

/// `NX` subjects fan out to `FAN` mid nodes; each mid node has one `q`
/// edge, so the chain `?x p ?y . ?y q ?z` probes `NX × FAN` times.
const NX: usize = 20_000;
const FAN: usize = 8;

fn store() -> TripleStore {
    let mut b = StoreBuilder::new();
    let p = Term::iri("http://e/p");
    let q = Term::iri("http://e/q");
    for x in 0..NX {
        let subj = Term::iri(format!("http://e/x{x}"));
        for f in 0..FAN {
            let mid = (x * 31 + f * 977) % (NX * 2);
            b.add_term_triple(&subj, &p, &Term::iri(format!("http://e/m{mid}")));
        }
    }
    for mid in 0..NX * 2 {
        b.add_term_triple(
            &Term::iri(format!("http://e/m{mid}")),
            &q,
            &Term::iri(format!("http://e/z{}", mid % 97)),
        );
    }
    b.build()
}

fn chain_plan(s: &TripleStore) -> PhysicalPlan {
    let pid = |name: &str| s.dict().predicate_id(&Term::iri(name)).unwrap();
    PhysicalPlan::new(
        vec![
            PlanStep {
                predicate: pid("http://e/p"),
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            },
            PlanStep {
                predicate: pid("http://e/q"),
                order: SortOrder::SO,
                key: Atom::Var(1),
                value: Atom::Var(2),
            },
        ],
        3,
        vec![0, 1, 2],
    )
    .unwrap()
}

fn bench_guard_overhead(c: &mut Criterion) {
    let s = store();
    let plan = chain_plan(&s);
    let mut group = c.benchmark_group("guard_overhead");

    for threads in [1usize, 4] {
        let base = ExecOptions::with_threads(threads);

        let unguarded = ExecOptions {
            guard: None,
            ..base.clone()
        };
        group.bench_function(format!("unguarded/{threads}t"), |b| {
            b.iter(|| {
                let (count, _) = execute_count(&s, &plan, &unguarded).expect("runs");
                black_box(count)
            });
        });

        group.bench_function(format!("guarded_unlimited/{threads}t"), |b| {
            b.iter(|| {
                // Fresh guard per iteration, as the engine does per run.
                let opts = ExecOptions {
                    guard: Some(Arc::new(QueryGuard::unlimited())),
                    ..base.clone()
                };
                let (count, _) = execute_count(&s, &plan, &opts).expect("runs");
                black_box(count)
            });
        });

        group.bench_function(format!("guarded_all_limits/{threads}t"), |b| {
            b.iter(|| {
                let opts = ExecOptions {
                    guard: Some(Arc::new(QueryGuard::new(
                        Some(Duration::from_secs(3600)),
                        Some(u64::MAX),
                        CancelToken::new(),
                    ))),
                    ..base.clone()
                };
                let (count, _) = execute_count(&s, &plan, &opts).expect("runs");
                black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_guard_overhead);
criterion_main!(benches);
