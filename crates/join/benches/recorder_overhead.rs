//! Measures what an attached [`Recorder`] costs on a probe-heavy plan.
//!
//! The recorder fires **once per execution** with aggregates the
//! workers maintain anyway (per-step counters and row counts), so the
//! per-binding hot path is untouched; the only added work is the
//! per-worker vector moves and one aggregation pass at coordinator
//! exit. This bench pins that claim on the same two-step chain join as
//! `guard_overhead`: silent mode, probes dominate, emits are cheap.
//! Compared: (a) no recorder, (b) a recorder feeding a full
//! `parj-obs` metrics registry the way the engine does. The expected
//! spread is under 2%; anything more is a plumbing regression.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use parj_dict::Term;
use parj_join::{
    execute_count, Atom, ExecOptions, ExecRecord, PhysicalPlan, PlanStep, Recorder,
};
use parj_obs::EngineMetrics;
use parj_store::{SortOrder, StoreBuilder, TripleStore};

/// `NX` subjects fan out to `FAN` mid nodes; each mid node has one `q`
/// edge, so the chain `?x p ?y . ?y q ?z` probes `NX × FAN` times.
const NX: usize = 20_000;
const FAN: usize = 8;

fn store() -> TripleStore {
    let mut b = StoreBuilder::new();
    let p = Term::iri("http://e/p");
    let q = Term::iri("http://e/q");
    for x in 0..NX {
        let subj = Term::iri(format!("http://e/x{x}"));
        for f in 0..FAN {
            let mid = (x * 31 + f * 977) % (NX * 2);
            b.add_term_triple(&subj, &p, &Term::iri(format!("http://e/m{mid}")));
        }
    }
    for mid in 0..NX * 2 {
        b.add_term_triple(
            &Term::iri(format!("http://e/m{mid}")),
            &q,
            &Term::iri(format!("http://e/z{}", mid % 97)),
        );
    }
    b.build()
}

fn chain_plan(s: &TripleStore) -> PhysicalPlan {
    let pid = |name: &str| s.dict().predicate_id(&Term::iri(name)).unwrap();
    PhysicalPlan::new(
        vec![
            PlanStep {
                predicate: pid("http://e/p"),
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            },
            PlanStep {
                predicate: pid("http://e/q"),
                order: SortOrder::SO,
                key: Atom::Var(1),
                value: Atom::Var(2),
            },
        ],
        3,
        vec![0, 1, 2],
    )
    .unwrap()
}

/// The engine's adapter shape: fold the record into a metrics registry.
struct MetricsRecorder(Arc<EngineMetrics>);

impl Recorder for MetricsRecorder {
    fn record_exec(&self, r: &ExecRecord<'_>) {
        let probe_rows: u64 = r.step_rows[..r.step_rows.len().saturating_sub(1)].iter().sum();
        let max = r.worker_units.iter().max().copied().unwrap_or(0);
        let total: u64 = r.worker_units.iter().sum();
        let imbalance = (max * r.worker_units.len() as u64 * 1000)
            .checked_div(total)
            .unwrap_or(1000);
        self.0.record_plan_exec(probe_rows, imbalance, r.morsels);
    }
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let s = store();
    let plan = chain_plan(&s);
    let mut group = c.benchmark_group("recorder_overhead");

    for threads in [1usize, 4] {
        let bare = ExecOptions::with_threads(threads);
        group.bench_function(format!("unrecorded/{threads}t"), |b| {
            b.iter(|| {
                let (count, _) = execute_count(&s, &plan, &bare).expect("runs");
                black_box(count)
            });
        });

        let metrics = Arc::new(EngineMetrics::new());
        let recorded = ExecOptions::builder()
            .threads(threads)
            .recorder(Some(Arc::new(MetricsRecorder(Arc::clone(&metrics))) as _))
            .build()
            .expect("valid options");
        group.bench_function(format!("recorded/{threads}t"), |b| {
            b.iter(|| {
                let (count, _) = execute_count(&s, &plan, &recorded).expect("runs");
                black_box(count)
            });
        });
        black_box(metrics.snapshot());
    }
    group.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);
