//! Algorithm 2 of the paper: the calibration micro-benchmark that finds
//! the window size at which binary search and sequential search cost the
//! same.
//!
//! > "This process takes place after data loading, prior to query
//! > execution, and tries to determine a distance (called WindowSize)
//! > such that when searching for a value ... at distance WindowSize
//! > from the position of the last accessed element ... BinarySearch and
//! > SequentialSearch perform roughly the same."
//!
//! Each iteration times `no_of_searches` probes spaced `WindowSize`
//! positions apart for both methods, then multiplies (or divides) the
//! window by the measured time ratio until the ratio drops below the
//! configured threshold. The paper reports convergence around **200
//! positions for binary search** and **20 for the ID-to-Position index**
//! on their hardware; those values double as our defaults when
//! calibration is skipped.

use std::hint::black_box;
use std::time::Instant;

use parj_dict::Id;
use parj_store::{IdPosIndex, SortOrder, TripleStore};

use crate::search::{binary_search_cursor, sequential_search};
use crate::stats::SearchStats;

/// Tuning for [`calibrate`] (the inputs of Algorithm 2 plus safety caps).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// `NoOfSearches`: probes per timing measurement.
    pub no_of_searches: usize,
    /// `StartingWindowSize`: initial window in positions.
    pub starting_window: usize,
    /// `Threshold`: stop once `max(tB,tS)/min(tB,tS)` ≤ this (the paper
    /// uses "a value close to 1.0"; we default to 1.10).
    pub threshold_ratio: f64,
    /// Safety cap on iterations (the paper's loop has no cap; timing
    /// noise can make the ratio hover just above the threshold).
    pub max_iterations: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            no_of_searches: 2_000,
            starting_window: 64,
            threshold_ratio: 1.10,
            max_iterations: 24,
        }
    }
}

/// Output of calibration: the break-even windows (in key-array
/// positions) for the two random-access methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationResult {
    /// Window below which sequential search beats binary search.
    pub window_binary: usize,
    /// Window below which sequential search beats the ID-to-Position
    /// index (smaller: the index is cheaper than binary search, §5.2.1).
    pub window_index: usize,
    /// Iterations Algorithm 2 ran for the binary-search calibration.
    pub iterations_binary: usize,
    /// Iterations for the index calibration.
    pub iterations_index: usize,
}

impl CalibrationResult {
    /// The paper's measured defaults (§5.2.1: "when binary search is
    /// used, the result threshold is about 200 positions, whereas when
    /// ID-to-Position index is used the threshold is about 20").
    pub fn paper_defaults() -> Self {
        CalibrationResult {
            window_binary: 200,
            window_index: 20,
            iterations_binary: 0,
            iterations_index: 0,
        }
    }
}

/// One timed measurement: `no_of_searches` probes spaced `window`
/// positions apart, for a given search closure. Returns elapsed seconds
/// (floored to a small epsilon so ratios stay finite).
fn time_probes<F>(arr: &[Id], window: usize, no_of_searches: usize, mut f: F) -> f64
where
    F: FnMut(&[Id], Id, &mut usize, &mut SearchStats) -> Option<usize>,
{
    let mut stats = SearchStats::new();
    let avg_gap = ((arr[arr.len() - 1] - arr[0]) as f64 / arr.len() as f64).max(1.0);
    let total_gap = (avg_gap * window as f64).max(1.0) as u64;
    let span = (arr[arr.len() - 1] - arr[0]).max(1) as u64;
    let start = Instant::now();
    let mut cursor = 0usize;
    let mut to_find = arr[0] as u64;
    for _ in 0..no_of_searches {
        black_box(f(arr, to_find as Id, &mut cursor, &mut stats));
        to_find += total_gap;
        if to_find > arr[arr.len() - 1] as u64 {
            // Wrap within the key range so probes stay in-distribution.
            to_find = arr[0] as u64 + (to_find - arr[0] as u64) % span;
            cursor = 0;
        }
    }
    black_box(&stats);
    start.elapsed().as_secs_f64().max(1e-9)
}

/// Largest single-step window multiplier we trust. Timing a handful of
/// probes over a tiny or constant array can produce ratios in the
/// thousands (both measurements sit at the clock floor); letting such a
/// fraction drive the window would slam it to an array boundary and
/// report a garbage break-even point.
const MAX_STEP_RATIO: f64 = 64.0;

/// Algorithm 2 for one random-access method supplied as `random_access`.
/// Returns `Some((window, iterations))`, or `None` when the array is too
/// degenerate to measure (empty, near-singleton, or all-equal keys) —
/// the caller substitutes the paper's published default for the method.
fn calibrate_method<F>(
    arr: &[Id],
    cfg: &CalibrationConfig,
    mut random_access: F,
) -> Option<(usize, usize)>
where
    F: FnMut(&[Id], Id, &mut usize, &mut SearchStats) -> Option<usize>,
{
    if arr.len() < 16 || arr[arr.len() - 1] == arr[0] {
        // Degenerate array: every probe hits the same position, so the
        // two methods cannot be told apart. Signal "unmeasurable".
        return None;
    }
    let mut next_window = cfg.starting_window.max(1) as f64;
    let mut window;
    let mut iterations = 0;
    loop {
        window = next_window;
        iterations += 1;
        let w = (window as usize).clamp(1, arr.len() - 1);
        let time_binary = time_probes(arr, w, cfg.no_of_searches, &mut random_access);
        let time_scan = time_probes(arr, w, cfg.no_of_searches, sequential_search);
        // Both timings are floored at 1e-9 s, so the ratio is finite;
        // clamp it anyway so a near-zero denominator (sub-resolution
        // measurement) cannot catapult the window across the array.
        let fraction = if time_binary > time_scan {
            let fraction = (time_binary / time_scan).clamp(1.0, MAX_STEP_RATIO);
            next_window = window * fraction;
            fraction
        } else {
            let fraction = (time_scan / time_binary).clamp(1.0, MAX_STEP_RATIO);
            next_window = window / fraction;
            fraction
        };
        // Keep the window inside the array, and stop per the paper's
        // condition or the safety cap.
        next_window = next_window.clamp(1.0, (arr.len() - 1) as f64);
        if fraction <= cfg.threshold_ratio || iterations >= cfg.max_iterations {
            break;
        }
    }
    Some(((window as usize).clamp(1, arr.len() - 1), iterations))
}

/// Runs Algorithm 2 against the largest replica of `store` — once for
/// binary search and once for the ID-to-Position index (when the store
/// has one) — and returns the two break-even windows.
///
/// The largest keys array is the representative workload: calibration
/// measures machine behaviour (cache hierarchy), not data distribution,
/// which the per-replica threshold conversion (see
/// [`crate::ThresholdTable`]) handles separately.
pub fn calibrate(store: &TripleStore, cfg: &CalibrationConfig) -> CalibrationResult {
    // Find the replica with the most keys.
    let mut best: Option<(&[Id], Option<&IdPosIndex>)> = None;
    for part in store.partitions() {
        for order in [SortOrder::SO, SortOrder::OS] {
            let r = part.replica(order);
            if best.is_none_or(|(keys, _)| r.keys().len() > keys.len()) {
                best = Some((r.keys(), r.idpos()));
            }
        }
    }
    let Some((keys, idpos)) = best else {
        let d = CalibrationResult::paper_defaults();
        return d;
    };
    if keys.len() < 16 {
        return CalibrationResult::paper_defaults();
    }
    // Each method falls back to the paper's published break-even window
    // independently when its measurement is degenerate.
    let defaults = CalibrationResult::paper_defaults();
    let (window_binary, iterations_binary) = calibrate_method(keys, cfg, binary_search_cursor)
        .unwrap_or((defaults.window_binary, 0));
    let (window_index, iterations_index) = match idpos {
        Some(idx) => calibrate_method(keys, cfg, |arr, v, cursor, stats| {
            stats.index_lookups += 1;
            stats.index_words += 2;
            let pos = idx.lookup(v);
            if let Some(p) = pos {
                *cursor = p;
            }
            let _ = arr;
            pos
        })
        .unwrap_or((defaults.window_index, 0)),
        None => (defaults.window_index, 0),
    };
    CalibrationResult {
        window_binary,
        window_index,
        iterations_binary,
        iterations_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_store::StoreBuilder;

    fn big_store(n: u32) -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..n {
            b.add_term_triple(
                &Term::iri(format!("s{i:07}")),
                &Term::iri("p"),
                &Term::iri(format!("o{:07}", i / 4)),
            );
        }
        b.build()
    }

    #[test]
    fn calibration_converges_to_sane_window() {
        let store = big_store(200_000);
        let cfg = CalibrationConfig {
            no_of_searches: 500,
            ..CalibrationConfig::default()
        };
        let result = calibrate(&store, &cfg);
        // The break-even window must be inside the array and positive;
        // its absolute value is hardware-dependent.
        assert!(result.window_binary >= 1);
        assert!(result.window_binary < 200_000);
        assert!(result.window_index >= 1);
        assert!(result.iterations_binary >= 1);
    }

    #[test]
    fn empty_and_tiny_stores_fall_back_to_defaults() {
        let store = StoreBuilder::new().build();
        let r = calibrate(&store, &CalibrationConfig::default());
        assert_eq!(r.window_binary, 200);
        let store = big_store(4);
        let r = calibrate(&store, &CalibrationConfig::default());
        assert_eq!(r.window_binary, 200);
        assert_eq!(r.window_index, 20);
    }

    #[test]
    fn degenerate_arrays_are_unmeasurable() {
        // Grid of degenerate key arrays: empty, singleton, tiny, and
        // all-equal (zero span). Every one must be reported as
        // unmeasurable — never a garbage window — and must not loop
        // forever or divide by zero along the way.
        let grid: Vec<Vec<Id>> = vec![
            vec![],
            vec![7],
            vec![3, 9],
            (0..15).collect(),
            vec![7; 100],
            vec![u32::MAX; 64],
            vec![0; 16],
        ];
        for arr in &grid {
            let got = calibrate_method(arr, &CalibrationConfig::default(), binary_search_cursor);
            assert_eq!(got, None, "array {:?}.. (len {})", arr.first(), arr.len());
        }
        // A minimal measurable array still yields a real window.
        let arr: Vec<Id> = (0..16).map(|i| i * 10).collect();
        let cfg = CalibrationConfig {
            no_of_searches: 50,
            max_iterations: 2,
            ..CalibrationConfig::default()
        };
        let (w, iters) = calibrate_method(&arr, &cfg, binary_search_cursor).unwrap();
        assert!((1..arr.len()).contains(&w));
        assert!(iters >= 1);
    }

    #[test]
    fn all_equal_keys_store_falls_back_to_paper_defaults() {
        // A store whose largest replica has all-equal keys (every triple
        // shares one subject) previously returned the starting window
        // (64) instead of the paper defaults (200/20).
        let mut b = StoreBuilder::new();
        for i in 0..100u32 {
            b.add_term_triple(
                &Term::iri("s"),
                &Term::iri("p"),
                &Term::iri(format!("o{i:03}")),
            );
        }
        let store = b.build();
        let r = calibrate(&store, &CalibrationConfig::default());
        // OS order has 100 distinct object keys, so that side may
        // measure; the degenerate SO side must not poison the result:
        // windows stay within the paper default or a measured range,
        // never the raw starting window on an unmeasurable array.
        assert!(r.window_binary >= 1);
        // Force the truly degenerate path through calibrate_method.
        let part = &store.partitions()[0];
        let so_keys = part.replica(SortOrder::SO).keys();
        assert_eq!(so_keys.len(), 1);
        assert_eq!(
            calibrate_method(so_keys, &CalibrationConfig::default(), binary_search_cursor),
            None
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let store = big_store(50_000);
        let cfg = CalibrationConfig {
            no_of_searches: 50,
            threshold_ratio: 1.0000001, // unreachable: forces the cap
            max_iterations: 3,
            ..CalibrationConfig::default()
        };
        let r = calibrate(&store, &cfg);
        assert!(r.iterations_binary <= 3);
        assert!(r.iterations_index <= 3);
    }
}
