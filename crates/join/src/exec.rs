//! The pipelined, zero-communication parallel executor.
//!
//! Execution follows §3 of the paper: every worker repeatedly draws a
//! **morsel** — a fixed-size contiguous chunk of the driver relation
//! (step 0 of the left-deep plan) — from a single atomic cursor, then
//! runs the *entire* pipeline for that morsel against the read-only
//! store, probing each subsequent replica with the adaptive search of
//! Algorithm 1 using its own per-step cursors. Workers share nothing
//! mutable: no exchange, no queues, no rehashing, no termination
//! protocol ("parallel execution without any form of communication or
//! synchronization between the workers"). Morsel-driven dispatch
//! (fixed [`ExecOptions::morsel_size`], default 16 384 driver keys)
//! replaces the original static `threads × shards_per_thread` split:
//! skewed key ranges no longer pin one worker while its siblings idle,
//! because the next chunk always goes to whichever worker frees up
//! first.
//!
//! Workers come from two places: an engine-owned persistent
//! [`WorkerPool`](crate::WorkerPool) (via [`execute_pooled`] — no
//! thread churn per query, the submitting thread participates and idle
//! pool workers join it), or per-query scoped threads (via [`execute`],
//! the fallback when no pool is attached).
//!
//! Results are **deterministic**: each participant keeps one sink per
//! morsel it ran, and the coordinator concatenates sinks in morsel
//! order. Morsel order is driver-domain order, so the merged output is
//! byte-identical no matter how many workers ran or how morsels
//! interleaved — pinned by the facade determinism suite.
//!
//! The driver domain is either the keys array of the first replica
//! (Example 3.1) or, when the first pattern has a constant key, the
//! value vector of that key's group (Example 3.2) — which is how highly
//! selective queries still parallelize.

use std::panic::AssertUnwindSafe;
use parj_sync::atomic::{AtomicUsize, Ordering};
use parj_sync::Arc;

use parj_dict::Id;
use parj_store::{DeltaOverlay, Group, Replica, ReplicaView, StoreView, TripleStore};

use crate::calibrate::CalibrationResult;
use crate::guard::{GuardTrip, QueryGuard, GUARD_BATCH};
use crate::pool::WorkerPool;
use crate::plan::{CompiledStep, DriverMode, DriverValue, KeyMode, PhysicalPlan, ValueMode, VarId};
use crate::search::{adaptive_search, ProbeStrategy};
use crate::stats::SearchStats;
use crate::threshold::ThresholdTable;

/// Aggregated internals of one plan execution, handed to a
/// [`Recorder`] after the workers finish. Plain borrowed data: the
/// recorder decides what to keep, the executor allocates nothing extra
/// for runs without one.
#[derive(Debug, Clone, Copy)]
pub struct ExecRecord<'a> {
    /// Result rows emitted (summed across workers).
    pub result_rows: u64,
    /// `step_rows[d]` = binding tuples entering probe step `d`;
    /// `step_rows[num_probe_steps]` = result rows emitted.
    pub step_rows: &'a [u64],
    /// Search counters per probe step (parallel to the plan's probe
    /// steps), merged across workers.
    pub step_search: &'a [SearchStats],
    /// Driver-side counters (group membership checks of Example 3.2
    /// style drivers).
    pub driver_search: SearchStats,
    /// All counters merged — probe steps plus driver.
    pub total_search: SearchStats,
    /// Work units per participating worker (rows emitted + array words
    /// touched): the load-balance signal of the morsel distribution.
    /// Under dynamic morsel pulling these converge toward uniform even
    /// on skewed drivers. Empty when the run failed before workers
    /// reported.
    pub worker_units: &'a [u64],
    /// Driver morsels actually executed (pulled off the shared cursor
    /// and run) across all workers.
    pub morsels: u64,
}

/// Receives per-execution internals (once per [`execute`] call, after
/// the join completes or fails). Implementations must be cheap and
/// lock-light: the engine's metrics registry is the intended consumer.
///
/// This is the executor's entire observability surface — when
/// [`ExecOptions::recorder`] is `None`, the only residual cost is
/// moving per-worker vectors the worker loop already maintains.
pub trait Recorder: Send + Sync {
    /// Called once per plan execution with the aggregated internals.
    fn record_exec(&self, record: &ExecRecord<'_>);
}

/// Default driver-morsel size, in driver keys (~16K): large enough
/// that the shared-cursor `fetch_add` and per-morsel sink swap are
/// noise, small enough that skewed key ranges split across workers.
pub const DEFAULT_MORSEL_SIZE: usize = 16_384;

/// Why an [`ExecOptionsBuilder`] rejected its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOptionsError {
    /// `threads` was zero — the executor needs at least one worker.
    ZeroThreads,
    /// The deprecated `shards_per_thread` knob was zero — the driver
    /// cannot be split into zero shards. Only produced by the
    /// deprecated [`ExecOptionsBuilder::shards_per_thread`] shim.
    ZeroShardsPerThread,
    /// `morsel_size` was zero — workers cannot pull empty morsels.
    ZeroMorselSize,
}

impl std::fmt::Display for ExecOptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecOptionsError::ZeroThreads => write!(f, "threads must be at least 1"),
            ExecOptionsError::ZeroShardsPerThread => {
                write!(f, "shards_per_thread must be at least 1")
            }
            ExecOptionsError::ZeroMorselSize => {
                write!(f, "morsel_size must be at least 1")
            }
        }
    }
}

impl std::error::Error for ExecOptionsError {}

/// Execution options.
#[derive(Clone)]
pub struct ExecOptions {
    /// Worker threads. In the paper "each worker corresponds exactly to
    /// one thread"; the optimum on their machine was 2× the core count
    /// (hyper-threading, §5.1). Must be ≥ 1; use [`ExecOptions::builder`]
    /// to get that checked at construction.
    pub threads: usize,
    /// Driver keys per morsel. Workers pull fixed-size contiguous
    /// chunks of this many driver keys off a shared atomic cursor;
    /// smaller morsels smooth load imbalance between skewed key ranges
    /// at the cost of more cursor traffic and per-morsel sink swaps.
    /// Must be ≥ 1. Results are byte-identical for every value — only
    /// scheduling granularity changes.
    pub morsel_size: usize,
    /// Probe strategy (Table 5's four columns).
    pub strategy: ProbeStrategy,
    /// Lifecycle guard shared by all workers of this run (cancellation,
    /// deadline, row budget). `None` runs unguarded — the executor still
    /// installs a private guard internally so a panicking worker stops
    /// its siblings.
    pub guard: Option<Arc<QueryGuard>>,
    /// Observer for per-execution internals; `None` skips all recording
    /// work beyond moving vectors the workers maintain anyway.
    pub recorder: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("threads", &self.threads)
            .field("morsel_size", &self.morsel_size)
            .field("strategy", &self.strategy)
            .field("guard", &self.guard)
            .field("recorder", &self.recorder.as_ref().map(|_| "Recorder"))
            .finish()
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            morsel_size: DEFAULT_MORSEL_SIZE,
            strategy: ProbeStrategy::AdaptiveBinary,
            guard: None,
            recorder: None,
        }
    }
}

impl ExecOptions {
    /// Options with `threads` workers and defaults otherwise.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// A builder that validates sizes at construction instead of the
    /// executor clamping them at use sites.
    pub fn builder() -> ExecOptionsBuilder {
        ExecOptionsBuilder {
            opts: ExecOptions::default(),
            legacy_zero_shards: false,
        }
    }

    /// Checks the invariants [`ExecOptionsBuilder::build`] enforces.
    pub fn validate(&self) -> Result<(), ExecOptionsError> {
        if self.threads == 0 {
            return Err(ExecOptionsError::ZeroThreads);
        }
        if self.morsel_size == 0 {
            return Err(ExecOptionsError::ZeroMorselSize);
        }
        Ok(())
    }
}

/// Builder for [`ExecOptions`] with validation at [`ExecOptionsBuilder::build`].
#[derive(Debug, Clone)]
pub struct ExecOptionsBuilder {
    opts: ExecOptions,
    /// The deprecated `shards_per_thread(0)` shim must keep reporting
    /// its historical error variant; remembered until `build`.
    legacy_zero_shards: bool,
}

impl ExecOptionsBuilder {
    /// Sets the worker thread count (validated ≥ 1 at build).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Sets the driver-morsel size in keys (validated ≥ 1 at build).
    pub fn morsel_size(mut self, morsel_size: usize) -> Self {
        self.opts.morsel_size = morsel_size;
        self
    }

    /// Maps the pre-morsel over-subscription knob onto an equivalent
    /// morsel size: `shards_per_thread = n` used to split the driver
    /// into finer static shards, so higher `n` now buys smaller
    /// morsels (`DEFAULT_MORSEL_SIZE / n`, floored at 1). Zero is
    /// rejected at build with the historical error.
    #[deprecated(
        since = "0.1.0",
        note = "static sharding was replaced by morsel-driven dispatch; use `morsel_size`"
    )]
    pub fn shards_per_thread(mut self, shards: usize) -> Self {
        match DEFAULT_MORSEL_SIZE.checked_div(shards) {
            None => self.legacy_zero_shards = true,
            Some(size) => self.opts.morsel_size = size.max(1),
        }
        self
    }

    /// Sets the probe strategy.
    pub fn strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.opts.strategy = strategy;
        self
    }

    /// Attaches a lifecycle guard.
    pub fn guard(mut self, guard: Option<Arc<QueryGuard>>) -> Self {
        self.opts.guard = guard;
        self
    }

    /// Attaches a per-execution recorder.
    pub fn recorder(mut self, recorder: Option<Arc<dyn Recorder>>) -> Self {
        self.opts.recorder = recorder;
        self
    }

    /// Validates and returns the options.
    pub fn build(self) -> Result<ExecOptions, ExecOptionsError> {
        if self.legacy_zero_shards {
            return Err(ExecOptionsError::ZeroShardsPerThread);
        }
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// Why an execution stopped before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecFailureKind {
    /// The guard's cancel token was tripped externally.
    Cancelled,
    /// The guard's wall-clock deadline passed.
    DeadlineExceeded {
        /// Time elapsed since the guard was armed.
        elapsed: std::time::Duration,
    },
    /// The guard's result-row budget was exhausted.
    BudgetExceeded {
        /// Rows counted when the budget tripped.
        rows: u64,
    },
    /// A worker panicked; the panic was contained and sibling workers
    /// were cancelled. The store is read-only during execution, so it
    /// remains fully usable afterwards.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The supplied [`ExecOptions`] were invalid (e.g. zero threads or
    /// shards). Raised instead of panicking when options bypass
    /// [`ExecOptions::builder`]'s validation.
    InvalidOptions {
        /// What was wrong with the options.
        message: String,
    },
}

impl ExecFailureKind {
    fn from_trip(trip: GuardTrip) -> Self {
        match trip {
            GuardTrip::Cancelled => ExecFailureKind::Cancelled,
            GuardTrip::DeadlineExceeded { elapsed } => ExecFailureKind::DeadlineExceeded { elapsed },
            GuardTrip::BudgetExceeded { rows } => ExecFailureKind::BudgetExceeded { rows },
        }
    }

    /// Panic > budget > deadline > cancel: when workers report
    /// different trips (e.g. a panic cancels siblings, who then report
    /// `Cancelled`), the most specific cause wins deterministically.
    fn severity(&self) -> u8 {
        match self {
            ExecFailureKind::Cancelled => 0,
            ExecFailureKind::DeadlineExceeded { .. } => 1,
            ExecFailureKind::BudgetExceeded { .. } => 2,
            ExecFailureKind::WorkerPanicked { .. } => 3,
            ExecFailureKind::InvalidOptions { .. } => 4,
        }
    }
}

/// An execution that stopped early, with the partial progress made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecFailure {
    /// What stopped the run.
    pub kind: ExecFailureKind,
    /// Search counters merged from the workers that returned.
    pub stats: SearchStats,
    /// Result rows credited to the guard before the stop (overshoots
    /// the budget by at most `threads × GUARD_BATCH`).
    pub rows: u64,
}

impl std::fmt::Display for ExecFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ExecFailureKind::Cancelled => write!(f, "query cancelled after {} rows", self.rows),
            ExecFailureKind::DeadlineExceeded { elapsed } => {
                write!(f, "query deadline exceeded after {elapsed:.2?} ({} rows)", self.rows)
            }
            ExecFailureKind::BudgetExceeded { rows } => {
                write!(f, "query result budget exceeded at {rows} rows")
            }
            ExecFailureKind::WorkerPanicked { message } => {
                write!(f, "query worker panicked: {message}")
            }
            ExecFailureKind::InvalidOptions { message } => {
                write!(f, "invalid execution options: {message}")
            }
        }
    }
}

impl std::error::Error for ExecFailure {}

/// Result of a guarded execution.
pub type ExecResult<T> = Result<T, Box<ExecFailure>>;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Receives result rows on a worker thread. One sink exists per worker;
/// they are merged (or summed) after the join, which is exactly the
/// paper's "silent mode" aggregation model.
pub trait Sink {
    /// Called once per result row with the projected bindings.
    fn push(&mut self, row: &[Id]);
}

/// Counts rows — the paper's silent mode.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    /// Rows seen.
    pub count: u64,
}

impl Sink for CountSink {
    #[inline]
    fn push(&mut self, _row: &[Id]) {
        self.count += 1;
    }
}

/// Materializes rows into a flat buffer (`arity` ids per row).
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// Flattened row-major results.
    pub data: Vec<Id>,
    /// Rows pushed. For projections of arity ≥ 1 this equals
    /// `data.len() / arity`; for arity-0 projections (ASK-style
    /// shapes) the flat buffer stays empty and this counter is the
    /// only record of how many rows the worker produced.
    pub rows: u64,
}

impl Sink for CollectSink {
    #[inline]
    fn push(&mut self, row: &[Id]) {
        self.data.extend_from_slice(row);
        self.rows += 1;
    }
}

/// Adapts a closure into a [`Sink`] (streaming result handling).
pub struct FnSink<F: FnMut(&[Id])>(pub F);

impl<F: FnMut(&[Id])> Sink for FnSink<F> {
    #[inline]
    fn push(&mut self, row: &[Id]) {
        (self.0)(row);
    }
}

/// Per-step resolved context shared read-only by all workers.
struct StepCtx<'a> {
    /// Probe source: the untouched/compacted CSR replica (the
    /// zero-overhead hot path) or the base replica plus resident
    /// delta runs that every probe merges on the fly.
    source: ReplicaView<'a>,
    threshold: i64,
    mode: CompiledStep,
}

/// Driver-domain storage: borrowed straight from a clean replica, or
/// materialized once per run when a delta overlay dirties the driver
/// predicate.
enum GroupRef<'a> {
    Borrowed(&'a [Id]),
    Owned(Vec<Id>),
}

impl GroupRef<'_> {
    #[inline]
    fn as_slice(&self) -> &[Id] {
        match self {
            GroupRef::Borrowed(s) => s,
            GroupRef::Owned(v) => v,
        }
    }
}

/// The resolved driver of step 0.
enum ResolvedDriver<'a> {
    Keys {
        replica: &'a Replica,
        bind_key: VarId,
        value: DriverValue,
    },
    /// Key scan over a delta-dirtied predicate: the distinct key union
    /// of base and add runs, materialized once on the submitting
    /// thread so the morsel grid is identical for every participant.
    /// Keys whose whole group was tombstoned still appear — their
    /// merged group is empty, so they emit nothing and only pad the
    /// scan domain.
    DirtyKeys {
        keys: Vec<Id>,
        base: Option<&'a Replica>,
        add: Option<&'a Replica>,
        del: Option<&'a Replica>,
        bind_key: VarId,
        value: DriverValue,
    },
    Group {
        group: GroupRef<'a>,
        bind_value: VarId,
    },
    Exist {
        present: bool,
    },
}

impl ResolvedDriver<'_> {
    fn domain(&self) -> usize {
        match self {
            ResolvedDriver::Keys { replica, .. } => replica.num_keys(),
            ResolvedDriver::DirtyKeys { keys, .. } => keys.len(),
            ResolvedDriver::Group { group, .. } => group.as_slice().len(),
            ResolvedDriver::Exist { .. } => 1,
        }
    }
}

#[inline]
fn group_contains(group: &[Id], value: Id, stats: &mut SearchStats) -> bool {
    stats.group_probes += 1;
    group.binary_search(&value).is_ok()
}

/// [`group_contains`] over either value representation: binary search
/// on raw groups, skip-table block pick + decoded-block scan on
/// block-compressed ones.
#[inline]
fn group_probe(group: Group<'_>, value: Id, stats: &mut SearchStats) -> bool {
    stats.group_probes += 1;
    group.contains(value)
}

/// The sorted value group for `key` in an optional delta run, counting
/// the lookup as a group probe. Missing run or absent key → empty.
/// Delta runs are always raw (only base/compacted replicas compress).
#[inline]
fn overlay_group<'a>(
    rep: Option<&'a Replica>,
    key: Id,
    stats: &mut SearchStats,
) -> &'a [Id] {
    match rep {
        Some(r) => {
            stats.group_probes += 1;
            r.values_for_key(key)
        }
        None => &[],
    }
}

/// The base-side group for `key`, across either representation.
#[inline]
fn overlay_base_group<'a>(
    rep: Option<&'a Replica>,
    key: Id,
    stats: &mut SearchStats,
) -> Group<'a> {
    match rep {
        Some(r) => {
            stats.group_probes += 1;
            r.group_for_key(key)
        }
        None => Group::Raw(&[]),
    }
}

/// Membership in the merged view `(base ∪ add) \ del` of one key's
/// groups. Runs are sorted and obey the overlay invariants (`add`
/// disjoint from `base`, `del` ⊆ `base`).
#[inline]
fn merged_group_contains(
    base_group: Group<'_>,
    add_group: &[Id],
    del_group: &[Id],
    value: Id,
    stats: &mut SearchStats,
) -> bool {
    if !del_group.is_empty() && group_contains(del_group, value, stats) {
        return false;
    }
    group_probe(base_group, value, stats)
        || (!add_group.is_empty() && group_contains(add_group, value, stats))
}

/// Worker-local execution state; one per thread. The only shared
/// mutable state is the lifecycle guard, polled every [`GUARD_BATCH`]
/// bindings.
struct Worker<'a, S> {
    ctxs: &'a [StepCtx<'a>],
    strategy: ProbeStrategy,
    projection: &'a [VarId],
    bindings: Vec<Id>,
    cursors: Vec<usize>,
    rowbuf: Vec<Id>,
    /// Search counters per probe step, plus one trailing slot for
    /// driver-side group checks. Kept per step so profiling costs
    /// nothing extra on the normal path (the merge happens once at
    /// worker exit).
    step_stats: Vec<SearchStats>,
    /// `step_rows[d]` = binding tuples entering probe step `d`;
    /// `step_rows[num_steps]` = result rows emitted.
    step_rows: Vec<u64>,
    sink: S,
    /// Shared lifecycle guard (always present; unguarded runs get a
    /// private unlimited one for panic isolation).
    guard: &'a QueryGuard,
    /// Bindings left before the next guard poll.
    countdown: u32,
    /// Rows emitted since the last poll, credited in batches.
    pending_rows: u64,
    /// Set when the guard tripped; loops unwind promptly once set.
    stop: bool,
    /// The trip that set `stop`, reported to the executor.
    trip: Option<GuardTrip>,
}

impl<'a, S: Sink> Worker<'a, S> {
    /// All counters merged (the executor's aggregate view).
    fn total_stats(&self) -> SearchStats {
        let mut total = SearchStats::default();
        for s in &self.step_stats {
            total.merge(s);
        }
        total
    }

    /// Counts one binding against the poll batch. The hot path is a
    /// decrement and a branch; the guard's atomics are only touched
    /// when the batch is exhausted.
    #[inline]
    fn tick(&mut self) {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.poll_guard();
        }
    }

    #[cold]
    fn poll_guard(&mut self) {
        self.countdown = GUARD_BATCH;
        let produced = std::mem::take(&mut self.pending_rows);
        if let Err(trip) = self.guard.poll(produced) {
            self.trip = Some(trip);
            self.stop = true;
        }
    }

    /// Credits rows still pending at worker exit. Only the row budget
    /// is enforced here: it caps result size, so it must hold even for
    /// queries too small to ever hit a poll boundary. A deadline or
    /// cancellation first noticed after the work finished does not
    /// discard a complete result.
    fn final_check(&mut self) {
        let produced = std::mem::take(&mut self.pending_rows);
        if let Err(trip @ GuardTrip::BudgetExceeded { .. }) = self.guard.poll(produced) {
            if self.trip.is_none() {
                self.trip = Some(trip);
            }
        }
    }

    #[inline]
    fn emit(&mut self) {
        self.pending_rows += 1;
        self.rowbuf.clear();
        for &v in self.projection {
            self.rowbuf.push(self.bindings[v as usize]);
        }
        self.sink.push(&self.rowbuf);
    }

    /// Runs probe steps `depth..` for the current bindings.
    fn descend(&mut self, depth: usize) {
        if self.stop {
            return;
        }
        self.tick();
        self.step_rows[depth] += 1;
        if depth == self.ctxs.len() {
            self.emit();
            return;
        }
        let ctx = &self.ctxs[depth];
        let source = ctx.source;
        let threshold = ctx.threshold;
        let mode = ctx.mode;
        let key_id = match mode.key {
            KeyMode::Const(c) => c,
            KeyMode::Var(v) => self.bindings[v as usize],
        };
        let (replica, add, del) = match source {
            ReplicaView::Clean(replica) => (Some(replica), None, None),
            ReplicaView::Dirty { base, add, del } => (base, add, del),
        };
        let base_group: Group<'a> = match replica {
            Some(replica) => match adaptive_search(
                replica.keys(),
                key_id,
                &mut self.cursors[depth],
                threshold,
                self.strategy,
                replica.idpos(),
                &mut self.step_stats[depth],
            ) {
                Some(pos) => replica.group_at(pos),
                None => Group::Raw(&[]),
            },
            None => Group::Raw(&[]),
        };
        if add.is_none() && del.is_none() {
            // Clean path: the group is exactly the replica's, and an
            // absent key short-circuits like it always did.
            if base_group.is_empty() {
                return;
            }
            match mode.value {
                ValueMode::Bind(v) => {
                    // The iterator borrows from the replica ('a), not
                    // from `self`, so recursion is free to re-borrow.
                    for val in base_group.iter() {
                        self.bindings[v as usize] = val;
                        self.descend(depth + 1);
                    }
                }
                ValueMode::CheckVar(v) => {
                    if group_probe(
                        base_group,
                        self.bindings[v as usize],
                        &mut self.step_stats[depth],
                    ) {
                        self.descend(depth + 1);
                    }
                }
                ValueMode::CheckConst(c) => {
                    if group_probe(base_group, c, &mut self.step_stats[depth]) {
                        self.descend(depth + 1);
                    }
                }
                ValueMode::CheckEqKey => {
                    if group_probe(base_group, key_id, &mut self.step_stats[depth]) {
                        self.descend(depth + 1);
                    }
                }
            }
            return;
        }
        // Dirty path: merge the delta runs into the probe on the fly.
        let add_group = overlay_group(add, key_id, &mut self.step_stats[depth]);
        let del_group = overlay_group(del, key_id, &mut self.step_stats[depth]);
        if base_group.is_empty() && add_group.is_empty() {
            return;
        }
        match mode.value {
            ValueMode::Bind(v) => {
                self.bind_merged(depth + 1, v, base_group, add_group, del_group);
            }
            ValueMode::CheckVar(v) => {
                if merged_group_contains(
                    base_group,
                    add_group,
                    del_group,
                    self.bindings[v as usize],
                    &mut self.step_stats[depth],
                ) {
                    self.descend(depth + 1);
                }
            }
            ValueMode::CheckConst(c) => {
                if merged_group_contains(
                    base_group,
                    add_group,
                    del_group,
                    c,
                    &mut self.step_stats[depth],
                ) {
                    self.descend(depth + 1);
                }
            }
            ValueMode::CheckEqKey => {
                if merged_group_contains(
                    base_group,
                    add_group,
                    del_group,
                    key_id,
                    &mut self.step_stats[depth],
                ) {
                    self.descend(depth + 1);
                }
            }
        }
    }

    /// Binds `var` to each value of the merged view `(base ∪ add) \ del`
    /// **in sorted order** — the order a compacted replica would yield —
    /// and descends into `next_depth` for each. Sorted-run two-pointer
    /// merge; no allocation.
    fn bind_merged(
        &mut self,
        next_depth: usize,
        var: VarId,
        base_group: Group<'a>,
        add_group: &'a [Id],
        del_group: &'a [Id],
    ) {
        let mut ai = 0;
        let mut di = 0;
        for val in base_group.iter() {
            if di < del_group.len() && del_group[di] == val {
                di += 1;
                continue;
            }
            while ai < add_group.len() && add_group[ai] < val {
                self.bindings[var as usize] = add_group[ai];
                ai += 1;
                self.descend(next_depth);
            }
            self.bindings[var as usize] = val;
            self.descend(next_depth);
        }
        while ai < add_group.len() {
            self.bindings[var as usize] = add_group[ai];
            ai += 1;
            self.descend(next_depth);
        }
    }

    /// Processes one shard `[lo, hi)` of the driver domain.
    fn run_range(&mut self, driver: &ResolvedDriver<'a>, lo: usize, hi: usize) {
        match driver {
            ResolvedDriver::Keys {
                replica,
                bind_key,
                value,
            } => {
                for pos in lo..hi {
                    if self.stop {
                        break;
                    }
                    self.tick();
                    let key = replica.key_at(pos);
                    self.bindings[*bind_key as usize] = key;
                    let group = replica.group_at(pos);
                    match *value {
                        DriverValue::Bind(v) => {
                            for val in group.iter() {
                                self.bindings[v as usize] = val;
                                self.descend(0);
                            }
                        }
                        DriverValue::CheckConst(c) => {
                            let slot = self.ctxs.len() + 1;
                            if group_probe(group, c, &mut self.step_stats[slot]) {
                                self.descend(0);
                            }
                        }
                        DriverValue::CheckEqKey => {
                            let slot = self.ctxs.len() + 1;
                            if group_probe(group, key, &mut self.step_stats[slot]) {
                                self.descend(0);
                            }
                        }
                    }
                }
            }
            ResolvedDriver::DirtyKeys {
                keys,
                base,
                add,
                del,
                bind_key,
                value,
            } => {
                let slot = self.ctxs.len() + 1;
                for &key in &keys[lo..hi] {
                    if self.stop {
                        break;
                    }
                    self.tick();
                    self.bindings[*bind_key as usize] = key;
                    // Dirty drivers pay one binary search per run and
                    // key (the merged key list has no positions into
                    // any single replica).
                    let base_group =
                        overlay_base_group(*base, key, &mut self.step_stats[slot]);
                    let add_group = overlay_group(*add, key, &mut self.step_stats[slot]);
                    let del_group = overlay_group(*del, key, &mut self.step_stats[slot]);
                    match *value {
                        DriverValue::Bind(v) => {
                            self.bind_merged(0, v, base_group, add_group, del_group);
                        }
                        DriverValue::CheckConst(c) => {
                            if merged_group_contains(
                                base_group,
                                add_group,
                                del_group,
                                c,
                                &mut self.step_stats[slot],
                            ) {
                                self.descend(0);
                            }
                        }
                        DriverValue::CheckEqKey => {
                            if merged_group_contains(
                                base_group,
                                add_group,
                                del_group,
                                key,
                                &mut self.step_stats[slot],
                            ) {
                                self.descend(0);
                            }
                        }
                    }
                }
            }
            ResolvedDriver::Group { group, bind_value } => {
                for &val in &group.as_slice()[lo..hi] {
                    if self.stop {
                        break;
                    }
                    self.bindings[*bind_value as usize] = val;
                    self.descend(0);
                }
            }
            ResolvedDriver::Exist { present } => {
                if *present && lo == 0 {
                    self.descend(0);
                }
            }
        }
    }
}

/// A [`StoreView`] over `store` plus an optional delta overlay — the
/// executor's uniform entry shape for clean and dirty stores.
fn make_view<'a>(
    store: &'a TripleStore,
    delta: Option<&'a DeltaOverlay>,
) -> StoreView<'a> {
    match delta {
        Some(d) => StoreView::with_delta(store, d),
        None => StoreView::base_only(store),
    }
}

/// Resolves replicas and the driver; `None` when a referenced predicate
/// has no partition (empty result).
fn prepare_exec<'a>(
    view: StoreView<'a>,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> Option<(Vec<StepCtx<'a>>, ResolvedDriver<'a>)> {
    let mut ctxs: Vec<StepCtx<'a>> = Vec::with_capacity(plan.compiled.len());
    for (step, mode) in plan.steps.iter().skip(1).zip(&plan.compiled) {
        let source = view.replica(step.predicate, step.order)?;
        let t = thresholds.get(step.predicate, step.order);
        let threshold = match opts.strategy {
            ProbeStrategy::AdaptiveIndex => t.index,
            _ => t.binary,
        };
        ctxs.push(StepCtx {
            source,
            threshold,
            mode: *mode,
        });
    }
    let step0 = &plan.steps[0];
    let driver_source = view.replica(step0.predicate, step0.order)?;
    let driver = match plan.driver {
        DriverMode::ScanKeys { bind_key, value } => match driver_source {
            ReplicaView::Clean(replica) => ResolvedDriver::Keys {
                replica,
                bind_key,
                value,
            },
            ReplicaView::Dirty { base, add, del } => ResolvedDriver::DirtyKeys {
                keys: driver_source.merged_keys(),
                base,
                add,
                del,
                bind_key,
                value,
            },
        },
        DriverMode::ScanGroup { key, bind_value } => match driver_source {
            ReplicaView::Clean(replica) => {
                // Morsel sharding slices the driver domain by range, so
                // a block-compressed group is materialized once here on
                // the submitting thread (raw groups stay borrowed).
                let g = replica.group_for_key(key);
                let group = match g.as_raw() {
                    Some(s) => GroupRef::Borrowed(s),
                    None => GroupRef::Owned(g.to_vec()),
                };
                ResolvedDriver::Group { group, bind_value }
            }
            ReplicaView::Dirty { .. } => {
                let mut owned = Vec::new();
                driver_source.merged_values_into(key, &mut owned);
                ResolvedDriver::Group {
                    group: GroupRef::Owned(owned),
                    bind_value,
                }
            }
        },
        DriverMode::Existence { key, value } => ResolvedDriver::Exist {
            present: driver_source.contains_pair(key, value),
        },
    };
    Some((ctxs, driver))
}

/// Runs the plan single-threaded over the morsel grid that parallel
/// workers would pull from, returning each morsel's **work units**
/// (rows emitted + array words touched).
///
/// Workers draw morsels dynamically from one atomic cursor, so on
/// ideal hardware the parallel makespan with `K` threads is bounded
/// below by `max(total/K, max_morsel)` — the benchmark harness reports
/// `total / max(total/K, max_morsel)` as the achievable speedup of the
/// morsel distribution, independently of how many cores the measuring
/// host happens to have.
///
/// Invalid [`ExecOptions`] (zero threads or morsel size) are rejected
/// with the same [`ExecOptionsError`] the executor itself reports,
/// instead of being conflated with the legitimately-empty answer of an
/// unanswerable plan (`Ok(vec![])`). This diagnostic helper never
/// panics.
pub fn morsel_loads(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> Result<Vec<u64>, ExecOptionsError> {
    morsel_loads_view(store, None, plan, opts, thresholds)
}

/// [`morsel_loads`] over a store plus an optional delta overlay.
pub fn morsel_loads_view(
    store: &TripleStore,
    delta: Option<&DeltaOverlay>,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> Result<Vec<u64>, ExecOptionsError> {
    opts.validate()?;
    let view = make_view(store, delta);
    let Some((ctxs, driver)) = prepare_exec(view, plan, opts, thresholds) else {
        return Ok(Vec::new());
    };
    let domain = driver.domain();
    let shard_size = opts.morsel_size;
    let guard = QueryGuard::unlimited();
    let mut worker = Worker {
        ctxs: &ctxs,
        strategy: opts.strategy,
        projection: &plan.projection,
        bindings: vec![0; plan.num_vars],
        cursors: vec![0; ctxs.len()],
        rowbuf: Vec::with_capacity(plan.projection.len()),
        step_stats: vec![SearchStats::default(); ctxs.len() + 2],
        step_rows: vec![0; ctxs.len() + 1],
        sink: CountSink::default(),
        guard: &guard,
        countdown: GUARD_BATCH,
        pending_rows: 0,
        stop: false,
        trip: None,
    };
    let mut loads = Vec::new();
    let mut prev = 0u64;
    let mut lo = 0usize;
    while lo < domain {
        let hi = (lo + shard_size).min(domain);
        worker.run_range(&driver, lo, hi);
        let now = worker.sink.count + worker.total_stats().words_touched();
        loads.push(now - prev);
        prev = now;
        lo = hi;
    }
    Ok(loads)
}

/// Pre-morsel name for [`morsel_loads`]; the chunk grid is now the
/// morsel grid rather than `threads × shards_per_thread` static shards.
#[deprecated(
    since = "0.1.0",
    note = "static sharding was replaced by morsel-driven dispatch; use `morsel_loads`"
)]
pub fn shard_loads(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> Result<Vec<u64>, ExecOptionsError> {
    morsel_loads(store, plan, opts, thresholds)
}

/// Size of the driver domain `plan` would scan — the number of keys of
/// the first replica, or the group length of a constant key (Example
/// 3.2). The engine uses this to implement §3's suggested extension
/// that "very simple and selective queries could be executed with fewer
/// resources": when the domain is tiny, spawning a full thread
/// complement costs more than the query itself.
pub fn driver_domain(store: &TripleStore, plan: &PhysicalPlan, opts: &ExecOptions) -> usize {
    driver_domain_view(store, None, plan, opts)
}

/// [`driver_domain`] over a store plus an optional delta overlay (a
/// dirty driver predicate scans the union of base and add keys).
pub fn driver_domain_view(
    store: &TripleStore,
    delta: Option<&DeltaOverlay>,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
) -> usize {
    let thresholds = ThresholdTable::default();
    match prepare_exec(make_view(store, delta), plan, opts, &thresholds) {
        Some((_, driver)) => driver.domain(),
        None => 0,
    }
}

/// Per-step execution profile of one plan (an `EXPLAIN ANALYZE`).
#[derive(Debug, Clone, Default)]
pub struct PlanProfile {
    /// `rows[d]` = binding tuples entering probe step `d`
    /// (`rows[num_probe_steps]` = result rows emitted).
    pub rows: Vec<u64>,
    /// Search counters per probe step (parallel to the plan's probe
    /// steps; driver-side group checks are in `driver`).
    pub step_search: Vec<SearchStats>,
    /// Driver-side counters (group membership checks of Example 3.2
    /// style drivers).
    pub driver: SearchStats,
}

impl PlanProfile {
    /// Result rows the plan emitted.
    pub fn results(&self) -> u64 {
        self.rows.last().copied().unwrap_or(0)
    }
}

/// Runs the plan single-threaded and returns its per-step profile —
/// rows flowing between pipeline stages and the search decisions each
/// probe step made. The diagnostics counterpart of `explain`.
pub fn execute_profiled(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> PlanProfile {
    execute_profiled_view(store, None, plan, opts, thresholds)
}

/// [`execute_profiled`] over a store plus an optional delta overlay.
pub fn execute_profiled_view(
    store: &TripleStore,
    delta: Option<&DeltaOverlay>,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> PlanProfile {
    let view = make_view(store, delta);
    let Some((ctxs, driver)) = prepare_exec(view, plan, opts, thresholds) else {
        return PlanProfile::default();
    };
    let guard = QueryGuard::unlimited();
    let mut worker = Worker {
        ctxs: &ctxs,
        strategy: opts.strategy,
        projection: &plan.projection,
        bindings: vec![0; plan.num_vars],
        cursors: vec![0; ctxs.len()],
        rowbuf: Vec::with_capacity(plan.projection.len()),
        step_stats: vec![SearchStats::default(); ctxs.len() + 2],
        step_rows: vec![0; ctxs.len() + 1],
        sink: CountSink::default(),
        guard: &guard,
        countdown: GUARD_BATCH,
        pending_rows: 0,
        stop: false,
        trip: None,
    };
    worker.run_range(&driver, 0, driver.domain());
    PlanProfile {
        rows: worker.step_rows,
        step_search: worker.step_stats[..ctxs.len()].to_vec(),
        driver: worker.step_stats[ctxs.len() + 1],
    }
}

/// Immutable per-run shape every participant shares: resolved probe
/// contexts, the driver, and the morsel grid.
struct RunShape<'a> {
    ctxs: &'a [StepCtx<'a>],
    driver: &'a ResolvedDriver<'a>,
    plan: &'a PhysicalPlan,
    strategy: ProbeStrategy,
    morsel_size: usize,
    domain: usize,
}

/// Everything one finished participant hands back to the coordinator:
/// its per-morsel sinks (tagged with morsel index for the
/// deterministic merge) plus its private counters.
struct ParticipantOutput<S> {
    morsels: Vec<(usize, S)>,
    stats: SearchStats,
    trip: Option<GuardTrip>,
    step_stats: Vec<SearchStats>,
    step_rows: Vec<u64>,
}

/// One participant's whole run: pull morsels off the shared cursor
/// until it drains (or the guard trips), keeping one sink per morsel.
/// Sequential-search cursors persist across the morsels one
/// participant runs — which morsels those are varies run to run, but
/// cursor state only changes *search cost*, never which rows match.
fn run_participant<S, F>(
    shape: &RunShape<'_>,
    guard: &QueryGuard,
    cursor: &AtomicUsize,
    factory: &F,
) -> ParticipantOutput<S>
where
    S: Sink,
    F: Fn() -> S,
{
    let mut w = Worker {
        ctxs: shape.ctxs,
        strategy: shape.strategy,
        projection: &shape.plan.projection,
        bindings: vec![0; shape.plan.num_vars],
        cursors: vec![0; shape.ctxs.len()],
        rowbuf: Vec::with_capacity(shape.plan.projection.len()),
        step_stats: vec![SearchStats::default(); shape.ctxs.len() + 2],
        step_rows: vec![0; shape.ctxs.len() + 1],
        sink: factory(),
        guard,
        countdown: GUARD_BATCH,
        pending_rows: 0,
        stop: false,
        trip: None,
    };
    // Check limits once up front so pre-cancelled tokens and
    // already-expired deadlines stop even queries too small to reach a
    // poll boundary.
    w.poll_guard();
    let mut morsels: Vec<(usize, S)> = Vec::new();
    while !w.stop {
        // ordering: Relaxed — the cursor is the only shared word;
        // morsel *contents* are read-only during execution, so no
        // publication edge is needed (the same ticket protocol is
        // modeled by loom_parallel in parj-store and loom_pool here).
        let m = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(lo) = m.checked_mul(shape.morsel_size) else {
            break;
        };
        if lo >= shape.domain {
            break;
        }
        let hi = (lo + shape.morsel_size).min(shape.domain);
        w.run_range(shape.driver, lo, hi);
        // One sink per morsel: the coordinator merges sinks in morsel
        // order, making results independent of worker interleaving.
        let full = std::mem::replace(&mut w.sink, factory());
        morsels.push((m, full));
    }
    w.final_check();
    let stats = w.total_stats();
    ParticipantOutput {
        morsels,
        stats,
        trip: w.trip,
        step_stats: w.step_stats,
        step_rows: w.step_rows,
    }
}

/// Folds participant outputs into the caller-facing result: merged
/// counters, the worst failure (panic > budget > deadline > cancel),
/// one recorder callback, and the deterministic morsel-ordered sinks.
fn merge_participants<S: Sink>(
    parts: Vec<ParticipantOutput<S>>,
    panicked: Option<String>,
    opts: &ExecOptions,
    guard: &QueryGuard,
    n_ctxs: usize,
) -> ExecResult<(Vec<S>, SearchStats)> {
    let mut total = SearchStats::default();
    let mut worst: Option<ExecFailureKind> =
        panicked.map(|message| ExecFailureKind::WorkerPanicked { message });
    let note = |kind: ExecFailureKind, worst: &mut Option<ExecFailureKind>| {
        if worst.as_ref().is_none_or(|w| kind.severity() > w.severity()) {
            *worst = Some(kind);
        }
    };

    // Aggregates for the recorder, built only when one is attached —
    // runs without a recorder pay nothing here.
    let recording = opts.recorder.is_some();
    let mut agg_step_stats = vec![SearchStats::default(); if recording { n_ctxs + 2 } else { 0 }];
    let mut agg_step_rows = vec![0u64; if recording { n_ctxs + 1 } else { 0 }];
    let mut worker_units: Vec<u64> = Vec::new();
    let mut morsel_count = 0u64;

    let mut tagged: Vec<(usize, S)> = Vec::new();
    for out in parts {
        total.merge(&out.stats);
        if let Some(trip) = out.trip {
            note(ExecFailureKind::from_trip(trip), &mut worst);
        }
        morsel_count += out.morsels.len() as u64;
        if recording {
            for (agg, s) in agg_step_stats.iter_mut().zip(&out.step_stats) {
                agg.merge(s);
            }
            for (agg, r) in agg_step_rows.iter_mut().zip(&out.step_rows) {
                *agg += r;
            }
            let rows = out.step_rows.last().copied().unwrap_or(0);
            worker_units.push(rows + out.stats.words_touched());
        }
        tagged.extend(out.morsels);
    }
    // Deterministic merge: morsel index order *is* driver-domain order,
    // so the concatenated sinks are byte-identical no matter which
    // worker ran which morsel, how many workers participated, or how
    // the pulls interleaved.
    tagged.sort_unstable_by_key(|(m, _)| *m);

    if let Some(rec) = &opts.recorder {
        // Recorded on success *and* failure: partial progress is what
        // the outcome counters need to explain a timeout or budget trip.
        rec.record_exec(&ExecRecord {
            result_rows: agg_step_rows.last().copied().unwrap_or(0),
            step_rows: &agg_step_rows,
            step_search: &agg_step_stats[..n_ctxs],
            driver_search: agg_step_stats[n_ctxs + 1],
            total_search: total,
            worker_units: &worker_units,
            morsels: morsel_count,
        });
    }
    if let Some(kind) = worst {
        return Err(Box::new(ExecFailure {
            kind,
            stats: total,
            rows: guard.rows(),
        }));
    }
    Ok((tagged.into_iter().map(|(_, s)| s).collect(), total))
}

/// Fires the recorder's empty record for plans that short-circuit
/// before any worker runs (a referenced predicate has no partition).
fn record_empty(opts: &ExecOptions) {
    if let Some(rec) = &opts.recorder {
        rec.record_exec(&ExecRecord {
            result_rows: 0,
            step_rows: &[],
            step_search: &[],
            driver_search: SearchStats::default(),
            total_search: SearchStats::default(),
            worker_units: &[],
            morsels: 0,
        });
    }
}

fn invalid_options(e: ExecOptionsError) -> Box<ExecFailure> {
    Box::new(ExecFailure {
        kind: ExecFailureKind::InvalidOptions {
            message: e.to_string(),
        },
        stats: SearchStats::default(),
        rows: 0,
    })
}

/// Executes `plan` against `store` with per-query scoped threads (or
/// inline when `opts.threads == 1`), creating sinks via `factory`, and
/// returns the morsel-ordered sinks plus merged search counters.
///
/// Concatenating the returned sinks yields rows in driver-domain
/// order — deterministic across thread counts and morsel sizes. This
/// is the pool-less fallback path; engines with a persistent
/// [`WorkerPool`](crate::WorkerPool) use [`execute_pooled`] instead.
pub fn execute<S, F>(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
    factory: F,
) -> ExecResult<(Vec<S>, SearchStats)>
where
    S: Sink + Send,
    F: Fn() -> S + Sync,
{
    execute_view(store, None, plan, opts, thresholds, factory)
}

/// [`execute`] over a store plus an optional delta overlay: probes on
/// delta-touched predicates merge the resident add/del runs on the
/// fly; untouched predicates keep the zero-overhead clean path. The
/// merged iteration order equals a compacted store's replica order, so
/// results stay byte-identical to a full rebuild at any threads ×
/// morsel-size combination.
pub fn execute_view<S, F>(
    store: &TripleStore,
    delta: Option<&DeltaOverlay>,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
    factory: F,
) -> ExecResult<(Vec<S>, SearchStats)>
where
    S: Sink + Send,
    F: Fn() -> S + Sync,
{
    if let Err(e) = opts.validate() {
        return Err(invalid_options(e));
    }
    let view = make_view(store, delta);
    let Some((ctxs, driver)) = prepare_exec(view, plan, opts, thresholds) else {
        record_empty(opts);
        return Ok((Vec::new(), SearchStats::default()));
    };

    // Every run is guarded: callers without limits get a private
    // unlimited guard so a panicking worker can still cancel siblings.
    let own_guard;
    let guard: &QueryGuard = match &opts.guard {
        Some(g) => g,
        None => {
            own_guard = QueryGuard::unlimited();
            &own_guard
        }
    };

    let domain = driver.domain();
    let shape = RunShape {
        ctxs: &ctxs,
        driver: &driver,
        plan,
        strategy: opts.strategy,
        morsel_size: opts.morsel_size,
        domain,
    };
    let cursor = AtomicUsize::new(0);
    // Workers beyond the morsel count would only spin the cursor once
    // and exit; don't spawn them.
    let num_morsels = domain.div_ceil(opts.morsel_size).max(1);
    let threads = opts.threads.min(num_morsels);

    let mut parts: Vec<ParticipantOutput<S>> = Vec::with_capacity(threads);
    let mut panicked: Option<String> = None;
    if threads <= 1 {
        // A panic is contained, trips the guard, and surfaces as
        // `WorkerPanicked` instead of aborting the process. The store
        // is read-only during execution, so it stays usable.
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_participant(&shape, guard, &cursor, &factory)
        })) {
            Ok(p) => parts.push(p),
            Err(payload) => {
                guard.cancel();
                panicked = Some(panic_message(payload.as_ref()));
            }
        }
    } else {
        parj_sync::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let shape = &shape;
                    let factory = &factory;
                    let cursor = &cursor;
                    scope.spawn(move || {
                        // Contained per worker: a panic trips the
                        // shared guard so siblings stop at their next
                        // poll, then surfaces as `WorkerPanicked`.
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            run_participant(shape, guard, cursor, factory)
                        }));
                        if result.is_err() {
                            guard.cancel();
                        }
                        result
                    })
                })
                .collect();
            for h in handles {
                // A panic inside the closure is already caught; a join
                // error can only carry a payload from the thread
                // runtime itself — fold it into the same per-worker
                // Err path instead of panicking here.
                match h.join().unwrap_or_else(Err) {
                    Ok(p) => parts.push(p),
                    Err(payload) => {
                        panicked = Some(panic_message(payload.as_ref()));
                    }
                }
            }
        });
    }
    merge_participants(parts, panicked, opts, guard, ctxs.len())
}

/// Shared mutable state of one pooled job, behind a mutex: finished
/// participants push their outputs; the submitter drains it after the
/// pool rendezvous guarantees no participant is still running.
struct PooledOutput<S> {
    parts: Vec<ParticipantOutput<S>>,
    panicked: Option<String>,
}

/// Executes `plan` on an engine-owned persistent [`WorkerPool`]: the
/// calling thread participates immediately and up to `threads − 1`
/// idle pool workers join it, pulling morsels off the query's shared
/// cursor. No threads are created or destroyed per query.
///
/// Participants are `'static` jobs, so the execution context arrives
/// as `Arc`s; each participant re-derives the read-only probe contexts
/// from them (cheap replica lookups). Results are identical to
/// [`execute`] — the same morsel-ordered deterministic merge — and a
/// participant panic fails only this query: the pool worker catches
/// it, cancels the query's guard, and returns to service.
pub fn execute_pooled<S, F>(
    pool: &WorkerPool,
    store: &Arc<TripleStore>,
    plan: &Arc<PhysicalPlan>,
    opts: &ExecOptions,
    thresholds: &Arc<ThresholdTable>,
    factory: F,
) -> ExecResult<(Vec<S>, SearchStats)>
where
    S: Sink + Send + 'static,
    F: Fn() -> S + Send + Sync + 'static,
{
    execute_pooled_view(pool, store, None, plan, opts, thresholds, factory)
}

/// [`execute_pooled`] over a store plus an optional delta overlay. The
/// overlay crosses the `'static` job boundary as an `Arc` clone; each
/// participant re-derives the same merged probe view, so pooled and
/// spawned dirty runs stay byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn execute_pooled_view<S, F>(
    pool: &WorkerPool,
    store: &Arc<TripleStore>,
    delta: Option<&Arc<DeltaOverlay>>,
    plan: &Arc<PhysicalPlan>,
    opts: &ExecOptions,
    thresholds: &Arc<ThresholdTable>,
    factory: F,
) -> ExecResult<(Vec<S>, SearchStats)>
where
    S: Sink + Send + 'static,
    F: Fn() -> S + Send + Sync + 'static,
{
    if let Err(e) = opts.validate() {
        return Err(invalid_options(e));
    }
    // Pre-flight on the submitting thread: unanswerable plans
    // short-circuit without touching the pool, and the driver domain
    // sizes the helper request.
    let preview = make_view(store, delta.map(|d| d.as_ref()));
    let (n_ctxs, domain) = match prepare_exec(preview, plan, opts, thresholds) {
        Some((ctxs, driver)) => (ctxs.len(), driver.domain()),
        None => {
            record_empty(opts);
            return Ok((Vec::new(), SearchStats::default()));
        }
    };
    let num_morsels = domain.div_ceil(opts.morsel_size).max(1);
    let helpers = opts.threads.saturating_sub(1).min(num_morsels - 1);
    if helpers == 0 {
        // Single-participant queries never touch the pool: run inline
        // on the calling thread with plain borrowed data.
        let inline = ExecOptions {
            threads: 1,
            ..opts.clone()
        };
        return execute_view(
            store,
            delta.map(|d| d.as_ref()),
            plan,
            &inline,
            thresholds,
            factory,
        );
    }

    let guard: Arc<QueryGuard> = match &opts.guard {
        Some(g) => Arc::clone(g),
        None => Arc::new(QueryGuard::unlimited()),
    };
    let output = Arc::new(parj_sync::OrderedMutex::new(
        parj_sync::LockLevel::ExecOutput,
        "exec.pooled_output",
        PooledOutput::<S> {
            parts: Vec::new(),
            panicked: None,
        },
    ));
    let cursor = Arc::new(AtomicUsize::new(0));
    let body: crate::pool::Participant = {
        let store = Arc::clone(store);
        let delta: Option<Arc<DeltaOverlay>> = delta.map(Arc::clone);
        let plan = Arc::clone(plan);
        let thresholds = Arc::clone(thresholds);
        let guard = Arc::clone(&guard);
        let output = Arc::clone(&output);
        let cursor = Arc::clone(&cursor);
        let factory = Arc::new(factory);
        // Threshold selection in prepare_exec depends only on the
        // strategy; strip the non-'static-irrelevant extras.
        let probe_opts = ExecOptions {
            guard: None,
            recorder: None,
            ..opts.clone()
        };
        Arc::new(move || {
            // Each participant re-derives the read-only probe contexts
            // from its own Arcs — nothing borrowed crosses the
            // 'static job boundary.
            let view = make_view(&store, delta.as_deref());
            let Some((ctxs, driver)) = prepare_exec(view, &plan, &probe_opts, &thresholds)
            else {
                return;
            };
            let shape = RunShape {
                ctxs: &ctxs,
                driver: &driver,
                plan: &plan,
                strategy: probe_opts.strategy,
                morsel_size: probe_opts.morsel_size,
                domain: shape_domain(&driver),
            };
            // Contained per participant: a panic trips the shared
            // guard (stopping siblings at their next poll), is
            // recorded for the submitter's merge, and never unwinds
            // the pool worker.
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_participant(&shape, &guard, &cursor, factory.as_ref())
            }));
            match result {
                Ok(p) => output.lock().parts.push(p),
                Err(payload) => {
                    guard.cancel();
                    let mut out = output.lock();
                    if out.panicked.is_none() {
                        out.panicked = Some(panic_message(payload.as_ref()));
                    }
                }
            }
        })
    };
    // The pool's rendezvous returns only after every participant that
    // joined has finished, so draining `output` afterwards sees the
    // complete set.
    pool.run(helpers, body);
    let mut locked = output.lock();
    let parts = std::mem::take(&mut locked.parts);
    let panicked = locked.panicked.take();
    drop(locked);
    merge_participants(parts, panicked, opts, &guard, n_ctxs)
}

fn shape_domain(driver: &ResolvedDriver<'_>) -> usize {
    driver.domain()
}

/// Builds a threshold table from the paper's default calibration windows
/// (used when the caller has not run [`crate::calibrate`]).
pub fn default_thresholds(store: &TripleStore) -> ThresholdTable {
    ThresholdTable::from_calibration(store, &CalibrationResult::paper_defaults())
}

/// Silent-mode execution: returns only the result count (and counters).
pub fn execute_count(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
) -> ExecResult<(u64, SearchStats)> {
    let thresholds = default_thresholds(store);
    execute_count_with(store, plan, opts, &thresholds)
}

/// Silent-mode execution with caller-supplied thresholds.
pub fn execute_count_with(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
    thresholds: &ThresholdTable,
) -> ExecResult<(u64, SearchStats)> {
    let (sinks, stats) = execute(store, plan, opts, thresholds, CountSink::default)?;
    Ok((sinks.iter().map(|s| s.count).sum(), stats))
}

/// Materializing execution: collects all result rows (order unspecified
/// across workers) into one flat [`crate::RowBatch`] — worker sink buffers are
/// concatenated wholesale, never exploded into per-row allocations.
///
/// Zero-arity plans (pure existence) carry no id payload; the batch
/// still reports the real match count through its explicit zero-arity
/// row counter.
pub fn execute_collect(
    store: &TripleStore,
    plan: &PhysicalPlan,
    opts: &ExecOptions,
) -> ExecResult<(crate::RowBatch, SearchStats)> {
    let thresholds = default_thresholds(store);
    let (sinks, stats) = execute(store, plan, opts, &thresholds, CollectSink::default)?;
    let arity = plan.projection.len();
    let mut rows = crate::RowBatch::new(arity);
    for sink in &sinks {
        if arity == 0 {
            rows.extend_rows(sink.rows as usize);
        } else {
            rows.extend_flat(&sink.data);
        }
    }
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Atom, PlanStep};
    use parj_dict::Term;
    use parj_store::{SortOrder, StoreBuilder};

    /// A small university graph: professors teach courses and work for
    /// universities; students take courses and are advised by profs.
    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        let mut add = |s: &str, p: &str, o: &str| {
            b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
        };
        for (prof, unis) in [("ProfA", "U1"), ("ProfB", "U2"), ("ProfC", "U2")] {
            add(prof, "worksFor", unis);
        }
        for (prof, course) in [
            ("ProfA", "Math"),
            ("ProfA", "Physics"),
            ("ProfB", "Chem"),
            ("ProfC", "Lit"),
        ] {
            add(prof, "teaches", course);
        }
        for (stud, course) in [
            ("Stud1", "Math"),
            ("Stud1", "Chem"),
            ("Stud2", "Math"),
            ("Stud3", "Lit"),
            ("Stud3", "Physics"),
        ] {
            add(stud, "takes", course);
        }
        for (stud, prof) in [("Stud1", "ProfA"), ("Stud2", "ProfA"), ("Stud3", "ProfC")] {
            add(stud, "advisor", prof);
        }
        b.build()
    }

    fn pid(store: &TripleStore, name: &str) -> Id {
        store.dict().predicate_id(&Term::iri(name)).unwrap()
    }

    fn rid(store: &TripleStore, name: &str) -> Id {
        store.dict().resource_id(&Term::iri(name)).unwrap()
    }

    /// Brute-force oracle over the store's triples for a conjunctive
    /// pattern list given as (subject, predicate-id, object) atoms.
    fn oracle(store: &TripleStore, patterns: &[(Atom, Id, Atom)], num_vars: usize) -> Vec<Vec<Id>> {
        let triples: Vec<_> = store.iter_triples().collect();
        let mut results = Vec::new();
        let mut bindings: Vec<Option<Id>> = vec![None; num_vars];
        fn rec(
            patterns: &[(Atom, Id, Atom)],
            triples: &[parj_dict::EncodedTriple],
            bindings: &mut [Option<Id>],
            results: &mut Vec<Vec<Id>>,
        ) {
            let Some(&(s, p, o)) = patterns.first() else {
                results.push(bindings.iter().map(|b| b.unwrap_or(0)).collect());
                return;
            };
            for t in triples {
                if t.p != p {
                    continue;
                }
                let mut local = bindings.to_vec();
                let ok = |atom: Atom, id: Id, b: &mut [Option<Id>]| match atom {
                    Atom::Const(c) => c == id,
                    Atom::Var(v) => match b[v as usize] {
                        Some(x) => x == id,
                        None => {
                            b[v as usize] = Some(id);
                            true
                        }
                    },
                };
                if ok(s, t.s, &mut local) && ok(o, t.o, &mut local) {
                    rec(&patterns[1..], triples, &mut local, results);
                }
            }
        }
        rec(patterns, &triples, &mut bindings, &mut results);
        results.sort();
        results.dedup();
        results
    }

    fn check_plan_against_oracle(
        store: &TripleStore,
        steps: Vec<PlanStep>,
        num_vars: usize,
        patterns: &[(Atom, Id, Atom)],
    ) {
        let projection: Vec<VarId> = (0..num_vars as VarId).collect();
        let plan = PhysicalPlan::new(steps, num_vars, projection).unwrap();
        let expected = oracle(store, patterns, num_vars);
        for strategy in [
            ProbeStrategy::AlwaysBinary,
            ProbeStrategy::AdaptiveBinary,
            ProbeStrategy::AlwaysIndex,
            ProbeStrategy::AdaptiveIndex,
            ProbeStrategy::AlwaysSequential,
        ] {
            for threads in [1, 4] {
                let opts = ExecOptions {
                    threads,
                    morsel_size: 3,
                    strategy,
                    guard: None,
                    recorder: None,
                };
                let (mut batch, _) = execute_collect(store, &plan, &opts).expect("runs");
                batch.sort_unstable();
                batch.dedup();
                assert_eq!(
                    batch.into_rows(),
                    expected,
                    "strategy {strategy} threads {threads} disagreed with oracle"
                );
            }
        }
    }

    #[test]
    fn example_31_subject_subject_join() {
        // ?x teaches ?z . ?x worksFor ?y
        let s = store();
        let teaches = pid(&s, "teaches");
        let works = pid(&s, "worksFor");
        check_plan_against_oracle(
            &s,
            vec![
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: works,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(2),
                },
            ],
            3,
            &[
                (Atom::Var(0), teaches, Atom::Var(1)),
                (Atom::Var(0), works, Atom::Var(2)),
            ],
        );
    }

    /// Builds an overlay with mutations and a from-scratch rebuilt
    /// store holding the same visible triples (same dictionary ids).
    fn dirty_and_rebuilt() -> (TripleStore, parj_store::DeltaOverlay, TripleStore) {
        let base = store();
        let mut ov = parj_store::DeltaOverlay::new(&base);
        let teaches = pid(&base, "teaches");
        let works = pid(&base, "worksFor");
        // ProfB stops teaching Chem and starts teaching Math + Lit;
        // ProfC moves to U1.
        let (profb, profc) = (rid(&base, "ProfB"), rid(&base, "ProfC"));
        let (math, lit, chem) = (rid(&base, "Math"), rid(&base, "Lit"), rid(&base, "Chem"));
        let (u1, u2) = (rid(&base, "U1"), rid(&base, "U2"));
        let mut ins = vec![(profb, math), (profb, lit)];
        ins.sort_unstable();
        ov.apply_pred(&base, teaches, &ins, &[(profb, chem)]);
        ov.apply_pred(&base, works, &[(profc, u1)], &[(profc, u2)]);
        assert_eq!(ov.check_invariants(&base), Ok(()));

        let mut b = StoreBuilder::new();
        *b.dict_mut() = base.dict().clone();
        for t in ov.iter_merged_triples(&base) {
            b.add_encoded(t);
        }
        let rebuilt = b.build();
        assert_eq!(rebuilt.num_triples(), ov.visible_triples(&base));
        (base, ov, rebuilt)
    }

    fn collect_rows(
        store: &TripleStore,
        delta: Option<&parj_store::DeltaOverlay>,
        plan: &PhysicalPlan,
        opts: &ExecOptions,
    ) -> Vec<Vec<Id>> {
        let thresholds = default_thresholds(store);
        let (sinks, _) =
            execute_view(store, delta, plan, opts, &thresholds, CollectSink::default)
                .expect("runs");
        let arity = plan.projection.len().max(1);
        let mut rows = Vec::new();
        for sink in &sinks {
            for row in sink.data.chunks(arity) {
                rows.push(row.to_vec());
            }
        }
        rows
    }

    #[test]
    fn compressed_store_rows_equal_raw_byte_for_byte() {
        // The same graph built raw and block-compressed must emit the
        // *unsorted* row stream identically at every strategy, thread
        // count and morsel size — compression is invisible to results.
        let build = |compress: Option<usize>| {
            let mut b = StoreBuilder::new();
            for i in 0..3000u32 {
                b.add_term_triple(
                    &Term::iri(format!("s{}", i % 6)),
                    &Term::iri("p0"),
                    &Term::iri(format!("m{}", i % 500)),
                );
                b.add_term_triple(
                    &Term::iri(format!("m{}", i % 500)),
                    &Term::iri("p1"),
                    &Term::iri(format!("t{}", (i * 7) % 90)),
                );
            }
            b.build_with(parj_store::StoreOptions {
                compress_min_values: compress,
                ..Default::default()
            })
        };
        let raw = build(None);
        let zip = build(Some(16));
        let p0 = pid(&raw, "p0");
        let p1 = pid(&raw, "p1");
        assert!(
            zip.replica(p0, SortOrder::SO).unwrap().is_compressed(),
            "long-run replica must compress"
        );
        // ?x p0 ?y . ?y p1 ?z
        let plan = PhysicalPlan::new(
            vec![
                PlanStep {
                    predicate: p0,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: p1,
                    order: SortOrder::SO,
                    key: Atom::Var(1),
                    value: Atom::Var(2),
                },
            ],
            3,
            vec![0, 1, 2],
        )
        .unwrap();
        for strategy in [
            ProbeStrategy::AdaptiveIndex,
            ProbeStrategy::AdaptiveBinary,
            ProbeStrategy::AlwaysSequential,
        ] {
            for threads in [1usize, 4] {
                for morsel in [7usize, 16_384] {
                    let opts = ExecOptions {
                        threads,
                        morsel_size: morsel,
                        strategy,
                        guard: None,
                        recorder: None,
                    };
                    let a = collect_rows(&raw, None, &plan, &opts);
                    let b = collect_rows(&zip, None, &plan, &opts);
                    assert_eq!(
                        a, b,
                        "strategy {strategy} threads {threads} morsel {morsel}"
                    );
                    assert!(!a.is_empty());
                }
            }
        }
    }

    #[test]
    fn dirty_view_rows_equal_rebuilt_store_byte_for_byte() {
        // The merged probe order must equal a compacted replica's
        // order, so the *unsorted* row stream — not just the row set —
        // matches a from-scratch rebuild at every dispatch shape.
        let (base, ov, rebuilt) = dirty_and_rebuilt();
        let teaches = pid(&base, "teaches");
        let works = pid(&base, "worksFor");
        let plan = PhysicalPlan::new(
            vec![
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: works,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(2),
                },
            ],
            3,
            vec![0, 1, 2],
        )
        .unwrap();
        for strategy in [ProbeStrategy::AdaptiveIndex, ProbeStrategy::AlwaysSequential] {
            for threads in [1usize, 4] {
                for morsel in [1usize, 2, 16_384] {
                    let opts = ExecOptions {
                        threads,
                        morsel_size: morsel,
                        strategy,
                        guard: None,
                        recorder: None,
                    };
                    let dirty = collect_rows(&base, Some(&ov), &plan, &opts);
                    let clean = collect_rows(&rebuilt, None, &plan, &opts);
                    assert_eq!(
                        dirty, clean,
                        "strategy {strategy} threads {threads} morsel {morsel}"
                    );
                    assert!(!dirty.is_empty(), "join must produce rows");
                }
            }
        }
    }

    #[test]
    fn dirty_group_scan_and_existence_drivers() {
        let (base, ov, rebuilt) = dirty_and_rebuilt();
        let works = pid(&base, "worksFor");
        let teaches = pid(&base, "teaches");
        let u1 = rid(&base, "U1");
        let (profb, chem, math) = (rid(&base, "ProfB"), rid(&base, "Chem"), rid(&base, "Math"));
        // Group-scan driver on the dirtied worksFor O-S replica:
        // ?x worksFor U1 . ?x teaches ?y — U1 now includes ProfC.
        let plan = PhysicalPlan::new(
            vec![
                PlanStep {
                    predicate: works,
                    order: SortOrder::OS,
                    key: Atom::Const(u1),
                    value: Atom::Var(0),
                },
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
            ],
            2,
            vec![0, 1],
        )
        .unwrap();
        let opts = ExecOptions::with_threads(2);
        let dirty = collect_rows(&base, Some(&ov), &plan, &opts);
        let clean = collect_rows(&rebuilt, None, &plan, &opts);
        assert_eq!(dirty, clean);
        assert!(dirty.len() >= 2, "ProfA and ProfC both work for U1 now");

        // Existence driver: deleted pair answers absent, inserted pair
        // answers present.
        for (s, o, expect) in [(profb, chem, false), (profb, math, true)] {
            let plan = PhysicalPlan::new(
                vec![PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Const(s),
                    value: Atom::Const(o),
                }],
                0,
                vec![],
            )
            .unwrap();
            let thresholds = default_thresholds(&base);
            let (sinks, _) = execute_view(
                &base,
                Some(&ov),
                &plan,
                &ExecOptions::with_threads(1),
                &thresholds,
                CountSink::default,
            )
            .expect("runs");
            let count: u64 = sinks.iter().map(|s| s.count).sum();
            assert_eq!(count > 0, expect, "existence of ({s},{o})");
        }
    }

    #[test]
    fn example_32_constant_driver_group_scan() {
        // ?x worksFor U2 . ?x teaches ?z — driver is the U2 group of the
        // O-S replica (Example 3.2).
        let s = store();
        let teaches = pid(&s, "teaches");
        let works = pid(&s, "worksFor");
        let u2 = rid(&s, "U2");
        check_plan_against_oracle(
            &s,
            vec![
                PlanStep {
                    predicate: works,
                    order: SortOrder::OS,
                    key: Atom::Const(u2),
                    value: Atom::Var(0),
                },
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
            ],
            2,
            &[
                (Atom::Var(0), works, Atom::Const(u2)),
                (Atom::Var(0), teaches, Atom::Var(1)),
            ],
        );
    }

    #[test]
    fn example_41_three_step_chain() {
        // ?x teaches ?z . ?z takenBy... modeled as: ?s advisor ?p .
        // ?p teaches ?c . ?s takes ?c  (triangle: students taking a
        // course their advisor teaches).
        let s = store();
        let advisor = pid(&s, "advisor");
        let teaches = pid(&s, "teaches");
        let takes = pid(&s, "takes");
        check_plan_against_oracle(
            &s,
            vec![
                PlanStep {
                    predicate: advisor,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(1),
                    value: Atom::Var(2),
                },
                PlanStep {
                    predicate: takes,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(2),
                },
            ],
            3,
            &[
                (Atom::Var(0), advisor, Atom::Var(1)),
                (Atom::Var(1), teaches, Atom::Var(2)),
                (Atom::Var(0), takes, Atom::Var(2)),
            ],
        );
    }

    #[test]
    fn object_object_join_via_os_replica() {
        // ?a teaches ?c . ?s takes ?c : object-object join; second step
        // keyed on the object via the O-S replica.
        let s = store();
        let teaches = pid(&s, "teaches");
        let takes = pid(&s, "takes");
        check_plan_against_oracle(
            &s,
            vec![
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: takes,
                    order: SortOrder::OS,
                    key: Atom::Var(1),
                    value: Atom::Var(2),
                },
            ],
            3,
            &[
                (Atom::Var(0), teaches, Atom::Var(1)),
                (Atom::Var(2), takes, Atom::Var(1)),
            ],
        );
    }

    #[test]
    fn existence_driver() {
        let s = store();
        let works = pid(&s, "worksFor");
        let (pa, u1) = (rid(&s, "ProfA"), rid(&s, "U1"));
        let plan = PhysicalPlan::new(
            vec![PlanStep {
                predicate: works,
                order: SortOrder::SO,
                key: Atom::Const(pa),
                value: Atom::Const(u1),
            }],
            0,
            vec![],
        )
        .unwrap();
        let (count, _) = execute_count(&s, &plan, &ExecOptions::with_threads(4)).expect("runs");
        assert_eq!(count, 1);
        // Absent triple.
        let u2 = rid(&s, "U2");
        let plan = PhysicalPlan::new(
            vec![PlanStep {
                predicate: works,
                order: SortOrder::SO,
                key: Atom::Const(pa),
                value: Atom::Const(u2),
            }],
            0,
            vec![],
        )
        .unwrap();
        let (count, _) = execute_count(&s, &plan, &ExecOptions::default()).expect("runs");
        assert_eq!(count, 0);
    }

    #[test]
    fn missing_predicate_partition_yields_empty() {
        let s = store();
        let plan = PhysicalPlan::new(
            vec![PlanStep {
                predicate: 999,
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            }],
            2,
            vec![0, 1],
        )
        .unwrap();
        let (count, _) = execute_count(&s, &plan, &ExecOptions::default()).expect("runs");
        assert_eq!(count, 0);
    }

    #[test]
    fn stats_are_collected() {
        let s = store();
        let teaches = pid(&s, "teaches");
        let works = pid(&s, "worksFor");
        let plan = PhysicalPlan::new(
            vec![
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: works,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(2),
                },
            ],
            3,
            vec![0],
        )
        .unwrap();
        let opts = ExecOptions {
            strategy: ProbeStrategy::AlwaysBinary,
            ..Default::default()
        };
        let (_, stats) = execute_count(&s, &plan, &opts).expect("runs");
        // 4 teaches tuples → 4 probes of worksFor.
        assert_eq!(stats.binary_searches, 4);
        assert_eq!(stats.sequential_searches, 0);
        let opts = ExecOptions {
            strategy: ProbeStrategy::AlwaysSequential,
            ..Default::default()
        };
        let (_, stats) = execute_count(&s, &plan, &opts).expect("runs");
        assert_eq!(stats.sequential_searches, 4);
        assert_eq!(stats.binary_searches, 0);
    }

    #[test]
    fn many_threads_on_tiny_domain() {
        // More threads than driver keys: no worker may panic or
        // double-count.
        let s = store();
        let teaches = pid(&s, "teaches");
        let plan = PhysicalPlan::new(
            vec![PlanStep {
                predicate: teaches,
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            }],
            2,
            vec![0, 1],
        )
        .unwrap();
        let (count, _) = execute_count(
            &s,
            &plan,
            &ExecOptions {
                threads: 16,
                morsel_size: 1,
                strategy: ProbeStrategy::AdaptiveBinary,
                guard: None,
                recorder: None,
            },
        )
        .expect("runs");
        assert_eq!(count, 4);
    }

    #[test]
    fn constant_key_probe_step() {
        // Second step keyed on a constant: probed once per input tuple;
        // the cursor makes repeats cheap (sequential hit distance 0).
        let s = store();
        let teaches = pid(&s, "teaches");
        let works = pid(&s, "worksFor");
        let u2 = rid(&s, "U2");
        // ?x teaches ?c . ?x worksFor U2 — but written with the O-S
        // replica probed by Const(u2) each time and ?x as a value check.
        let plan = PhysicalPlan::new(
            vec![
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: works,
                    order: SortOrder::OS,
                    key: Atom::Const(u2),
                    value: Atom::Var(0),
                },
            ],
            2,
            vec![0, 1],
        )
        .unwrap();
        let (count, stats) = execute_count(&s, &plan, &ExecOptions::default()).expect("runs");
        assert_eq!(count, 2); // ProfB/Chem, ProfC/Lit
        // 4 driver tuples → 4 probes of the constant key.
        assert_eq!(stats.total_searches(), 4);
    }

    /// Sink that panics on the first row it sees.
    #[derive(Debug)]
    struct PanicSink;

    impl Sink for PanicSink {
        fn push(&mut self, _row: &[Id]) {
            panic!("sink exploded");
        }
    }

    fn teaches_plan(s: &TripleStore) -> PhysicalPlan {
        let teaches = pid(s, "teaches");
        PhysicalPlan::new(
            vec![PlanStep {
                predicate: teaches,
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            }],
            2,
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn panicking_sink_is_contained() {
        let s = store();
        let plan = teaches_plan(&s);
        for threads in [1, 4] {
            let opts = ExecOptions::with_threads(threads);
            let thresholds = default_thresholds(&s);
            let err = execute(&s, &plan, &opts, &thresholds, || PanicSink)
                .expect_err("sink panic must surface as an error");
            match &err.kind {
                ExecFailureKind::WorkerPanicked { message } => {
                    assert!(message.contains("sink exploded"), "got {message:?}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
        // The store is read-only during execution: it stays usable.
        let (count, _) = execute_count(&s, &plan, &ExecOptions::with_threads(4)).expect("runs");
        assert_eq!(count, 4);
    }

    #[test]
    fn pre_cancelled_guard_stops_immediately() {
        let s = store();
        let plan = teaches_plan(&s);
        let guard = Arc::new(QueryGuard::unlimited());
        guard.cancel();
        let opts = ExecOptions {
            guard: Some(Arc::clone(&guard)),
            ..ExecOptions::with_threads(2)
        };
        let err = execute_count(&s, &plan, &opts).expect_err("cancelled before start");
        assert_eq!(err.kind, ExecFailureKind::Cancelled);
        assert_eq!(err.rows, 0);
    }

    #[test]
    fn row_budget_enforced_even_below_poll_batch() {
        // The query yields 4 rows — far under GUARD_BATCH — so the
        // budget can only be caught by the worker-exit check.
        let s = store();
        let plan = teaches_plan(&s);
        let guard = Arc::new(QueryGuard::with_limits(None, Some(2)));
        let opts = ExecOptions {
            guard: Some(guard),
            ..ExecOptions::default()
        };
        let err = execute_count(&s, &plan, &opts).expect_err("budget of 2 rows");
        match err.kind {
            ExecFailureKind::BudgetExceeded { rows } => assert_eq!(rows, 4),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_stops_before_work() {
        let s = store();
        let plan = teaches_plan(&s);
        let guard = Arc::new(QueryGuard::with_limits(
            Some(std::time::Duration::ZERO),
            None,
        ));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let opts = ExecOptions {
            guard: Some(guard),
            ..ExecOptions::with_threads(2)
        };
        let err = execute_count(&s, &plan, &opts).expect_err("deadline already passed");
        assert!(
            matches!(err.kind, ExecFailureKind::DeadlineExceeded { .. }),
            "got {:?}",
            err.kind
        );
    }

    #[test]
    fn completed_query_beats_late_cancel() {
        // Cancelling after the run finished must not matter for the
        // next run with a fresh guard.
        let s = store();
        let plan = teaches_plan(&s);
        let guard = Arc::new(QueryGuard::unlimited());
        let opts = ExecOptions {
            guard: Some(Arc::clone(&guard)),
            ..ExecOptions::default()
        };
        let (count, _) = execute_count(&s, &plan, &opts).expect("runs");
        assert_eq!(count, 4);
        guard.cancel();
        let opts = ExecOptions::default();
        let (count, _) = execute_count(&s, &plan, &opts).expect("fresh guard unaffected");
        assert_eq!(count, 4);
    }

    #[test]
    fn builder_validates_sizes() {
        assert_eq!(
            ExecOptions::builder().threads(0).build().unwrap_err(),
            ExecOptionsError::ZeroThreads
        );
        assert_eq!(
            ExecOptions::builder().morsel_size(0).build().unwrap_err(),
            ExecOptionsError::ZeroMorselSize
        );
        let opts = ExecOptions::builder()
            .threads(3)
            .morsel_size(2)
            .strategy(ProbeStrategy::AlwaysBinary)
            .build()
            .expect("valid");
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.morsel_size, 2);
        assert_eq!(opts.strategy, ProbeStrategy::AlwaysBinary);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shards_per_thread_shim() {
        // The PR-3-style shim: the legacy knob maps onto the morsel
        // grid (`DEFAULT_MORSEL_SIZE / shards`, floored at 1) and zero
        // still fails with the legacy error.
        assert_eq!(
            ExecOptions::builder().shards_per_thread(0).build().unwrap_err(),
            ExecOptionsError::ZeroShardsPerThread
        );
        let opts = ExecOptions::builder()
            .shards_per_thread(2)
            .build()
            .expect("valid");
        assert_eq!(opts.morsel_size, DEFAULT_MORSEL_SIZE / 2);
        let opts = ExecOptions::builder()
            .shards_per_thread(usize::MAX)
            .build()
            .expect("valid");
        assert_eq!(opts.morsel_size, 1, "huge shard counts floor at 1");
    }

    /// Owned copy of an [`ExecRecord`]: (result_rows, step_rows,
    /// step_search, total_search, worker_units, morsels).
    type OwnedRecord = (
        u64,
        Vec<u64>,
        Vec<SearchStats>,
        SearchStats,
        Vec<u64>,
        u64,
    );

    /// Captures the one record an execution emits, as owned data.
    #[derive(Default)]
    struct CaptureRecorder {
        seen: std::sync::Mutex<Vec<OwnedRecord>>,
    }

    impl Recorder for CaptureRecorder {
        fn record_exec(&self, r: &ExecRecord<'_>) {
            self.seen.lock().unwrap().push((
                r.result_rows,
                r.step_rows.to_vec(),
                r.step_search.to_vec(),
                r.total_search,
                r.worker_units.to_vec(),
                r.morsels,
            ));
        }
    }

    #[test]
    fn recorder_sees_aggregated_internals() {
        // ?x teaches ?c . ?x worksFor ?u — 4 driver tuples, 3 results.
        let s = store();
        let teaches = pid(&s, "teaches");
        let works = pid(&s, "worksFor");
        let plan = PhysicalPlan::new(
            vec![
                PlanStep {
                    predicate: teaches,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(1),
                },
                PlanStep {
                    predicate: works,
                    order: SortOrder::SO,
                    key: Atom::Var(0),
                    value: Atom::Var(2),
                },
            ],
            3,
            vec![0, 1, 2],
        )
        .unwrap();
        // With morsel_size 1 each distinct driver key is one morsel.
        let domain = driver_domain(&s, &plan, &ExecOptions::default());
        for threads in [1usize, 4] {
            let rec = Arc::new(CaptureRecorder::default());
            let opts = ExecOptions::builder()
                .threads(threads)
                .morsel_size(1)
                .recorder(Some(Arc::clone(&rec) as Arc<dyn Recorder>))
                .build()
                .unwrap();
            let (count, total) = execute_count(&s, &plan, &opts).expect("runs");
            assert_eq!(count, 4);
            let seen = rec.seen.lock().unwrap();
            assert_eq!(seen.len(), 1, "exactly one record per execution");
            let (rows, step_rows, step_search, rec_total, units, morsels) = &seen[0];
            assert_eq!(*rows, 4);
            // One probe step: step_rows = [driver tuples, results].
            assert_eq!(step_rows, &vec![4, 4]);
            assert_eq!(step_search.len(), 1);
            assert_eq!(*rec_total, total);
            // The executor clamps participants to the morsel count.
            assert_eq!(
                units.len(),
                threads.min(domain),
                "one unit entry per participant"
            );
            assert_eq!(
                *morsels, domain as u64,
                "every in-domain morsel executed exactly once"
            );
            let unit_sum: u64 = units.iter().sum();
            assert_eq!(unit_sum, 4 + total.words_touched());
        }
    }

    #[test]
    fn recorder_fires_on_failed_runs_too() {
        let s = store();
        let plan = teaches_plan(&s);
        let rec = Arc::new(CaptureRecorder::default());
        let guard = Arc::new(QueryGuard::with_limits(None, Some(2)));
        let opts = ExecOptions::builder()
            .guard(Some(guard))
            .recorder(Some(Arc::clone(&rec) as Arc<dyn Recorder>))
            .build()
            .unwrap();
        execute_count(&s, &plan, &opts).expect_err("budget of 2 rows");
        assert_eq!(rec.seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn zero_arity_count() {
        // Projection empty but variables exist: every match counts.
        let s = store();
        let teaches = pid(&s, "teaches");
        let plan = PhysicalPlan::new(
            vec![PlanStep {
                predicate: teaches,
                order: SortOrder::SO,
                key: Atom::Var(0),
                value: Atom::Var(1),
            }],
            2,
            vec![],
        )
        .unwrap();
        let (count, _) = execute_count(&s, &plan, &ExecOptions::default()).expect("runs");
        assert_eq!(count, 4);
    }

    /// Runs `execute_pooled` with collect sinks and flattens the
    /// morsel-ordered sinks into one row vector.
    fn collect_pooled(
        pool: &WorkerPool,
        store: &Arc<TripleStore>,
        plan: &Arc<PhysicalPlan>,
        opts: &ExecOptions,
    ) -> ExecResult<Vec<Id>> {
        let thresholds = Arc::new(default_thresholds(store));
        let (sinks, _) =
            execute_pooled(pool, store, plan, opts, &thresholds, CollectSink::default)?;
        let mut flat = Vec::new();
        for s in &sinks {
            flat.extend_from_slice(&s.data);
        }
        Ok(flat)
    }

    #[test]
    fn pooled_matches_scoped_byte_identical() {
        // The same query through the persistent pool and through
        // scoped threads must produce identical flattened rows — the
        // morsel-order merge makes both equal to the threads=1 run.
        let s = Arc::new(store());
        let teaches = pid(&s, "teaches");
        let works = pid(&s, "worksFor");
        let plan = Arc::new(
            PhysicalPlan::new(
                vec![
                    PlanStep {
                        predicate: teaches,
                        order: SortOrder::SO,
                        key: Atom::Var(0),
                        value: Atom::Var(1),
                    },
                    PlanStep {
                        predicate: works,
                        order: SortOrder::SO,
                        key: Atom::Var(0),
                        value: Atom::Var(2),
                    },
                ],
                3,
                vec![0, 1, 2],
            )
            .unwrap(),
        );
        let pool = WorkerPool::new(3);
        let thresholds = default_thresholds(&s);
        let mut baseline: Option<Vec<Id>> = None;
        for threads in [1usize, 2, 4, 9] {
            for morsel_size in [1usize, 2, 16384] {
                let opts = ExecOptions {
                    threads,
                    morsel_size,
                    ..ExecOptions::default()
                };
                let pooled = collect_pooled(&pool, &s, &plan, &opts).expect("pooled runs");
                let (sinks, _) = execute(&s, &plan, &opts, &thresholds, CollectSink::default)
                    .expect("scoped runs");
                let mut scoped = Vec::new();
                for sk in &sinks {
                    scoped.extend_from_slice(&sk.data);
                }
                assert_eq!(
                    pooled, scoped,
                    "pooled vs scoped diverged at threads {threads} morsel {morsel_size}"
                );
                match &baseline {
                    None => baseline = Some(pooled),
                    Some(b) => assert_eq!(
                        &pooled, b,
                        "row order changed at threads {threads} morsel {morsel_size}"
                    ),
                }
            }
        }
        assert!(pool.stats().jobs > 0, "multi-morsel runs must use the pool");
    }

    #[test]
    fn pooled_panic_fails_only_owner_and_pool_survives() {
        // Satellite regression: a panicking query on the pool surfaces
        // as WorkerPanicked, the worker returns to service, and 100
        // subsequent queries on the same pool succeed with no thread
        // growth or loss.
        let s = Arc::new(store());
        let plan = Arc::new(teaches_plan(&s));
        let pool = WorkerPool::new(2);
        let workers_before = pool.workers();
        let thresholds = Arc::new(default_thresholds(&s));
        // morsel_size 1 → multiple morsels → helpers requested → the
        // panic happens inside pool workers, not only the submitter.
        let opts = ExecOptions {
            threads: 3,
            morsel_size: 1,
            ..ExecOptions::default()
        };
        let err = execute_pooled(&pool, &s, &plan, &opts, &thresholds, || PanicSink)
            .expect_err("sink panic must surface as an error");
        match &err.kind {
            ExecFailureKind::WorkerPanicked { message } => {
                assert!(message.contains("sink exploded"), "got {message:?}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        for _ in 0..100 {
            let rows = collect_pooled(&pool, &s, &plan, &opts).expect("pool still serves");
            assert_eq!(rows.len(), 8, "4 rows × arity 2");
        }
        assert_eq!(pool.workers(), workers_before, "no pool thread leak");
    }

    #[test]
    fn pooled_guard_paths_match_scoped() {
        // Early-exit paths behave identically through the pool: the
        // same failure kind, no hang, and the pool stays usable.
        let s = Arc::new(store());
        let plan = Arc::new(teaches_plan(&s));
        let pool = WorkerPool::new(2);
        let opts = |guard: Arc<QueryGuard>| ExecOptions {
            threads: 3,
            morsel_size: 1,
            guard: Some(guard),
            ..ExecOptions::default()
        };

        let cancelled = Arc::new(QueryGuard::unlimited());
        cancelled.cancel();
        let err = collect_pooled(&pool, &s, &plan, &opts(cancelled)).expect_err("cancelled");
        assert_eq!(err.kind, ExecFailureKind::Cancelled);

        let budget = Arc::new(QueryGuard::with_limits(None, Some(2)));
        let err = collect_pooled(&pool, &s, &plan, &opts(budget)).expect_err("over budget");
        assert!(
            matches!(err.kind, ExecFailureKind::BudgetExceeded { .. }),
            "expected BudgetExceeded, got {:?}",
            err.kind
        );

        let fine = Arc::new(QueryGuard::unlimited());
        let rows = collect_pooled(&pool, &s, &plan, &opts(fine)).expect("pool still serves");
        assert_eq!(rows.len(), 8);
    }
}
