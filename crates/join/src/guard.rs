//! Query-lifecycle guard: cooperative cancellation, wall-clock
//! deadlines, and result-row budgets.
//!
//! PARJ workers share nothing mutable by design (§3), which is exactly
//! why stopping a runaway query needs a dedicated channel: a
//! [`QueryGuard`] is the one piece of shared state every worker polls.
//! Polling is batched — workers count bindings locally and consult the
//! guard every [`GUARD_BATCH`] tuples — so the per-probe hot path pays
//! only a local counter decrement, not an atomic operation. The
//! trade-off is bounded overshoot: a query can produce up to
//! `threads × GUARD_BATCH` extra bindings after a limit is hit.
//!
//! All atomics use relaxed ordering: the guard carries no data other
//! than the flag itself, and a poll observing the trip one batch late
//! is within the overshoot contract anyway.

use parj_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use parj_sync::Arc;
use std::time::{Duration, Instant};

/// How many bindings a worker processes between guard polls.
///
/// At typical probe rates (tens of millions of bindings per second per
/// worker) this keeps cancellation latency in the tens of microseconds
/// while making the guard's cost unmeasurable (<2% even on probe-heavy
/// plans, see `benches/guard_overhead.rs`).
pub const GUARD_BATCH: u32 = 1024;

/// Why a guarded query stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardTrip {
    /// [`CancelToken::cancel`] was called (or a sibling worker
    /// panicked and the executor tripped the token).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// Time elapsed since the guard was armed.
        elapsed: Duration,
    },
    /// The result-row budget was exhausted.
    BudgetExceeded {
        /// Rows counted when the budget tripped (may overshoot the
        /// limit by up to `threads × GUARD_BATCH`).
        rows: u64,
    },
}

impl std::fmt::Display for GuardTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardTrip::Cancelled => write!(f, "query cancelled"),
            GuardTrip::DeadlineExceeded { elapsed } => {
                write!(f, "query deadline exceeded after {elapsed:.2?}")
            }
            GuardTrip::BudgetExceeded { rows } => {
                write!(f, "query result budget exceeded at {rows} rows")
            }
        }
    }
}

/// A cancellation flag that can outlive (and predate) a single query.
///
/// The token is the externally shareable half of a [`QueryGuard`]:
/// hand a clone to another thread and it can stop the query at the
/// next poll boundary. A token is reusable — [`CancelToken::reset`]
/// re-arms it for the next query.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; workers stop at their next poll.
    pub fn cancel(&self) {
        // ordering: Relaxed — the flag is the only payload; a poll that
        // observes it one batch late is within the overshoot contract
        // (checked by the loom_guard model).
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        // ordering: Relaxed — flag-only read, bounded-staleness contract.
        self.flag.load(Ordering::Relaxed)
    }

    /// Clears the flag so the token can guard another query.
    pub fn reset(&self) {
        // ordering: Relaxed — re-arming happens between queries, with
        // the caller providing the inter-query happens-before edge.
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// Shared per-query lifecycle state polled by every worker.
///
/// Construct one per query run (the deadline is measured from
/// construction) and share it via `Arc` in
/// [`crate::ExecOptions::guard`].
#[derive(Debug)]
pub struct QueryGuard {
    token: CancelToken,
    armed_at: Instant,
    deadline: Option<Instant>,
    max_rows: Option<u64>,
    rows: AtomicU64,
}

impl Default for QueryGuard {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl QueryGuard {
    /// A guard with no deadline or budget; trips only via its token.
    /// The executor installs one of these when the caller supplied
    /// none, so panic isolation can still stop sibling workers.
    pub fn unlimited() -> Self {
        Self::new(None, None, CancelToken::new())
    }

    /// A guard enforcing the given limits, tripping on `token` too.
    /// The deadline clock starts now.
    pub fn new(timeout: Option<Duration>, max_rows: Option<u64>, token: CancelToken) -> Self {
        let armed_at = Instant::now();
        QueryGuard {
            token,
            armed_at,
            deadline: timeout.map(|t| armed_at + t),
            max_rows,
            rows: AtomicU64::new(0),
        }
    }

    /// Convenience constructor with a fresh token.
    pub fn with_limits(timeout: Option<Duration>, max_rows: Option<u64>) -> Self {
        Self::new(timeout, max_rows, CancelToken::new())
    }

    /// The token this guard trips on (clone it to cancel remotely).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Requests cancellation via the guard's own token.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Result rows counted so far across all workers.
    pub fn rows(&self) -> u64 {
        // ordering: Relaxed — a monotone counter read for reporting;
        // exactness after join comes from the join's release/acquire.
        self.rows.load(Ordering::Relaxed)
    }

    /// Time since the guard was armed.
    pub fn elapsed(&self) -> Duration {
        self.armed_at.elapsed()
    }

    /// Credits `new_rows` freshly produced rows and checks all limits.
    /// Workers call this once per [`GUARD_BATCH`] bindings.
    pub fn poll(&self, new_rows: u64) -> Result<(), GuardTrip> {
        // ordering: Relaxed — fetch_add keeps the count exact without
        // ordering other memory; the budget check only needs the value
        // this worker's own add returned (loom_guard asserts the
        // overshoot bound and final exactness).
        let total = if new_rows == 0 {
            self.rows.load(Ordering::Relaxed)
        } else {
            // ordering: Relaxed — same counter-only protocol as above.
            self.rows.fetch_add(new_rows, Ordering::Relaxed) + new_rows
        };
        if self.token.is_cancelled() {
            return Err(GuardTrip::Cancelled);
        }
        if let Some(max) = self.max_rows {
            if total > max {
                return Err(GuardTrip::BudgetExceeded { rows: total });
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(GuardTrip::DeadlineExceeded {
                    elapsed: now - self.armed_at,
                });
            }
        }
        Ok(())
    }

    /// Checks limits without crediting rows.
    pub fn check(&self) -> Result<(), GuardTrip> {
        self.poll(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = QueryGuard::unlimited();
        for _ in 0..100 {
            g.poll(1_000_000).unwrap();
        }
        assert_eq!(g.rows(), 100_000_000);
    }

    #[test]
    fn token_cancels_across_clones() {
        let token = CancelToken::new();
        let g = QueryGuard::new(None, None, token.clone());
        g.check().unwrap();
        token.cancel();
        assert_eq!(g.check(), Err(GuardTrip::Cancelled));
        token.reset();
        g.check().unwrap();
    }

    #[test]
    fn budget_trips_at_limit() {
        let g = QueryGuard::with_limits(None, Some(10));
        g.poll(10).unwrap(); // exactly at the limit is fine
        match g.poll(1) {
            Err(GuardTrip::BudgetExceeded { rows }) => assert_eq!(rows, 11),
            other => panic!("expected budget trip, got {other:?}"),
        }
    }

    #[test]
    fn deadline_trips_after_timeout() {
        let g = QueryGuard::with_limits(Some(Duration::from_millis(1)), None);
        g.check().unwrap_or(()); // may or may not trip instantly
        std::thread::sleep(Duration::from_millis(5));
        match g.check() {
            Err(GuardTrip::DeadlineExceeded { elapsed }) => {
                assert!(elapsed >= Duration::from_millis(1));
            }
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_outranks_other_trips() {
        // A panicking sibling cancels the token; even if the budget is
        // also blown, cancellation must be reported so the executor can
        // fold it into the panic error deterministically.
        let g = QueryGuard::with_limits(None, Some(1));
        g.cancel();
        assert_eq!(g.poll(5), Err(GuardTrip::Cancelled));
    }
}
