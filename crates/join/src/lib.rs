//! # parj-join — the PARJ adaptive join and parallel executor
//!
//! This crate is the paper's primary contribution (Bilidas & Koubarakis,
//! EDBT 2019, §3–4): pipelined left-deep joins over the vertically
//! partitioned store of `parj-store`, where every probe of a replica's
//! sorted keys array **adaptively** chooses between
//!
//! * **sequential search** continuing from a per-(worker, step) cursor —
//!   merge-join-like behaviour that exploits the full *or partial*
//!   ordering RDF data exhibits (Example 4.1 of the paper), and
//! * **binary search** over the whole array (or an **ID-to-Position
//!   lookup**, §4.2) — index-nested-loop behaviour for selective probes,
//!
//! using Algorithm 1: one subtraction and one comparison of the *value
//! distance* `|arr[cursor] − value|` against a per-replica threshold.
//! The thresholds come from the calibration micro-benchmark of
//! Algorithm 2 ([`calibrate`]).
//!
//! Parallelism follows §3: the driver relation of the left-deep plan (or
//! the value vector of a constant key, Example 3.2) is split into
//! fixed-size **morsels**; workers draw morsel indexes from one atomic
//! cursor and run the **entire pipeline** on read-only shared data — no
//! exchange, no rehashing, no synchronization, no graph partitioning.
//! Engines own a persistent [`WorkerPool`]; [`execute_pooled`] submits a
//! query's morsels to it so no threads are created per query, while
//! [`execute`] remains the scoped-thread fallback. Both merge per-morsel
//! sinks in morsel order, so results are byte-identical regardless of
//! thread count, morsel size, or interleaving.
//!
//! ```
//! use parj_dict::Term;
//! use parj_store::{SortOrder, StoreBuilder};
//! use parj_join::{Atom, ExecOptions, PhysicalPlan, PlanStep, execute_count};
//!
//! // ?x teaches ?z . ?x worksFor ?y   (Example 3.1 of the paper)
//! let mut b = StoreBuilder::new();
//! for (s, p, o) in [("A", "teaches", "Math"), ("B", "teaches", "Chem"),
//!                   ("A", "worksFor", "U1"), ("B", "worksFor", "U2")] {
//!     b.add_term_triple(&Term::iri(s), &Term::iri(p), &Term::iri(o));
//! }
//! let store = b.build();
//! let teaches = store.dict().predicate_id(&Term::iri("teaches")).unwrap();
//! let works_for = store.dict().predicate_id(&Term::iri("worksFor")).unwrap();
//! let plan = PhysicalPlan::new(
//!     vec![
//!         PlanStep { predicate: teaches, order: SortOrder::SO,
//!                    key: Atom::Var(0), value: Atom::Var(2) },
//!         PlanStep { predicate: works_for, order: SortOrder::SO,
//!                    key: Atom::Var(0), value: Atom::Var(1) },
//!     ],
//!     3,
//!     vec![0, 1, 2],
//! ).unwrap();
//! let (count, _stats) = execute_count(&store, &plan, &ExecOptions::default()).unwrap();
//! assert_eq!(count, 2);
//! ```
//!
//! ## Query lifecycle
//!
//! Every execution can carry a [`QueryGuard`] ([`ExecOptions::guard`])
//! enforcing cooperative cancellation, a wall-clock deadline, and a
//! result-row budget; workers poll it every [`GUARD_BATCH`] bindings.
//! Worker panics are contained with `catch_unwind` and surface as
//! [`ExecFailureKind::WorkerPanicked`] instead of aborting the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibrate;
mod exec;
mod guard;
mod plan;
mod pool;
mod rows;
mod search;
mod stats;
mod threshold;

pub use calibrate::{calibrate, CalibrationConfig, CalibrationResult};
#[allow(deprecated)]
pub use exec::shard_loads;
pub use exec::{
    driver_domain, driver_domain_view, execute, execute_collect, execute_count,
    execute_count_with, execute_pooled, execute_pooled_view, execute_profiled,
    execute_profiled_view, execute_view, morsel_loads, morsel_loads_view, PlanProfile,
    DEFAULT_MORSEL_SIZE,
    CollectSink, CountSink,
    ExecFailure, ExecFailureKind, ExecOptions, ExecOptionsBuilder, ExecOptionsError, ExecRecord,
    ExecResult, FnSink, Recorder, Sink,
};
pub use pool::{Participant, PoolStats, WorkerPool};
pub use guard::{CancelToken, GuardTrip, QueryGuard, GUARD_BATCH};
pub use plan::{Atom, PhysicalPlan, PlanError, PlanStep, VarId};
pub use rows::RowBatch;
pub use search::{adaptive_search, binary_search_cursor, sequential_search, ProbeStrategy};
pub use stats::SearchStats;
pub use threshold::{ReplicaThresholds, ThresholdTable};
