//! Physical left-deep join plans.
//!
//! PARJ "operates on left-deep query join trees" (§3): a plan is a
//! sequence of steps, each naming a predicate partition, which replica
//! of it to use (S-O or O-S), and how the replica's key and value
//! columns relate to query variables or constants. Step 0 is the
//! **driver** — it is scanned (and sharded for parallelism); every later
//! step is **probed** once per intermediate tuple with the adaptive
//! search.
//!
//! Plans are produced by `parj-optimizer` (or by hand in tests) and
//! validated + compiled here: compilation precomputes, per step, whether
//! the value column binds a fresh variable or merely checks an existing
//! binding, so the executor's inner loop does no case analysis on
//! variable state.

use parj_dict::Id;
use parj_store::SortOrder;

/// Index of a query variable (dense, assigned by the query translator).
pub type VarId = u16;

/// A plan atom: either a query variable or a dictionary constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Atom {
    /// A query variable slot.
    Var(VarId),
    /// A resource id constant.
    Const(Id),
}

/// One step of a left-deep plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// Predicate partition to access.
    pub predicate: Id,
    /// Which replica: `SO` keys the step on subjects, `OS` on objects.
    pub order: SortOrder,
    /// Key-column atom. In every step after the first it must be a
    /// constant or a variable bound by an earlier step (it is what the
    /// replica's keys array is probed with).
    pub key: Atom,
    /// Value-column atom.
    pub value: Atom,
}

impl PlanStep {
    /// The `(subject, object)` atoms of this step in triple order,
    /// un-flipping the replica orientation.
    pub fn subject_object(&self) -> (Atom, Atom) {
        match self.order {
            SortOrder::SO => (self.key, self.value),
            SortOrder::OS => (self.value, self.key),
        }
    }
}

/// How the executor treats a step's value column (precompiled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ValueMode {
    /// Fresh variable: iterate the whole value group, binding it.
    Bind(VarId),
    /// Already-bound variable: membership-check its binding in the group.
    CheckVar(VarId),
    /// Constant: membership-check it.
    CheckConst(Id),
    /// Same variable as the key (`?x p ?x`): membership-check the key id.
    CheckEqKey,
}

/// How the executor resolves a step's key column (precompiled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KeyMode {
    /// Bound variable: read from the bindings array.
    Var(VarId),
    /// Constant.
    Const(Id),
}

/// Precompiled per-step execution modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompiledStep {
    pub key: KeyMode,
    pub value: ValueMode,
}

/// How the executor drives (scans) step 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DriverMode {
    /// Key is a variable: scan the keys array, sharding over key
    /// positions (Example 3.1).
    ScanKeys { bind_key: VarId, value: DriverValue },
    /// Key is a constant, value a variable: locate the key's group once
    /// and shard over the **value vector** (Example 3.2: "we start
    /// scanning concurrently different shards of the vector that
    /// corresponds to object = 10").
    ScanGroup { key: Id, bind_value: VarId },
    /// Fully constant pattern: a single existence check.
    Existence { key: Id, value: Id },
}

/// Value handling while scanning keys in the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DriverValue {
    Bind(VarId),
    CheckConst(Id),
    CheckEqKey,
}

/// Why a plan failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Plans must contain at least one step.
    Empty,
    /// A variable id ≥ `num_vars` appeared.
    VarOutOfRange(VarId),
    /// A probe step's key variable is not bound by any earlier step; a
    /// left-deep pipeline cannot evaluate it.
    UnboundKey {
        /// Index of the offending step.
        step: usize,
        /// The unbound key variable.
        var: VarId,
    },
    /// A projection variable is never bound by any step.
    UnboundProjection(VarId),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Empty => write!(f, "plan has no steps"),
            PlanError::VarOutOfRange(v) => write!(f, "variable ?{v} out of range"),
            PlanError::UnboundKey { step, var } => {
                write!(f, "step {step} probes unbound variable ?{var}")
            }
            PlanError::UnboundProjection(v) => {
                write!(f, "projection variable ?{v} is never bound")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A validated, compiled left-deep plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// The declarative steps (kept for display/explain).
    pub steps: Vec<PlanStep>,
    /// Total number of variable slots.
    pub num_vars: usize,
    /// Variables returned per result row, in output order.
    pub projection: Vec<VarId>,
    pub(crate) driver: DriverMode,
    pub(crate) compiled: Vec<CompiledStep>,
}

impl PhysicalPlan {
    /// Validates and compiles a plan.
    pub fn new(
        steps: Vec<PlanStep>,
        num_vars: usize,
        projection: Vec<VarId>,
    ) -> Result<Self, PlanError> {
        if steps.is_empty() {
            return Err(PlanError::Empty);
        }
        let check_var = |a: Atom| -> Result<(), PlanError> {
            if let Atom::Var(v) = a {
                if v as usize >= num_vars {
                    return Err(PlanError::VarOutOfRange(v));
                }
            }
            Ok(())
        };
        for s in &steps {
            check_var(s.key)?;
            check_var(s.value)?;
        }

        let mut bound = vec![false; num_vars];
        // Driver.
        let d0 = &steps[0];
        let driver = match (d0.key, d0.value) {
            (Atom::Var(k), Atom::Var(v)) if k == v => {
                bound[k as usize] = true;
                DriverMode::ScanKeys {
                    bind_key: k,
                    value: DriverValue::CheckEqKey,
                }
            }
            (Atom::Var(k), Atom::Var(v)) => {
                bound[k as usize] = true;
                bound[v as usize] = true;
                DriverMode::ScanKeys {
                    bind_key: k,
                    value: DriverValue::Bind(v),
                }
            }
            (Atom::Var(k), Atom::Const(c)) => {
                bound[k as usize] = true;
                DriverMode::ScanKeys {
                    bind_key: k,
                    value: DriverValue::CheckConst(c),
                }
            }
            (Atom::Const(c), Atom::Var(v)) => {
                bound[v as usize] = true;
                DriverMode::ScanGroup {
                    key: c,
                    bind_value: v,
                }
            }
            (Atom::Const(k), Atom::Const(v)) => DriverMode::Existence { key: k, value: v },
        };

        // Probe steps.
        let mut compiled = Vec::with_capacity(steps.len().saturating_sub(1));
        for (i, s) in steps.iter().enumerate().skip(1) {
            let key = match s.key {
                Atom::Const(c) => KeyMode::Const(c),
                Atom::Var(v) => {
                    if !bound[v as usize] {
                        return Err(PlanError::UnboundKey { step: i, var: v });
                    }
                    KeyMode::Var(v)
                }
            };
            let value = match s.value {
                Atom::Const(c) => ValueMode::CheckConst(c),
                Atom::Var(v) => {
                    if s.key == s.value {
                        ValueMode::CheckEqKey
                    } else if bound[v as usize] {
                        ValueMode::CheckVar(v)
                    } else {
                        bound[v as usize] = true;
                        ValueMode::Bind(v)
                    }
                }
            };
            compiled.push(CompiledStep { key, value });
        }

        for &v in &projection {
            if v as usize >= num_vars {
                return Err(PlanError::VarOutOfRange(v));
            }
            if !bound[v as usize] {
                return Err(PlanError::UnboundProjection(v));
            }
        }

        Ok(PhysicalPlan {
            steps,
            num_vars,
            projection,
            driver,
            compiled,
        })
    }

    /// Human-readable plan rendering (one step per line).
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let atom = |a: Atom| match a {
            Atom::Var(v) => format!("?{v}"),
            Atom::Const(c) => format!("#{c}"),
        };
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            let kind = if i == 0 { "scan " } else { "probe" };
            writeln!(
                out,
                "{kind} p{} {} key={} value={}",
                s.predicate,
                s.order,
                atom(s.key),
                atom(s.value)
            )
            .expect("write to string");
        }
        write!(
            out,
            "project [{}]",
            self.projection
                .iter()
                .map(|v| format!("?{v}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
        .expect("write to string");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(pred: Id, key: Atom, value: Atom) -> PlanStep {
        PlanStep {
            predicate: pred,
            order: SortOrder::SO,
            key,
            value,
        }
    }

    #[test]
    fn valid_two_step_plan() {
        let p = PhysicalPlan::new(
            vec![
                step(0, Atom::Var(0), Atom::Var(1)),
                step(1, Atom::Var(0), Atom::Var(2)),
            ],
            3,
            vec![0, 1, 2],
        )
        .unwrap();
        assert!(matches!(p.driver, DriverMode::ScanKeys { bind_key: 0, .. }));
        assert_eq!(p.compiled.len(), 1);
        assert_eq!(
            p.compiled[0],
            CompiledStep {
                key: KeyMode::Var(0),
                value: ValueMode::Bind(2)
            }
        );
    }

    #[test]
    fn driver_modes() {
        // Constant key → group scan (Example 3.2).
        let p = PhysicalPlan::new(vec![step(0, Atom::Const(10), Atom::Var(0))], 1, vec![0]).unwrap();
        assert_eq!(
            p.driver,
            DriverMode::ScanGroup {
                key: 10,
                bind_value: 0
            }
        );
        // Fully constant → existence.
        let p = PhysicalPlan::new(vec![step(0, Atom::Const(1), Atom::Const(2))], 0, vec![]).unwrap();
        assert_eq!(p.driver, DriverMode::Existence { key: 1, value: 2 });
        // Repeated variable.
        let p = PhysicalPlan::new(vec![step(0, Atom::Var(0), Atom::Var(0))], 1, vec![0]).unwrap();
        assert!(matches!(
            p.driver,
            DriverMode::ScanKeys {
                value: DriverValue::CheckEqKey,
                ..
            }
        ));
    }

    #[test]
    fn value_modes_compiled() {
        // ?y rebound as check in step 2.
        let p = PhysicalPlan::new(
            vec![
                step(0, Atom::Var(0), Atom::Var(1)),
                step(1, Atom::Var(1), Atom::Var(2)),
                step(2, Atom::Var(0), Atom::Var(2)),
            ],
            3,
            vec![0],
        )
        .unwrap();
        assert_eq!(p.compiled[0].value, ValueMode::Bind(2));
        assert_eq!(p.compiled[1].value, ValueMode::CheckVar(2));
    }

    #[test]
    fn rejects_invalid_plans() {
        assert_eq!(
            PhysicalPlan::new(vec![], 0, vec![]).unwrap_err(),
            PlanError::Empty
        );
        // Key var never bound.
        let e = PhysicalPlan::new(
            vec![
                step(0, Atom::Var(0), Atom::Var(1)),
                step(1, Atom::Var(2), Atom::Var(0)),
            ],
            3,
            vec![0],
        )
        .unwrap_err();
        assert_eq!(e, PlanError::UnboundKey { step: 1, var: 2 });
        // Projection var never bound.
        let e = PhysicalPlan::new(vec![step(0, Atom::Var(0), Atom::Var(1))], 3, vec![2]).unwrap_err();
        assert_eq!(e, PlanError::UnboundProjection(2));
        // Var id out of range.
        let e = PhysicalPlan::new(vec![step(0, Atom::Var(5), Atom::Var(1))], 2, vec![]).unwrap_err();
        assert_eq!(e, PlanError::VarOutOfRange(5));
    }

    #[test]
    fn explain_is_readable() {
        let p = PhysicalPlan::new(
            vec![
                step(7, Atom::Var(0), Atom::Var(1)),
                step(8, Atom::Var(0), Atom::Const(42)),
            ],
            2,
            vec![1],
        )
        .unwrap();
        let text = p.explain();
        assert!(text.contains("scan  p7"));
        assert!(text.contains("probe p8"));
        assert!(text.contains("#42"));
        assert!(text.contains("project [?1]"));
    }

    #[test]
    fn subject_object_unflips() {
        let s = PlanStep {
            predicate: 0,
            order: SortOrder::OS,
            key: Atom::Const(5),
            value: Atom::Var(0),
        };
        assert_eq!(s.subject_object(), (Atom::Var(0), Atom::Const(5)));
    }
}
