//! Engine-owned persistent worker pool for morsel-driven execution.
//!
//! Queries no longer spawn scoped threads per run; instead an engine
//! creates one [`WorkerPool`] up front (sized by its thread budget) and
//! every parallel execution *submits a job* onto it. A job is a single
//! participant body — a closure that joins the query's shared morsel
//! cursor and pulls fixed-size driver morsels until the cursor drains
//! (see `exec.rs`). The submitting thread always runs one participant
//! itself, so a query makes progress even when every pool worker is
//! busy with other queries; idle pool workers claim up to `helpers`
//! additional seats on the job and pull morsels alongside it.
//!
//! ## Handshake
//!
//! The pool is a FIFO `VecDeque` of jobs behind one mutex with two
//! condition variables:
//!
//! * `work` — parked workers wait here; submitters notify after
//!   enqueueing a job.
//! * per-job `done` — the submitter waits here until every seat that
//!   was *claimed* has completed.
//!
//! Seat accounting happens entirely under the pool mutex: a worker
//! claims a seat (incrementing the job's `claimed` counter) while
//! holding it, and the submitter closes the job by removing it from
//! the queue while holding it. That mutual exclusion is the whole
//! correctness argument for the rendezvous: after the submitter's
//! removal, no new seat can be claimed, so waiting for
//! `completed == claimed` observes every participant that will ever
//! touch the job's shared state. The protocol is modeled under loom in
//! `tests/loom_pool.rs`.
//!
//! ## Panic containment
//!
//! Participant bodies built by the executor already `catch_unwind`
//! internally and convert panics into `WorkerPanicked` failures of the
//! owning query. The pool adds a second `catch_unwind` around the whole
//! job invocation as a backstop, so a panic can never unwind a pool
//! thread: the worker records it, completes its seat, and returns to
//! service for the next job. The regression suite pins that a panicked
//! query is followed by hundreds of successful ones on the same pool
//! with a stable thread count.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

use parj_sync::atomic::{AtomicU64, Ordering};
use parj_sync::{Arc, LockLevel, OrderedCondvar, OrderedMutex};

/// One participant body. Every invocation is an independent worker
/// joining the job's morsel cursor; bodies must therefore be callable
/// concurrently (`Fn`, not `FnOnce`) and tolerate running zero morsels
/// when late to a drained cursor.
pub type Participant = Arc<dyn Fn() + Send + Sync>;

/// A submitted job: the participant body plus seat accounting.
struct Job {
    run: Participant,
    /// Helper seats pool workers may claim (the submitter's own
    /// participation is not a seat).
    seats: usize,
    meta: OrderedMutex<JobMeta>,
    done: OrderedCondvar,
}

/// Seat state, mutated only while holding `Job::meta` (claims
/// additionally happen under the pool mutex — see module docs).
#[derive(Default)]
struct JobMeta {
    claimed: usize,
    completed: usize,
}

struct State {
    queue: VecDeque<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: OrderedMutex<State>,
    work: OrderedCondvar,
    jobs: AtomicU64,
    helper_joins: AtomicU64,
    busy_micros: AtomicU64,
    park_micros: AtomicU64,
    panics_contained: AtomicU64,
}

/// Point-in-time counters of one pool, for the metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool was created with (stable for its whole
    /// lifetime — the panic-containment invariant).
    pub workers: u64,
    /// Jobs submitted via [`WorkerPool::run`].
    pub jobs: u64,
    /// Helper seats actually claimed by pool workers across all jobs.
    pub helper_joins: u64,
    /// Cumulative wall-clock time workers spent running participants.
    pub busy_micros: u64,
    /// Cumulative wall-clock time workers spent parked waiting for work.
    pub park_micros: u64,
    /// Jobs currently queued and still accepting helpers.
    pub queue_depth: u64,
    /// Panics that escaped a participant body and were contained by the
    /// pool's backstop handler (the executor catches its own panics, so
    /// this stays 0 unless a participant wrapper itself fails).
    pub panics_contained: u64,
}

/// A persistent set of parked worker threads that execute submitted
/// participant bodies. Created once per engine; dropped (joining every
/// thread) when the engine is dropped.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<parj_sync::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers.max(1)` parked threads.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: OrderedMutex::new(
                LockLevel::PoolState,
                "pool.state",
                State {
                    queue: VecDeque::new(),
                    shutdown: false,
                },
            ),
            work: OrderedCondvar::new(LockLevel::PoolState, "pool.work"),
            jobs: AtomicU64::new(0),
            helper_joins: AtomicU64::new(0),
            busy_micros: AtomicU64::new(0),
            park_micros: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let s = Arc::clone(&shared);
                parj_sync::thread::spawn(move || worker_loop(&s))
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads (fixed at construction).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `participant` on the calling thread plus up to `helpers`
    /// pool workers, returning once every participant that joined has
    /// finished. The caller always participates, so the job completes
    /// even when the pool is saturated by other queries; helpers are
    /// opportunistic.
    pub fn run(&self, helpers: usize, participant: Participant) {
        // ordering: Relaxed — stats counter, read only by stats().
        self.shared.jobs.fetch_add(1, Ordering::Relaxed);
        if helpers == 0 {
            participant();
            return;
        }
        // Job meta sits one level *below* the pool state: workers claim
        // seats (locking meta) while holding the pool mutex.
        let job = Arc::new(Job {
            run: Arc::clone(&participant),
            seats: helpers,
            meta: OrderedMutex::new(LockLevel::PoolJob, "pool.job_meta", JobMeta::default()),
            done: OrderedCondvar::new(LockLevel::PoolJob, "pool.job_done"),
        });
        {
            let mut state = self.shared.state.lock();
            state.queue.push_back(Arc::clone(&job));
        }
        self.shared.work.notify_all();
        participant();
        // Close the job: removing it from the queue under the pool
        // mutex guarantees no further seat claims (claims hold the same
        // mutex), making `completed == claimed` a sound rendezvous.
        {
            let mut state = self.shared.state.lock();
            if let Some(pos) = state.queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                state.queue.remove(pos);
            }
        }
        let mut meta = job.meta.lock();
        // ordering: Relaxed — stats counter, read only by stats().
        self.shared
            .helper_joins
            .fetch_add(meta.claimed as u64, Ordering::Relaxed);
        while meta.completed < meta.claimed {
            meta = job.done.wait(meta);
        }
    }

    /// Counter snapshot for the metrics registry.
    pub fn stats(&self) -> PoolStats {
        let queue_depth = self.shared.state.lock().queue.len() as u64;
        // ordering: Relaxed — monotonic stats counters; a snapshot
        // needs no cross-counter consistency.
        PoolStats {
            workers: self.handles.len() as u64,
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            helper_joins: self.shared.helper_joins.load(Ordering::Relaxed),
            busy_micros: self.shared.busy_micros.load(Ordering::Relaxed),
            // ordering: Relaxed — same monotonic-counter argument.
            park_micros: self.shared.park_micros.load(Ordering::Relaxed),
            queue_depth,
            panics_contained: self.shared.panics_contained.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().shutdown = true;
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            // A worker thread's body catches participant panics, so a
            // join error would mean the loop itself failed; there is
            // nothing useful to do with it during drop.
            let _ = h.join();
        }
    }
}

/// Claims one seat on the frontmost job that still has seats, popping
/// jobs whose seats are exhausted. Runs under the pool mutex.
fn claim_front(state: &mut State) -> Option<Arc<Job>> {
    while let Some(front) = state.queue.front() {
        let job = Arc::clone(front);
        let mut meta = job.meta.lock();
        if meta.claimed >= job.seats {
            drop(meta);
            state.queue.pop_front();
            continue;
        }
        meta.claimed += 1;
        let full = meta.claimed >= job.seats;
        drop(meta);
        if full {
            state.queue.pop_front();
        }
        return Some(job);
    }
    None
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock();
    loop {
        if state.shutdown {
            return;
        }
        match claim_front(&mut state) {
            Some(job) => {
                drop(state);
                let started = Instant::now();
                // Backstop only: executor-built participants catch
                // their own panics and fail just the owning query.
                // Whatever happens, the seat completes and the worker
                // returns to service.
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| (job.run)()));
                // ordering: Relaxed — stats counters, read only by stats().
                shared
                    .busy_micros
                    .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                if outcome.is_err() {
                    // ordering: Relaxed — stats counter, read only by stats().
                    shared.panics_contained.fetch_add(1, Ordering::Relaxed);
                }
                {
                    let mut meta = job.meta.lock();
                    meta.completed += 1;
                }
                job.done.notify_all();
                state = shared.state.lock();
            }
            None => {
                let parked = Instant::now();
                state = shared.work.wait(state);
                // ordering: Relaxed — stats counter, read only by stats().
                shared
                    .park_micros
                    .fetch_add(parked.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_sync::atomic::AtomicUsize;

    fn counting_participant(
        cursor: &Arc<AtomicUsize>,
        hits: &Arc<AtomicUsize>,
        morsels: usize,
    ) -> Participant {
        let cursor = Arc::clone(cursor);
        let hits = Arc::clone(hits);
        Arc::new(move || loop {
            let m = cursor.fetch_add(1, Ordering::Relaxed);
            if m >= morsels {
                return;
            }
            hits.fetch_add(1, Ordering::Relaxed);
        })
    }

    #[test]
    fn every_morsel_processed_exactly_once() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let cursor = Arc::new(AtomicUsize::new(0));
            let hits = Arc::new(AtomicUsize::new(0));
            let morsels = 1 + round % 17;
            pool.run(2, counting_participant(&cursor, &hits, morsels));
            assert_eq!(hits.load(Ordering::Relaxed), morsels);
        }
    }

    #[test]
    fn zero_helpers_runs_inline() {
        let pool = WorkerPool::new(1);
        let cursor = Arc::new(AtomicUsize::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run(0, counting_participant(&cursor, &hits, 5));
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats().helper_joins, 0);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        parj_sync::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for _ in 0..25 {
                        let cursor = Arc::new(AtomicUsize::new(0));
                        let hits = Arc::new(AtomicUsize::new(0));
                        pool.run(2, counting_participant(&cursor, &hits, 9));
                        assert_eq!(hits.load(Ordering::Relaxed), 9);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.jobs, 100);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn pool_survives_participant_panic() {
        let pool = WorkerPool::new(2);
        // A raw panicking participant exercises the pool's backstop
        // handler (the executor's participants catch their own).
        // The submitter's own invocation must not panic, so the body
        // panics only on helper calls.
        let first = AtomicUsize::new(0);
        let body: Participant = {
            let first = Arc::new(first);
            Arc::new(move || {
                if first.fetch_add(1, Ordering::Relaxed) > 0 {
                    panic!("helper dies");
                }
            })
        };
        pool.run(2, body);
        let contained = pool.stats().panics_contained;
        // Helpers may or may not have claimed before the job closed.
        assert!(contained <= 2);
        // The pool still works afterwards.
        let cursor = Arc::new(AtomicUsize::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run(2, counting_participant(&cursor, &hits, 7));
        assert_eq!(hits.load(Ordering::Relaxed), 7);
        assert_eq!(pool.stats().workers, 2);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        let cursor = Arc::new(AtomicUsize::new(0));
        let hits = Arc::new(AtomicUsize::new(0));
        pool.run(3, counting_participant(&cursor, &hits, 100));
        drop(pool); // must not hang or leak
    }
}
