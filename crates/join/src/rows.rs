//! Flat row-major result batches.
//!
//! The executor's workers already materialize results into flat
//! per-worker buffers ([`crate::CollectSink`]); a [`RowBatch`] keeps
//! that layout — one contiguous `Vec<Id>` plus the row arity — through
//! merging and post-processing instead of exploding into a
//! `Vec<Vec<Id>>` (one heap allocation per row). Rows are viewed as
//! `&[Id]` slices; sorting and dedup permute the flat buffer in place
//! of row-granular moves.

use parj_dict::Id;
use std::cmp::Ordering;

/// A batch of fixed-arity result rows stored row-major in one flat
/// buffer.
///
/// A batch of arity `a > 0` holding `n` rows stores exactly `n * a`
/// ids; row `i` is `data[i * a .. (i + 1) * a]`. An arity-0 batch
/// (ASK-style / fully-constant shapes) carries no ids but still has a
/// **logical row count**: each pushed empty row is counted, `len()`
/// reports it, and `rows()` yields that many empty slices — so
/// downstream offset/limit/dedup arithmetic treats existence results
/// exactly like any other projection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowBatch {
    arity: usize,
    data: Vec<Id>,
    /// Logical row count when `arity == 0` (always 0 otherwise): flat
    /// `data` cannot represent zero-width rows, so the count is
    /// explicit.
    arity0_rows: usize,
}

impl RowBatch {
    /// An empty batch of the given row arity.
    pub fn new(arity: usize) -> Self {
        RowBatch { arity, data: Vec::new(), arity0_rows: 0 }
    }

    /// Wraps an existing flat buffer. `data.len()` must be a multiple
    /// of `arity` (for `arity == 0`, `data` must be empty and the
    /// batch starts with zero logical rows — use
    /// [`RowBatch::extend_rows`] to count existence rows).
    pub fn from_parts(arity: usize, data: Vec<Id>) -> Self {
        if arity == 0 {
            assert!(data.is_empty(), "arity-0 batch cannot carry data");
        } else {
            assert_eq!(data.len() % arity, 0, "flat buffer misaligned with arity");
        }
        RowBatch { arity, data, arity0_rows: 0 }
    }

    /// Ids per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows (logical count for arity 0).
    pub fn len(&self) -> usize {
        // An arity-0 batch carries no id payload; its logical count
        // lives in `arity0_rows`.
        self.data.len().checked_div(self.arity).unwrap_or(self.arity0_rows)
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i` as a slice of `arity` ids (the empty slice for arity 0).
    pub fn row(&self, i: usize) -> &[Id] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over the rows as slices; an arity-0 batch yields its
    /// logical row count of empty slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Id]> {
        // `chunks_exact(0)` panics, so arity 0 routes through a
        // full-buffer chunk size (the buffer is empty, yielding
        // nothing) and the logical rows come from the chained repeat.
        let zero_rows = if self.arity == 0 { self.arity0_rows } else { 0 };
        self.data
            .chunks_exact(self.arity.max(1))
            .chain(std::iter::repeat_n(&[] as &[Id], zero_rows))
    }

    /// Appends one row. `row.len()` must equal the batch arity.
    pub fn push(&mut self, row: &[Id]) {
        debug_assert_eq!(row.len(), self.arity);
        if self.arity == 0 {
            self.arity0_rows += 1;
        } else {
            self.data.extend_from_slice(row);
        }
    }

    /// Appends `n` empty rows to an arity-0 batch (bulk form of
    /// `push(&[])` for counting sinks).
    pub fn extend_rows(&mut self, n: usize) {
        debug_assert_eq!(self.arity, 0, "extend_rows is the arity-0 bulk append");
        self.arity0_rows += n;
    }

    /// Appends a flat, already row-aligned buffer (e.g. a worker
    /// sink's output) without touching individual rows.
    pub fn extend_flat(&mut self, data: &[Id]) {
        debug_assert!(self.arity != 0 && data.len().is_multiple_of(self.arity));
        self.data.extend_from_slice(data);
    }

    /// Appends every row of `other` (which must have the same arity),
    /// including the logical rows of an arity-0 batch.
    pub fn append(&mut self, other: &RowBatch) {
        debug_assert_eq!(self.arity, other.arity);
        self.data.extend_from_slice(&other.data);
        self.arity0_rows += other.arity0_rows;
    }

    /// The underlying flat buffer.
    pub fn data(&self) -> &[Id] {
        &self.data
    }

    /// Consumes the batch, returning the flat buffer.
    pub fn into_data(self) -> Vec<Id> {
        self.data
    }

    /// Materializes one `Vec<Id>` per row (the legacy interchange
    /// shape; allocates per row — keep processing flat where possible).
    pub fn into_rows(self) -> Vec<Vec<Id>> {
        if self.arity == 0 {
            return vec![Vec::new(); self.arity0_rows];
        }
        self.data.chunks_exact(self.arity).map(<[Id]>::to_vec).collect()
    }

    /// Sorts the rows with a caller-supplied comparator by permuting
    /// the flat buffer through a sorted index (no per-row allocation).
    /// The sort is stable so equal rows keep their arrival order.
    pub fn sort_by<F: FnMut(&[Id], &[Id]) -> Ordering>(&mut self, mut cmp: F) {
        if self.arity == 0 || self.len() <= 1 {
            return;
        }
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by(|&i, &j| cmp(self.row(i as usize), self.row(j as usize)));
        let mut out = Vec::with_capacity(self.data.len());
        for i in order {
            out.extend_from_slice(self.row(i as usize));
        }
        self.data = out;
    }

    /// Sorts the rows lexicographically.
    pub fn sort_unstable(&mut self) {
        self.sort_by(<[Id]>::cmp);
    }

    /// Removes consecutive duplicate rows in place (sort first for
    /// global dedup).
    pub fn dedup(&mut self) {
        let a = self.arity;
        if a == 0 {
            // All zero-width rows are equal: at most one survives.
            self.arity0_rows = self.arity0_rows.min(1);
            return;
        }
        if self.len() <= 1 {
            return;
        }
        let mut kept = a; // row 0 always stays
        for i in 1..self.len() {
            let (head, tail) = self.data.split_at_mut(i * a);
            if head[kept - a..kept] != tail[..a] {
                if kept != i * a {
                    head[kept..kept + a].copy_from_slice(&tail[..a]);
                }
                kept += a;
            }
        }
        self.data.truncate(kept);
    }

    /// Keeps only the rows for which `keep` returns true, preserving
    /// order.
    pub fn retain<F: FnMut(&[Id]) -> bool>(&mut self, mut keep: F) {
        let a = self.arity;
        if a == 0 {
            let mut kept = 0;
            for _ in 0..self.arity0_rows {
                if keep(&[]) {
                    kept += 1;
                }
            }
            self.arity0_rows = kept;
            return;
        }
        let mut kept = 0;
        for i in 0..self.len() {
            let (head, tail) = self.data.split_at_mut(i * a);
            if keep(&tail[..a]) {
                if kept != i * a {
                    head[kept..kept + a].copy_from_slice(&tail[..a]);
                }
                kept += a;
            }
        }
        self.data.truncate(kept);
    }

    /// Drops the first `n` rows.
    pub fn drop_front(&mut self, n: usize) {
        if self.arity == 0 {
            self.arity0_rows = self.arity0_rows.saturating_sub(n);
            return;
        }
        let cut = (n * self.arity).min(self.data.len());
        self.data.drain(..cut);
    }

    /// Keeps at most the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        if self.arity == 0 {
            self.arity0_rows = self.arity0_rows.min(n);
            return;
        }
        let keep = n.saturating_mul(self.arity).min(self.data.len());
        self.data.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: &[[Id; 2]]) -> RowBatch {
        let mut b = RowBatch::new(2);
        for r in rows {
            b.push(r);
        }
        b
    }

    #[test]
    fn layout_and_views() {
        let b = batch(&[[1, 2], [3, 4], [5, 6]]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.row(1), &[3, 4]);
        assert_eq!(b.rows().collect::<Vec<_>>(), vec![&[1, 2][..], &[3, 4], &[5, 6]]);
        assert_eq!(b.clone().into_rows(), vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(b.data(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sort_dedup_matches_nested_vecs() {
        let rows = [[3, 1], [1, 2], [3, 1], [0, 9], [1, 2], [3, 0]];
        let mut b = batch(&rows);
        b.sort_unstable();
        b.dedup();
        let mut expected: Vec<Vec<Id>> = rows.iter().map(|r| r.to_vec()).collect();
        expected.sort();
        expected.dedup();
        assert_eq!(b.into_rows(), expected);
    }

    #[test]
    fn retain_offset_limit() {
        let mut b = batch(&[[1, 1], [2, 2], [3, 3], [4, 4], [5, 5]]);
        b.retain(|r| r[0] != 3);
        assert_eq!(b.len(), 4);
        b.drop_front(1);
        b.truncate(2);
        assert_eq!(b.into_rows(), vec![vec![2, 2], vec![4, 4]]);
    }

    #[test]
    fn zero_arity_counts_rows() {
        let mut b = RowBatch::new(0);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        b.push(&[]);
        b.push(&[]);
        b.extend_rows(3);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.rows().count(), 5);
        assert!(b.rows().all(<[Id]>::is_empty));
        assert_eq!(b.clone().into_rows(), vec![Vec::<Id>::new(); 5]);
        b.sort_unstable(); // no ids to order; must not lose the count
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn zero_arity_offset_limit_dedup() {
        let mut b = RowBatch::new(0);
        b.extend_rows(4);
        b.drop_front(1);
        assert_eq!(b.len(), 3);
        b.truncate(2);
        assert_eq!(b.len(), 2);
        b.drop_front(10); // offset past end clamps to empty
        assert_eq!(b.len(), 0);

        let mut d = RowBatch::new(0);
        d.extend_rows(7);
        d.dedup(); // all zero-width rows are equal
        assert_eq!(d.len(), 1);
        let mut kept_calls = 0;
        d.retain(|r| {
            kept_calls += 1;
            r.is_empty()
        });
        assert_eq!(kept_calls, 1);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn zero_arity_append_merges_counts() {
        let mut a = RowBatch::new(0);
        a.extend_rows(2);
        let mut b = RowBatch::new(0);
        b.extend_rows(3);
        a.append(&b);
        assert_eq!(a.len(), 5);

        let mut x = batch(&[[1, 2]]);
        let y = batch(&[[3, 4], [5, 6]]);
        x.append(&y);
        assert_eq!(x.into_rows(), vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    fn stable_sort_keeps_arrival_order_of_ties() {
        // Compare on the first column only; second column records
        // arrival order.
        let mut b = batch(&[[2, 0], [1, 1], [2, 2], [1, 3]]);
        b.sort_by(|x, y| x[0].cmp(&y[0]));
        assert_eq!(b.into_rows(), vec![vec![1, 1], vec![1, 3], vec![2, 0], vec![2, 2]]);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_from_parts_panics() {
        let _ = RowBatch::from_parts(2, vec![1, 2, 3]);
    }
}
