//! Flat row-major result batches.
//!
//! The executor's workers already materialize results into flat
//! per-worker buffers ([`crate::CollectSink`]); a [`RowBatch`] keeps
//! that layout — one contiguous `Vec<Id>` plus the row arity — through
//! merging and post-processing instead of exploding into a
//! `Vec<Vec<Id>>` (one heap allocation per row). Rows are viewed as
//! `&[Id]` slices; sorting and dedup permute the flat buffer in place
//! of row-granular moves.

use parj_dict::Id;
use std::cmp::Ordering;

/// A batch of fixed-arity result rows stored row-major in one flat
/// buffer.
///
/// A batch of arity `a` holding `n` rows stores exactly `n * a` ids;
/// row `i` is `data[i * a .. (i + 1) * a]`. Arity 0 batches hold no
/// data and report zero rows — use the counting APIs for pure
/// existence results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowBatch {
    arity: usize,
    data: Vec<Id>,
}

impl RowBatch {
    /// An empty batch of the given row arity.
    pub fn new(arity: usize) -> Self {
        RowBatch { arity, data: Vec::new() }
    }

    /// Wraps an existing flat buffer. `data.len()` must be a multiple
    /// of `arity` (for `arity == 0`, `data` must be empty).
    pub fn from_parts(arity: usize, data: Vec<Id>) -> Self {
        if arity == 0 {
            assert!(data.is_empty(), "arity-0 batch cannot carry data");
        } else {
            assert_eq!(data.len() % arity, 0, "flat buffer misaligned with arity");
        }
        RowBatch { arity, data }
    }

    /// Ids per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a slice of `arity` ids.
    pub fn row(&self, i: usize) -> &[Id] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over the rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Id]> {
        // `chunks_exact(0)` panics, so route arity 0 to an empty iter
        // via a full-buffer chunk size (the buffer is empty anyway).
        self.data.chunks_exact(self.arity.max(1))
    }

    /// Appends one row. `row.len()` must equal the batch arity.
    pub fn push(&mut self, row: &[Id]) {
        debug_assert_eq!(row.len(), self.arity);
        self.data.extend_from_slice(row);
    }

    /// Appends a flat, already row-aligned buffer (e.g. a worker
    /// sink's output) without touching individual rows.
    pub fn extend_flat(&mut self, data: &[Id]) {
        debug_assert!(self.arity != 0 && data.len().is_multiple_of(self.arity));
        self.data.extend_from_slice(data);
    }

    /// The underlying flat buffer.
    pub fn data(&self) -> &[Id] {
        &self.data
    }

    /// Consumes the batch, returning the flat buffer.
    pub fn into_data(self) -> Vec<Id> {
        self.data
    }

    /// Materializes one `Vec<Id>` per row (the legacy interchange
    /// shape; allocates per row — keep processing flat where possible).
    pub fn into_rows(self) -> Vec<Vec<Id>> {
        if self.arity == 0 {
            return Vec::new();
        }
        self.data.chunks_exact(self.arity).map(<[Id]>::to_vec).collect()
    }

    /// Sorts the rows with a caller-supplied comparator by permuting
    /// the flat buffer through a sorted index (no per-row allocation).
    /// The sort is stable so equal rows keep their arrival order.
    pub fn sort_by<F: FnMut(&[Id], &[Id]) -> Ordering>(&mut self, mut cmp: F) {
        if self.arity == 0 || self.len() <= 1 {
            return;
        }
        let mut order: Vec<u32> = (0..self.len() as u32).collect();
        order.sort_by(|&i, &j| cmp(self.row(i as usize), self.row(j as usize)));
        let mut out = Vec::with_capacity(self.data.len());
        for i in order {
            out.extend_from_slice(self.row(i as usize));
        }
        self.data = out;
    }

    /// Sorts the rows lexicographically.
    pub fn sort_unstable(&mut self) {
        self.sort_by(<[Id]>::cmp);
    }

    /// Removes consecutive duplicate rows in place (sort first for
    /// global dedup).
    pub fn dedup(&mut self) {
        let a = self.arity;
        if a == 0 || self.len() <= 1 {
            return;
        }
        let mut kept = a; // row 0 always stays
        for i in 1..self.len() {
            let (head, tail) = self.data.split_at_mut(i * a);
            if head[kept - a..kept] != tail[..a] {
                if kept != i * a {
                    head[kept..kept + a].copy_from_slice(&tail[..a]);
                }
                kept += a;
            }
        }
        self.data.truncate(kept);
    }

    /// Keeps only the rows for which `keep` returns true, preserving
    /// order.
    pub fn retain<F: FnMut(&[Id]) -> bool>(&mut self, mut keep: F) {
        let a = self.arity;
        if a == 0 {
            return;
        }
        let mut kept = 0;
        for i in 0..self.len() {
            let (head, tail) = self.data.split_at_mut(i * a);
            if keep(&tail[..a]) {
                if kept != i * a {
                    head[kept..kept + a].copy_from_slice(&tail[..a]);
                }
                kept += a;
            }
        }
        self.data.truncate(kept);
    }

    /// Drops the first `n` rows.
    pub fn drop_front(&mut self, n: usize) {
        let cut = (n * self.arity).min(self.data.len());
        self.data.drain(..cut);
    }

    /// Keeps at most the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        let keep = n.saturating_mul(self.arity).min(self.data.len());
        self.data.truncate(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: &[[Id; 2]]) -> RowBatch {
        let mut b = RowBatch::new(2);
        for r in rows {
            b.push(r);
        }
        b
    }

    #[test]
    fn layout_and_views() {
        let b = batch(&[[1, 2], [3, 4], [5, 6]]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.row(1), &[3, 4]);
        assert_eq!(b.rows().collect::<Vec<_>>(), vec![&[1, 2][..], &[3, 4], &[5, 6]]);
        assert_eq!(b.clone().into_rows(), vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(b.data(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sort_dedup_matches_nested_vecs() {
        let rows = [[3, 1], [1, 2], [3, 1], [0, 9], [1, 2], [3, 0]];
        let mut b = batch(&rows);
        b.sort_unstable();
        b.dedup();
        let mut expected: Vec<Vec<Id>> = rows.iter().map(|r| r.to_vec()).collect();
        expected.sort();
        expected.dedup();
        assert_eq!(b.into_rows(), expected);
    }

    #[test]
    fn retain_offset_limit() {
        let mut b = batch(&[[1, 1], [2, 2], [3, 3], [4, 4], [5, 5]]);
        b.retain(|r| r[0] != 3);
        assert_eq!(b.len(), 4);
        b.drop_front(1);
        b.truncate(2);
        assert_eq!(b.into_rows(), vec![vec![2, 2], vec![4, 4]]);
    }

    #[test]
    fn zero_arity_is_inert() {
        let mut b = RowBatch::new(0);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.rows().count(), 0);
        b.sort_unstable();
        b.dedup();
        b.truncate(0);
        assert!(b.clone().into_rows().is_empty());
    }

    #[test]
    fn stable_sort_keeps_arrival_order_of_ties() {
        // Compare on the first column only; second column records
        // arrival order.
        let mut b = batch(&[[2, 0], [1, 1], [2, 2], [1, 3]]);
        b.sort_by(|x, y| x[0].cmp(&y[0]));
        assert_eq!(b.into_rows(), vec![vec![1, 1], vec![1, 3], vec![2, 0], vec![2, 2]]);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_from_parts_panics() {
        let _ = RowBatch::from_parts(2, vec![1, 2, 3]);
    }
}
