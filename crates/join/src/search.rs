//! The search primitives and Algorithm 1, the adaptive switch between
//! binary and sequential search.

use parj_dict::Id;
use parj_store::IdPosIndex;

use crate::stats::SearchStats;

/// Which probe method the executor uses on replica key arrays.
///
/// The four named strategies are exactly the four measured columns of
/// the paper's Table 5; `AlwaysSequential` is a degenerate control used
/// by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeStrategy {
    /// Always whole-array binary search (Table 5 column "Binary").
    AlwaysBinary,
    /// Algorithm 1 switching between binary and sequential search
    /// (column "AdBinary"). This is PARJ's default.
    #[default]
    AdaptiveBinary,
    /// Always the ID-to-Position index (column "Index"); falls back to
    /// binary search on replicas without an index.
    AlwaysIndex,
    /// Algorithm 1 switching between the ID-to-Position index and
    /// sequential search (column "AdIndex").
    AdaptiveIndex,
    /// Always sequential search from the cursor (test-only control; not
    /// in the paper's tables).
    AlwaysSequential,
}

impl ProbeStrategy {
    /// All four paper strategies, in Table 5 column order.
    pub const TABLE5: [ProbeStrategy; 4] = [
        ProbeStrategy::AlwaysBinary,
        ProbeStrategy::AdaptiveBinary,
        ProbeStrategy::AlwaysIndex,
        ProbeStrategy::AdaptiveIndex,
    ];

    /// Short label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ProbeStrategy::AlwaysBinary => "Binary",
            ProbeStrategy::AdaptiveBinary => "AdBinary",
            ProbeStrategy::AlwaysIndex => "Index",
            ProbeStrategy::AdaptiveIndex => "AdIndex",
            ProbeStrategy::AlwaysSequential => "Sequential",
        }
    }
}

impl std::fmt::Display for ProbeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Steps in one direction before sequential search switches to
/// galloping (exponential) probes. Algorithm 1 only picks sequential
/// search when the predicted distance is inside the calibrated window,
/// so almost all scans finish within a handful of steps; the few that
/// run long (skewed data breaking the §4.1 uniform-gap assumption)
/// degrade to O(log gap) instead of O(gap).
const GALLOP_AFTER: usize = 8;

/// Sequential search for `value` starting at `*cursor`, scanning in
/// whichever direction the sort order dictates ("continuing from the
/// position that the cursor has been left from a previous search").
///
/// Returns the position of `value` if present. The cursor is updated on
/// both hits and misses — on a miss it rests on the element nearest the
/// probe, so the next nearby probe stays cheap (Algorithm 1: "the
/// cursor_position is updated each time for both successful and
/// unsuccessful searches").
///
/// After `GALLOP_AFTER` consecutive steps the scan switches to
/// galloping: exponentially growing jumps bracket the target, then a
/// binary search inside the bracket finishes in O(log gap). Hit
/// results and the cursor's resting position are identical to the
/// plain scan; gallop and bracket probes are counted as
/// `sequential_steps`.
#[inline]
pub fn sequential_search(
    arr: &[Id],
    value: Id,
    cursor: &mut usize,
    stats: &mut SearchStats,
) -> Option<usize> {
    if arr.is_empty() {
        return None;
    }
    let mut i = (*cursor).min(arr.len() - 1);
    stats.sequential_searches += 1;
    stats.sequential_steps += 1; // the element under the cursor
    if arr[i] < value {
        let mut steps = 0usize;
        while arr[i] < value {
            if i + 1 == arr.len() {
                *cursor = i;
                return None;
            }
            steps += 1;
            if steps > GALLOP_AFTER {
                return gallop_forward(arr, value, i, cursor, stats);
            }
            i += 1;
            stats.sequential_steps += 1;
        }
    } else {
        let mut steps = 0usize;
        while arr[i] > value {
            if i == 0 {
                *cursor = 0;
                return None;
            }
            steps += 1;
            if steps > GALLOP_AFTER {
                return gallop_backward(arr, value, i, cursor, stats);
            }
            i -= 1;
            stats.sequential_steps += 1;
        }
    }
    *cursor = i;
    (arr[i] == value).then_some(i)
}

/// Galloping tail of a forward scan: `arr[from] < value` and `from` is
/// not the last index. Finds the first element `>= value` — exactly
/// where the plain scan would stop — in O(log gap).
#[cold]
fn gallop_forward(
    arr: &[Id],
    value: Id,
    from: usize,
    cursor: &mut usize,
    stats: &mut SearchStats,
) -> Option<usize> {
    debug_assert!(arr[from] < value && from < arr.len() - 1);
    let last = arr.len() - 1;
    let mut lo = from; // invariant: arr[lo] < value
    let mut jump = 1usize;
    let hi = loop {
        // Every probe is clamped to `last`: the gallop can never
        // overshoot the run (or block) boundary, however large the
        // jump grows. `saturating_*` keeps the arithmetic itself from
        // wrapping on pathological cursor positions.
        let cand = lo.saturating_add(jump).min(last);
        stats.sequential_steps += 1;
        if arr[cand] >= value {
            break cand;
        }
        if cand == last {
            // Ran off the end: like the plain scan, rest on the last
            // element.
            *cursor = last;
            return None;
        }
        lo = cand;
        jump = jump.saturating_mul(2);
    };
    // Binary search the bracket (lo, hi] for the first element >= value.
    let (mut l, mut h) = (lo + 1, hi);
    while l < h {
        let mid = l + (h - l) / 2;
        stats.sequential_steps += 1;
        if arr[mid] < value {
            l = mid + 1;
        } else {
            h = mid;
        }
    }
    *cursor = l;
    (arr[l] == value).then_some(l)
}

/// Galloping tail of a backward scan: `arr[from] > value` and
/// `from > 0`. Finds the last element `<= value` (or index 0) —
/// exactly where the plain scan would stop — in O(log gap).
#[cold]
fn gallop_backward(
    arr: &[Id],
    value: Id,
    from: usize,
    cursor: &mut usize,
    stats: &mut SearchStats,
) -> Option<usize> {
    debug_assert!(arr[from] > value && from > 0);
    let mut hi = from; // invariant: arr[hi] > value
    let mut jump = 1usize;
    let lo = loop {
        // Clamped at index 0 by `saturating_sub` — the mirror-image of
        // the forward clamp, so the backward gallop cannot overshoot
        // the run start either.
        let cand = hi.saturating_sub(jump);
        stats.sequential_steps += 1;
        if arr[cand] <= value {
            break cand;
        }
        if cand == 0 {
            // Ran off the start: like the plain scan, rest on index 0.
            *cursor = 0;
            return None;
        }
        hi = cand;
        jump = jump.saturating_mul(2);
    };
    // Binary search the bracket [lo, hi) for the last element <= value.
    let (mut l, mut h) = (lo, hi - 1);
    while l < h {
        let mid = l + (h - l).div_ceil(2);
        stats.sequential_steps += 1;
        if arr[mid] > value {
            h = mid - 1;
        } else {
            l = mid;
        }
    }
    *cursor = l;
    (arr[l] == value).then_some(l)
}

/// Whole-array binary search, updating the cursor to the last examined
/// position.
///
/// Per §4.1 the search deliberately spans the full array rather than the
/// sub-range suggested by the cursor: "always performing binary search
/// on the whole array leads to the array positions visited during the
/// first steps to frequently occur in cache".
#[inline]
pub fn binary_search_cursor(
    arr: &[Id],
    value: Id,
    cursor: &mut usize,
    stats: &mut SearchStats,
) -> Option<usize> {
    stats.binary_searches += 1;
    let mut lo = 0usize;
    let mut hi = arr.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        stats.binary_steps += 1;
        *cursor = mid;
        match arr[mid].cmp(&value) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Some(mid),
        }
    }
    // Miss: rest the cursor on the element nearest the insertion point.
    *cursor = lo.min(arr.len().saturating_sub(1));
    None
}

/// ID-to-Position lookup, updating the cursor so a subsequent adaptive
/// decision measures distance from the found position.
#[inline]
fn index_search(
    idx: &IdPosIndex,
    arr: &[Id],
    value: Id,
    cursor: &mut usize,
    stats: &mut SearchStats,
) -> Option<usize> {
    stats.index_lookups += 1;
    // One bitmap word + (amortized) one anchor + partial-block words; we
    // charge the §4.2 claim of "one memory access and some computation"
    // as 2 words (bit word + anchor) — partial-block popcounts stay in
    // the same cache line for interval ≤ 512.
    stats.index_words += 2;
    match idx.lookup(value) {
        Some(pos) => {
            *cursor = pos;
            Some(pos)
        }
        None => {
            // Miss: the bitmap answers without touching `arr`; leave the
            // cursor where it was (no better information).
            let _ = arr;
            None
        }
    }
}

/// Algorithm 1 of the paper: adaptively switch between sequential search
/// from the cursor and a random-access method (binary search or
/// ID-to-Position lookup) based on the value distance.
///
/// `threshold` is in **value space**: the calibration's position window
/// multiplied by the replica's average inter-key gap (§4.1's uniform
/// distribution assumption). `index` supplies the ID-to-Position index
/// for the index-based strategies; absent indexes fall back to binary
/// search.
#[inline]
pub fn adaptive_search(
    arr: &[Id],
    value: Id,
    cursor: &mut usize,
    threshold: i64,
    strategy: ProbeStrategy,
    index: Option<&IdPosIndex>,
    stats: &mut SearchStats,
) -> Option<usize> {
    if arr.is_empty() {
        return None;
    }
    match strategy {
        ProbeStrategy::AlwaysSequential => sequential_search(arr, value, cursor, stats),
        ProbeStrategy::AlwaysBinary => binary_search_cursor(arr, value, cursor, stats),
        ProbeStrategy::AlwaysIndex => match index {
            Some(idx) => index_search(idx, arr, value, cursor, stats),
            None => binary_search_cursor(arr, value, cursor, stats),
        },
        ProbeStrategy::AdaptiveBinary | ProbeStrategy::AdaptiveIndex => {
            // Lines 2-3 of Algorithm 1: one subtraction, one absolute
            // value, one comparison.
            let at = (*cursor).min(arr.len() - 1);
            let distance = arr[at] as i64 - value as i64;
            if distance.abs() <= threshold {
                sequential_search(arr, value, cursor, stats)
            } else if strategy == ProbeStrategy::AdaptiveIndex {
                match index {
                    Some(idx) => index_search(idx, arr, value, cursor, stats),
                    None => binary_search_cursor(arr, value, cursor, stats),
                }
            } else {
                binary_search_cursor(arr, value, cursor, stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> Vec<Id> {
        vec![5, 7, 13, 18, 24, 29, 33, 45]
    }

    #[test]
    fn sequential_forward_and_backward() {
        let a = arr();
        let mut stats = SearchStats::new();
        let mut cursor = 0;
        assert_eq!(sequential_search(&a, 18, &mut cursor, &mut stats), Some(3));
        assert_eq!(cursor, 3);
        // Backward from cursor.
        assert_eq!(sequential_search(&a, 7, &mut cursor, &mut stats), Some(1));
        assert_eq!(cursor, 1);
        // Miss in the middle: cursor rests near the gap.
        assert_eq!(sequential_search(&a, 20, &mut cursor, &mut stats), None);
        assert!(cursor == 4 || cursor == 3, "cursor {cursor}");
        // Miss past the end.
        assert_eq!(sequential_search(&a, 99, &mut cursor, &mut stats), None);
        assert_eq!(cursor, a.len() - 1);
        // Miss before the start.
        assert_eq!(sequential_search(&a, 1, &mut cursor, &mut stats), None);
        assert_eq!(cursor, 0);
        assert_eq!(stats.sequential_searches, 5);
        assert!(stats.sequential_steps >= 5);
    }

    #[test]
    fn binary_matches_std() {
        let a = arr();
        let mut stats = SearchStats::new();
        for probe in 0..50u32 {
            let mut cursor = 3;
            assert_eq!(
                binary_search_cursor(&a, probe, &mut cursor, &mut stats),
                a.binary_search(&probe).ok(),
                "probe {probe}"
            );
            assert!(cursor < a.len());
        }
        assert_eq!(stats.binary_searches, 50);
    }

    #[test]
    fn empty_array() {
        let a: Vec<Id> = vec![];
        let mut stats = SearchStats::new();
        let mut cursor = 0;
        assert_eq!(sequential_search(&a, 5, &mut cursor, &mut stats), None);
        assert_eq!(binary_search_cursor(&a, 5, &mut cursor, &mut stats), None);
        for strat in ProbeStrategy::TABLE5 {
            assert_eq!(
                adaptive_search(&a, 5, &mut cursor, 100, strat, None, &mut stats),
                None
            );
        }
    }

    #[test]
    fn adaptive_decision_follows_threshold() {
        let a: Vec<Id> = (0..1000).map(|i| i * 10).collect();
        let idx = IdPosIndex::build(&a, 10_000, 64);

        // Close probe (distance 10 <= threshold 50): sequential.
        let mut stats = SearchStats::new();
        let mut cursor = 100; // arr[100] = 1000
        let r = adaptive_search(
            &a, 1010, &mut cursor, 50,
            ProbeStrategy::AdaptiveBinary, Some(&idx), &mut stats,
        );
        assert_eq!(r, Some(101));
        assert_eq!(stats.sequential_searches, 1);
        assert_eq!(stats.binary_searches, 0);

        // Far probe: binary.
        let mut stats = SearchStats::new();
        let mut cursor = 100;
        let r = adaptive_search(
            &a, 9990, &mut cursor, 50,
            ProbeStrategy::AdaptiveBinary, Some(&idx), &mut stats,
        );
        assert_eq!(r, Some(999));
        assert_eq!(stats.binary_searches, 1);
        assert_eq!(stats.sequential_searches, 0);

        // Far probe with AdaptiveIndex: index lookup.
        let mut stats = SearchStats::new();
        let mut cursor = 100;
        let r = adaptive_search(
            &a, 9990, &mut cursor, 50,
            ProbeStrategy::AdaptiveIndex, Some(&idx), &mut stats,
        );
        assert_eq!(r, Some(999));
        assert_eq!(stats.index_lookups, 1);
        assert_eq!(cursor, 999, "index lookup must update the cursor");
    }

    #[test]
    fn all_strategies_agree_with_oracle() {
        let a: Vec<Id> = vec![2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377];
        let idx = IdPosIndex::build(&a, 400, 64);
        let strategies = [
            ProbeStrategy::AlwaysBinary,
            ProbeStrategy::AdaptiveBinary,
            ProbeStrategy::AlwaysIndex,
            ProbeStrategy::AdaptiveIndex,
            ProbeStrategy::AlwaysSequential,
        ];
        for strat in strategies {
            let mut stats = SearchStats::new();
            let mut cursor = 0;
            for probe in 0..400u32 {
                assert_eq!(
                    adaptive_search(&a, probe, &mut cursor, 7, strat, Some(&idx), &mut stats),
                    a.binary_search(&probe).ok(),
                    "{strat} probe {probe} cursor {cursor}"
                );
            }
        }
    }

    /// Plain linear-scan oracle for the cursor's resting position:
    /// exactly what `sequential_search` did before galloping.
    fn linear_oracle(arr: &[Id], value: Id, cursor: usize) -> (Option<usize>, usize) {
        let mut i = cursor.min(arr.len() - 1);
        if arr[i] < value {
            while arr[i] < value {
                if i + 1 == arr.len() {
                    return (None, i);
                }
                i += 1;
            }
        } else {
            while arr[i] > value {
                if i == 0 {
                    return (None, 0);
                }
                i -= 1;
            }
        }
        ((arr[i] == value).then_some(i), i)
    }

    #[test]
    fn galloping_matches_linear_scan() {
        // Long gaps force the gallop path (distance >> GALLOP_AFTER);
        // result AND cursor rest must match the plain scan exactly.
        let a: Vec<Id> = (0..2000).map(|i| i * 3 + (i % 3)).collect();
        for start in [0usize, 1, 500, 1337, 1999] {
            for probe in (0..6100u32).step_by(13) {
                let (want, want_cursor) = linear_oracle(&a, probe, start);
                let mut stats = SearchStats::new();
                let mut cursor = start;
                let got = sequential_search(&a, probe, &mut cursor, &mut stats);
                assert_eq!(got, want, "probe {probe} from {start}");
                assert_eq!(cursor, want_cursor, "probe {probe} from {start}");
            }
        }
    }

    #[test]
    fn gallop_never_overshoots_boundaries() {
        // Exhaustive cursor-parity pinning at the shapes where an
        // unclamped gallop would overshoot: run ends, length-1 runs,
        // and probes past the last key. Result AND resting cursor must
        // match the plain linear scan for every (start, probe) pair.
        let shapes: Vec<Vec<Id>> = vec![
            vec![7],                                      // length-1 run
            vec![3, 9],                                   // length-2
            (0..40).map(|i| i * 100).collect(),           // wide gaps
            (0..17).map(|i| i * i).collect(),             // uneven gaps
            vec![0, 1, 2, 3, 1_000_000, u32::MAX - 1],    // extreme tail
        ];
        for a in &shapes {
            let max = *a.last().unwrap();
            let probes: Vec<Id> = a
                .iter()
                .flat_map(|&v| [v.saturating_sub(1), v, v.saturating_add(1)])
                .chain([0, max, max.saturating_add(1), u32::MAX])
                .collect();
            // Starts include positions past the end of the array —
            // stale cursors from a longer previous run must clamp.
            for start in (0..a.len() + 3).chain([usize::MAX]) {
                for &probe in &probes {
                    let (want, want_cursor) =
                        linear_oracle(a, probe, start.min(a.len() - 1));
                    let mut stats = SearchStats::new();
                    let mut cursor = start;
                    let got = sequential_search(a, probe, &mut cursor, &mut stats);
                    assert_eq!(got, want, "len {} probe {probe} from {start}", a.len());
                    assert_eq!(
                        cursor, want_cursor,
                        "cursor parity: len {} probe {probe} from {start}",
                        a.len()
                    );
                }
            }
        }
    }

    #[test]
    fn galloping_is_logarithmic_in_gap() {
        let a: Vec<Id> = (0..1_000_000).collect();
        let mut stats = SearchStats::new();
        let mut cursor = 0;
        assert_eq!(
            sequential_search(&a, 999_999, &mut cursor, &mut stats),
            Some(999_999)
        );
        assert_eq!(cursor, 999_999);
        // A plain scan would take ~1M steps; galloping takes
        // GALLOP_AFTER + O(log gap).
        assert!(
            stats.sequential_steps < 64,
            "steps {}",
            stats.sequential_steps
        );
        // Backward across the whole array.
        let mut stats = SearchStats::new();
        assert_eq!(sequential_search(&a, 0, &mut cursor, &mut stats), Some(0));
        assert_eq!(cursor, 0);
        assert!(
            stats.sequential_steps < 64,
            "steps {}",
            stats.sequential_steps
        );
    }

    #[test]
    fn index_strategies_fall_back_without_index() {
        let a = arr();
        let mut stats = SearchStats::new();
        let mut cursor = 0;
        let r = adaptive_search(
            &a, 45, &mut cursor, 0,
            ProbeStrategy::AlwaysIndex, None, &mut stats,
        );
        assert_eq!(r, Some(7));
        assert_eq!(stats.binary_searches, 1);
        assert_eq!(stats.index_lookups, 0);
    }

    #[test]
    fn labels() {
        assert_eq!(ProbeStrategy::AdaptiveBinary.label(), "AdBinary");
        assert_eq!(ProbeStrategy::TABLE5.map(|s| s.label()),
                   ["Binary", "AdBinary", "Index", "AdIndex"]);
    }
}
