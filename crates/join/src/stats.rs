//! Search-operation counters.
//!
//! The paper's Table 6 reports, per query, the number of binary vs.
//! sequential searches chosen by the adaptive method, plus hardware
//! cycle and cache-miss counters comparing binary search with the
//! ID-to-Position index. Hardware counters are not portable, so this
//! reproduction tallies deterministic software equivalents: search
//! counts, comparison/step counts, and array words touched (a locality
//! proxy — every touched word is a potential cache line fetch).

/// Deterministic counters accumulated by every search operation.
///
/// One instance lives per worker thread (no sharing, no atomics — PARJ
/// workers never communicate); results are merged after the join.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Times the adaptive method chose (or a fixed strategy forced)
    /// whole-array binary search.
    pub binary_searches: u64,
    /// Times sequential search from the cursor ran.
    pub sequential_searches: u64,
    /// Times an ID-to-Position lookup ran.
    pub index_lookups: u64,
    /// Probe-array elements examined by binary searches.
    pub binary_steps: u64,
    /// Probe-array elements examined by sequential searches.
    pub sequential_steps: u64,
    /// Bitmap/anchor words examined by ID-to-Position lookups.
    pub index_words: u64,
    /// Membership checks inside value groups (second-column searches).
    pub group_probes: u64,
}

impl SearchStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (merging per-worker counters).
    pub fn merge(&mut self, other: &SearchStats) {
        self.binary_searches += other.binary_searches;
        self.sequential_searches += other.sequential_searches;
        self.index_lookups += other.index_lookups;
        self.binary_steps += other.binary_steps;
        self.sequential_steps += other.sequential_steps;
        self.index_words += other.index_words;
        self.group_probes += other.group_probes;
    }

    /// Total searches of any kind.
    pub fn total_searches(&self) -> u64 {
        self.binary_searches + self.sequential_searches + self.index_lookups
    }

    /// Total array words touched across all search kinds — the
    /// deterministic stand-in for Table 6's cache-miss columns.
    pub fn words_touched(&self) -> u64 {
        self.binary_steps + self.sequential_steps + self.index_words + self.group_probes
    }
}

impl std::ops::AddAssign<&SearchStats> for SearchStats {
    fn add_assign(&mut self, rhs: &SearchStats) {
        self.merge(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let a = SearchStats {
            binary_searches: 1,
            sequential_searches: 2,
            index_lookups: 3,
            binary_steps: 4,
            sequential_steps: 5,
            index_words: 6,
            group_probes: 7,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.binary_searches, 2);
        assert_eq!(b.group_probes, 14);
        assert_eq!(b.total_searches(), 12);
        assert_eq!(b.words_touched(), 44);
    }
}
