//! Conversion of calibrated position windows into per-replica value
//! thresholds.
//!
//! Algorithm 1 compares the *arithmetic* distance between the value
//! under the cursor and the probe value, because that needs no extra
//! memory access. The calibration, however, produces a window in
//! *positions*. §4.1 bridges the two with the uniform-distribution
//! assumption: "the difference between an element and its subsequent one
//! is (array[size − 1] − array[0])/size", so
//! `value_threshold = window × avg_gap`, precomputed per replica: "once
//! the calibration process terminates, we precompute the estimated value
//! distance for each property, such that during query execution we only
//! need to perform one integer subtraction, one absolute value
//! computation and one comparison for each tuple".

use parj_dict::Id;
use parj_store::{Replica, SortOrder, TripleStore};

use crate::calibrate::CalibrationResult;

/// The two value-space thresholds for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaThresholds {
    /// Switch-to-sequential threshold when the alternative is binary
    /// search.
    pub binary: i64,
    /// Switch-to-sequential threshold when the alternative is the
    /// ID-to-Position index (smaller, per §4.2: "the threshold when
    /// ID-to-Position index is used being smaller than the threshold
    /// when binary search is used").
    pub index: i64,
}

impl ReplicaThresholds {
    /// Thresholds that force the adaptive strategies to always choose
    /// the random-access method (used to disable adaptivity).
    pub const NEVER_SEQUENTIAL: ReplicaThresholds = ReplicaThresholds { binary: -1, index: -1 };
}

/// Per-replica thresholds for a whole store, indexed by `(predicate,
/// sort order)`.
#[derive(Debug, Clone, Default)]
pub struct ThresholdTable {
    /// `per[pred][order]`, order 0 = S-O, 1 = O-S.
    per: Vec<[ReplicaThresholds; 2]>,
}

fn avg_gap(replica: &Replica) -> i64 {
    let keys = replica.keys();
    match (keys.first(), keys.last()) {
        (Some(&first), Some(&last)) if !keys.is_empty() => {
            (((last - first) as i64) / keys.len() as i64).max(1)
        }
        _ => 1,
    }
}

impl ThresholdTable {
    /// Builds the table from calibration windows: for every replica,
    /// `threshold = window × avg_gap(replica)`.
    pub fn from_calibration(store: &TripleStore, cal: &CalibrationResult) -> Self {
        let per = store
            .partitions()
            .iter()
            .map(|part| {
                [SortOrder::SO, SortOrder::OS].map(|order| {
                    let gap = avg_gap(part.replica(order));
                    ReplicaThresholds {
                        binary: cal.window_binary as i64 * gap,
                        index: cal.window_index as i64 * gap,
                    }
                })
            })
            .collect();
        ThresholdTable { per }
    }

    /// A table applying the same thresholds to every replica (tests and
    /// ablations).
    pub fn uniform(num_predicates: usize, t: ReplicaThresholds) -> Self {
        ThresholdTable {
            per: vec![[t; 2]; num_predicates],
        }
    }

    /// Thresholds for `(predicate, order)`; predicates outside the table
    /// (e.g. freshly added) get conservative zero thresholds, which
    /// degrade adaptive strategies to their random-access method.
    #[inline]
    pub fn get(&self, predicate: Id, order: SortOrder) -> ReplicaThresholds {
        let idx = match order {
            SortOrder::SO => 0,
            SortOrder::OS => 1,
        };
        self.per
            .get(predicate as usize)
            .map(|pair| pair[idx])
            .unwrap_or(ReplicaThresholds { binary: 0, index: 0 })
    }

    /// Number of predicates covered.
    pub fn len(&self) -> usize {
        self.per.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.per.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_store::StoreBuilder;

    #[test]
    fn thresholds_scale_with_gap() {
        let mut b = StoreBuilder::new();
        // Predicate 0: dense subjects (gap 1). Predicate 1: every 100th
        // resource id is a subject (gap ~100 after interleaving objects).
        for i in 0..1000u32 {
            b.add_term_triple(
                &Term::iri(format!("dense{i}")),
                &Term::iri("p-dense"),
                &Term::iri("x"),
            );
        }
        for i in 0..10u32 {
            b.add_term_triple(
                &Term::iri(format!("dense{}", i * 100)),
                &Term::iri("p-sparse"),
                &Term::iri("x"),
            );
        }
        let store = b.build();
        let cal = CalibrationResult {
            window_binary: 200,
            window_index: 20,
            iterations_binary: 1,
            iterations_index: 1,
        };
        let t = ThresholdTable::from_calibration(&store, &cal);
        let dense = store.dict().predicate_id(&Term::iri("p-dense")).unwrap();
        let sparse = store.dict().predicate_id(&Term::iri("p-sparse")).unwrap();
        let td = t.get(dense, SortOrder::SO);
        let ts = t.get(sparse, SortOrder::SO);
        assert!(ts.binary > td.binary, "sparse {} dense {}", ts.binary, td.binary);
        // Index threshold is the smaller of the two everywhere.
        assert!(td.index < td.binary);
        assert!(ts.index < ts.binary);
    }

    #[test]
    fn out_of_range_predicate_gets_zero() {
        let t = ThresholdTable::uniform(1, ReplicaThresholds { binary: 5, index: 2 });
        assert_eq!(t.get(0, SortOrder::SO).binary, 5);
        assert_eq!(t.get(9, SortOrder::OS).binary, 0);
    }

    #[test]
    fn empty_replica_gap_is_one() {
        let mut b = StoreBuilder::new();
        b.dict_mut().encode_predicate(&Term::iri("empty"));
        let store = b.build();
        let t = ThresholdTable::from_calibration(&store, &CalibrationResult::paper_defaults());
        assert_eq!(t.get(0, SortOrder::SO).binary, 200);
    }
}
