//! Loom model of the worker pool's submit/pull/park/shutdown handshake.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The executor's
//! determinism and rendezvous arguments both lean on one pool
//! invariant: when [`WorkerPool::run`] returns, every participant that
//! will *ever* run the job has finished — the submitter closed the job
//! under the pool mutex, so no late worker can claim a seat and touch
//! the query's shared state afterwards. These models drive real
//! morsel-cursor participants through the pool under injected
//! schedules and check that invariant plus full, exactly-once morsel
//! coverage and clean shutdown (the pool drop at the end of every
//! model joins all workers; a leaked participant would hang the test).

#![cfg(loom)]

use parj_join::WorkerPool;
use parj_sync::atomic::{AtomicUsize, Ordering};
use parj_sync::{thread, Arc};

/// A counting participant over `morsels` work units: the loom-visible
/// skeleton of `exec.rs`'s `run_participant`. Each claimed morsel
/// increments its slot in `hits` exactly once.
fn cursor_participant(
    cursor: &Arc<AtomicUsize>,
    hits: &Arc<Vec<AtomicUsize>>,
) -> parj_join::Participant {
    let cursor = Arc::clone(cursor);
    let hits = Arc::clone(hits);
    Arc::new(move || loop {
        // ordering: Relaxed suffices — the cursor only partitions the
        // morsel space; completion visibility comes from the pool's
        // rendezvous mutex, which is exactly what this model checks.
        let m = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = hits.get(m) else { return };
        slot.fetch_add(1, Ordering::Relaxed);
    })
}

/// One submitter, one pool worker helping: whatever the interleaving
/// of park, wake, claim, and pull, `run` must not return before every
/// morsel was claimed exactly once.
#[test]
fn loom_every_morsel_runs_exactly_once() {
    loom::model(|| {
        let pool = WorkerPool::new(1);
        let cursor = Arc::new(AtomicUsize::new(0));
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        pool.run(1, cursor_participant(&cursor, &hits));
        for (m, slot) in hits.iter().enumerate() {
            // ordering: Relaxed read is fine post-rendezvous; run()'s
            // mutex release/acquire ordered all participant writes.
            assert_eq!(slot.load(Ordering::Relaxed), 1, "morsel {m} hit count");
        }
        assert!(pool.stats().jobs >= 1);
    });
}

/// Two submitters race for one helper: jobs queue FIFO, the helper may
/// land on either or neither, and both queries must still see their
/// own cursor fully drained on return — no cross-job interference, no
/// lost wakeup leaving a submitter parked forever.
#[test]
fn loom_concurrent_submitters_share_one_worker() {
    loom::model(|| {
        let pool = Arc::new(WorkerPool::new(1));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let cursor = Arc::new(AtomicUsize::new(0));
                    let hits: Arc<Vec<AtomicUsize>> =
                        Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
                    pool.run(1, cursor_participant(&cursor, &hits));
                    for slot in hits.iter() {
                        // ordering: post-rendezvous read, see above.
                        assert_eq!(slot.load(Ordering::Relaxed), 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter must not panic");
        }
    });
}

/// Shutdown races a parked worker: dropping the pool right after a job
/// completes must wake the worker out of its park and join it, never
/// deadlock, and never let it claim a seat on a closed job.
#[test]
fn loom_shutdown_wakes_parked_workers() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let cursor = Arc::new(AtomicUsize::new(0));
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..1).map(|_| AtomicUsize::new(0)).collect());
        pool.run(2, cursor_participant(&cursor, &hits));
        // ordering: post-rendezvous read, see above.
        assert_eq!(hits[0].load(Ordering::Relaxed), 1);
        drop(pool); // joins both workers; a hang here fails the model
    });
}
