//! Property tests for the adaptive search and the executor.

use proptest::prelude::*;

use parj_dict::{Id, Term};
use parj_join::{
    adaptive_search, binary_search_cursor, execute_collect, sequential_search, Atom, ExecOptions,
    PhysicalPlan, PlanStep, ProbeStrategy, SearchStats,
};
use parj_store::{IdPosIndex, SortOrder, StoreBuilder};

fn sorted_unique(mut xs: Vec<Id>) -> Vec<Id> {
    xs.sort_unstable();
    xs.dedup();
    xs
}

proptest! {
    /// Every strategy, from any cursor position, with any threshold,
    /// returns exactly what `slice::binary_search` returns.
    #[test]
    fn search_agrees_with_std(
        keys in proptest::collection::vec(0u32..10_000, 0..300).prop_map(sorted_unique),
        probes in proptest::collection::vec(0u32..10_000, 1..100),
        start_cursor in 0usize..300,
        threshold in -1i64..5_000,
    ) {
        let universe = keys.last().map_or(1, |&m| m as usize + 1);
        let idx = IdPosIndex::build(&keys, universe, 64);
        for strategy in [
            ProbeStrategy::AlwaysBinary,
            ProbeStrategy::AdaptiveBinary,
            ProbeStrategy::AlwaysIndex,
            ProbeStrategy::AdaptiveIndex,
            ProbeStrategy::AlwaysSequential,
        ] {
            let mut stats = SearchStats::default();
            // Cursors always originate inside the array in real use; an
            // index miss deliberately leaves the cursor untouched, so an
            // injected out-of-range start would persist.
            let mut cursor = start_cursor.min(keys.len().saturating_sub(1));
            for &p in &probes {
                let got = adaptive_search(
                    &keys, p, &mut cursor, threshold, strategy, Some(&idx), &mut stats,
                );
                prop_assert_eq!(got, keys.binary_search(&p).ok(),
                    "{} probe {} cursor {}", strategy, p, cursor);
                if !keys.is_empty() {
                    prop_assert!(cursor < keys.len(), "cursor out of bounds");
                }
            }
        }
    }

    /// Cursor state never affects correctness of the primitives, and the
    /// stats tally what actually ran.
    #[test]
    fn primitives_and_stats(
        keys in proptest::collection::vec(0u32..2_000, 1..200).prop_map(sorted_unique),
        probes in proptest::collection::vec(0u32..2_000, 1..50),
    ) {
        prop_assume!(!keys.is_empty());
        let mut stats = SearchStats::default();
        let mut cursor = 0;
        for &p in &probes {
            prop_assert_eq!(
                sequential_search(&keys, p, &mut cursor, &mut stats),
                keys.binary_search(&p).ok()
            );
        }
        prop_assert_eq!(stats.sequential_searches, probes.len() as u64);
        prop_assert_eq!(stats.binary_searches, 0);

        let mut stats = SearchStats::default();
        let mut cursor = 0;
        for &p in &probes {
            prop_assert_eq!(
                binary_search_cursor(&keys, p, &mut cursor, &mut stats),
                keys.binary_search(&p).ok()
            );
        }
        prop_assert_eq!(stats.binary_searches, probes.len() as u64);
        // Binary search examines at most ceil(log2(n))+1 elements.
        let per_probe_cap = (keys.len().ilog2() + 2) as u64;
        prop_assert!(stats.binary_steps <= per_probe_cap * probes.len() as u64);
    }

    /// A two-step join over random data returns the same multiset under
    /// every strategy / thread count / morsel granularity, equal to a
    /// nested-loop oracle computed here.
    #[test]
    fn executor_invariant_under_configuration(
        edges_a in proptest::collection::vec((0u32..30, 0u32..30), 1..80),
        edges_b in proptest::collection::vec((0u32..30, 0u32..30), 1..80),
        threads in 1usize..6,
        morsel_size in 1usize..6,
    ) {
        let mut b = StoreBuilder::new();
        // Seed resources densely so ids == raw numbers.
        for r in 0..30u32 {
            b.dict_mut().encode_resource(&Term::iri(format!("r{r}")));
        }
        for p in ["pa", "pb"] {
            b.dict_mut().encode_predicate(&Term::iri(p));
        }
        for &(s, o) in &edges_a {
            b.add_encoded(parj_dict::EncodedTriple::new(s, 0, o));
        }
        for &(s, o) in &edges_b {
            b.add_encoded(parj_dict::EncodedTriple::new(s, 1, o));
        }
        let store = b.build();

        // ?x pa ?y . ?y pb ?z  (object-subject chain)
        let plan = PhysicalPlan::new(
            vec![
                PlanStep { predicate: 0, order: SortOrder::SO, key: Atom::Var(0), value: Atom::Var(1) },
                PlanStep { predicate: 1, order: SortOrder::SO, key: Atom::Var(1), value: Atom::Var(2) },
            ],
            3,
            vec![0, 1, 2],
        ).unwrap();

        // Oracle (set semantics on each predicate, matching the store).
        let mut ea = edges_a.clone();
        ea.sort_unstable();
        ea.dedup();
        let mut eb = edges_b.clone();
        eb.sort_unstable();
        eb.dedup();
        let mut expected: Vec<Vec<Id>> = Vec::new();
        for &(x, y) in &ea {
            for &(y2, z) in &eb {
                if y == y2 {
                    expected.push(vec![x, y, z]);
                }
            }
        }
        expected.sort_unstable();

        let mut baseline: Option<Vec<Vec<Id>>> = None;
        for strategy in ProbeStrategy::TABLE5 {
            let opts = ExecOptions::builder()
                .threads(threads)
                .morsel_size(morsel_size)
                .strategy(strategy)
                .build()
                .expect("valid options");
            let (batch, _) = execute_collect(&store, &plan, &opts).expect("runs");
            // Determinism: the *unsorted* row order must already be
            // identical across strategies (and, by the morsel-order
            // merge, across thread counts — the driver-domain order).
            let rows = batch.into_rows();
            match &baseline {
                None => baseline = Some(rows.clone()),
                Some(b) => prop_assert_eq!(&rows, b,
                    "row order diverged under strategy {} threads {} morsel {}",
                    strategy, threads, morsel_size),
            }
            let mut sorted = rows;
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &expected, "strategy {} threads {} morsel {}",
                strategy, threads, morsel_size);
        }
    }
}
