//! Lock-light observability for the PARJ engine.
//!
//! This crate is the metrics substrate behind the engine's
//! `EXPLAIN ANALYZE` reports, the CLI `stats` subcommand, and any
//! scrape endpoint a serving process wants to mount. It has three
//! layers, all dependency-free:
//!
//! * [`metrics`] — atomic primitives ([`Counter`], [`Gauge`],
//!   [`Histogram`], [`GaugeVec`]). Hot-path recording is one relaxed
//!   `fetch_add`; no locks, no allocation.
//! * [`registry`] — [`EngineMetrics`], the typed registry of every
//!   family the engine records: query outcomes and phase timings,
//!   executor search mix and shard imbalance, load-pipeline totals,
//!   and store/dictionary memory gauges.
//! * [`snapshot`] — [`MetricsSnapshot`], a plain-data capture with
//!   Prometheus text ([`MetricsSnapshot::to_prometheus`]) and JSON
//!   ([`MetricsSnapshot::to_json`]) exposition.
//! * [`server`] — [`ServerMetrics`], the serving layer's registry
//!   (`parj_server_*` families: in-flight gauge, shed/quota counters,
//!   per-status response counters, request latency histogram).
//!
//! The engine crates depend on this one; this crate depends on
//! nothing, so the executor's `Recorder` trait can be satisfied by an
//! adapter without dragging exposition code into the join hot loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod server;
pub mod snapshot;

pub use metrics::{Counter, Gauge, GaugeVec, Histogram};
pub use registry::{
    CacheKind, EngineMetrics, PoolTotals, QueryOutcomeClass, QueryPhase, SearchKind, SearchTotals,
};
pub use server::{HttpStatusClass, ServerMetrics};
pub use snapshot::{
    FamilySnapshot, HistogramSnapshot, MetricKind, MetricsSnapshot, Sample, SampleValue,
};
