//! Lock-light metric primitives.
//!
//! Everything on the query hot path is a plain `AtomicU64` touched with
//! `Relaxed` ordering: one `fetch_add` per event, no locks, no
//! allocation. The only lock in the crate guards *label creation* in
//! [`GaugeVec`], which happens on the (rare, already write-locked)
//! store-finalize path — never while a query runs.

use parj_sync::atomic::{AtomicU64, Ordering};
use parj_sync::{LockLevel, OrderedRwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — independent event count; readers only need
        // eventual visibility, never cross-metric consistency
        // (loom_metrics checks snapshot monotonicity under this).
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — exposition read; staleness is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (bytes resident, queries
/// in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        // ordering: Relaxed — last-writer-wins by design for gauges.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` to the gauge.
    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — see Counter::add.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` from the gauge, saturating at zero on underflow
    /// (a mispaired `sub` must read as an empty gauge, not wrap to
    /// ~2^64 and poison every later reading).
    #[inline]
    pub fn sub(&self, n: u64) {
        // ordering: Relaxed — the CAS loop only needs the value it is
        // rewriting; no other memory is published through the gauge.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — exposition read; staleness is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` observations with fixed upper bounds.
///
/// Buckets are *non-cumulative* internally; the snapshot accumulates
/// them into the Prometheus convention (`le` buckets plus `+Inf`).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One slot per bound plus the overflow (`+Inf`) slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        // ordering: Relaxed — bucket/sum/count may be transiently
        // mutually inconsistent to a concurrent reader; each word is
        // individually exact, which is the documented contract
        // (loom_metrics checks the per-word exactness).
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — exposition read; staleness is acceptable.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — exposition read; staleness is acceptable.
        self.sum.load(Ordering::Relaxed)
    }

    /// Cumulative `(upper_bound, count)` pairs in Prometheus `le`
    /// convention; the final entry is the `+Inf` bucket.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            // ordering: Relaxed — buckets drift independently during
            // concurrent observes; quiescent reads are exact.
            acc += b.load(Ordering::Relaxed);
            out.push((self.bounds.get(i).copied(), acc));
        }
        out
    }
}

/// A family of gauges keyed by one label value, grown on demand.
///
/// Insertion takes the write lock; it happens only on the store
/// finalize path. Reads (exposition) take the read lock.
#[derive(Debug)]
pub struct GaugeVec {
    values: OrderedRwLock<std::collections::BTreeMap<String, u64>>,
}

impl Default for GaugeVec {
    fn default() -> Self {
        Self::new()
    }
}

impl GaugeVec {
    /// An empty family.
    pub fn new() -> Self {
        GaugeVec {
            // Metrics is the hierarchy floor: safe to update while
            // holding any other lock in the workspace.
            values: OrderedRwLock::new(
                LockLevel::Metrics,
                "obs.gauge_vec",
                std::collections::BTreeMap::new(),
            ),
        }
    }

    /// Sets the gauge for `label` to `v`, creating it if absent.
    pub fn set(&self, label: &str, v: u64) {
        self.values.write().insert(label.to_string(), v);
    }

    /// Replaces the entire family in one critical section (used when a
    /// store rebuild invalidates every previous label).
    pub fn replace(&self, entries: impl IntoIterator<Item = (String, u64)>) {
        let mut map = self.values.write();
        map.clear();
        map.extend(entries);
    }

    /// Current `(label, value)` pairs in label order.
    pub fn get_all(&self) -> Vec<(String, u64)> {
        self.values
            .read()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        // A mispaired sub (e.g. a double-decrement on an error path)
        // must leave the gauge empty, not wrapped to ~2^64.
        let g = Gauge::new();
        g.add(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.add(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_accumulate() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 5, 50, 500] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 556);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(Some(10), 2), (Some(100), 3), (None, 4)]
        );
    }

    #[test]
    fn gauge_vec_replace_resets_labels() {
        let v = GaugeVec::new();
        v.set("a", 1);
        v.set("b", 2);
        v.replace([("c".to_string(), 3)]);
        assert_eq!(v.get_all(), vec![("c".to_string(), 3)]);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
