//! The engine-wide metric registry.
//!
//! [`EngineMetrics`] owns one instance of every metric family the PARJ
//! engine records. Families with a fixed label set (query outcomes,
//! phases, search kinds) are plain arrays of atomics indexed by enum —
//! recording is a single relaxed `fetch_add` with no hashing and no
//! locking. Families whose labels depend on the data (per-predicate
//! replica bytes) use [`GaugeVec`], whose lock is only taken on the
//! store-finalize path.

use crate::metrics::{Counter, Gauge, GaugeVec, Histogram};
use crate::snapshot::{
    FamilySnapshot, HistogramSnapshot, MetricKind, MetricsSnapshot, Sample, SampleValue,
};

/// How a query run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcomeClass {
    /// Completed and returned results.
    Ok,
    /// Rejected before or during preparation (parse, translation,
    /// optimization, configuration).
    Error,
    /// Stopped by its wall-clock deadline.
    Timeout,
    /// Stopped by its result-row budget.
    Budget,
    /// Stopped by its cancellation token.
    Cancelled,
    /// A worker panicked (contained; the engine survived).
    Panicked,
}

impl QueryOutcomeClass {
    /// Stable label values for exposition.
    pub const ALL: [QueryOutcomeClass; 6] = [
        QueryOutcomeClass::Ok,
        QueryOutcomeClass::Error,
        QueryOutcomeClass::Timeout,
        QueryOutcomeClass::Budget,
        QueryOutcomeClass::Cancelled,
        QueryOutcomeClass::Panicked,
    ];

    /// The label value rendered for this class.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryOutcomeClass::Ok => "ok",
            QueryOutcomeClass::Error => "error",
            QueryOutcomeClass::Timeout => "timeout",
            QueryOutcomeClass::Budget => "budget",
            QueryOutcomeClass::Cancelled => "cancelled",
            QueryOutcomeClass::Panicked => "panicked",
        }
    }
}

/// A query-lifecycle phase, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPhase {
    /// SPARQL parsing.
    Parse,
    /// Dictionary translation of the parsed query.
    Translate,
    /// Fingerprinting and plan/result cache probes.
    CacheLookup,
    /// Statistics-driven join ordering.
    Optimize,
    /// Parallel join execution.
    Execute,
    /// Result decode / ordering / aggregation.
    Decode,
}

impl QueryPhase {
    /// Phases in pipeline order.
    pub const ALL: [QueryPhase; 6] = [
        QueryPhase::Parse,
        QueryPhase::Translate,
        QueryPhase::CacheLookup,
        QueryPhase::Optimize,
        QueryPhase::Execute,
        QueryPhase::Decode,
    ];

    /// The label value rendered for this phase.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryPhase::Parse => "parse",
            QueryPhase::Translate => "translate",
            QueryPhase::CacheLookup => "cache_lookup",
            QueryPhase::Optimize => "optimize",
            QueryPhase::Execute => "execute",
            QueryPhase::Decode => "decode",
        }
    }
}

/// Which cache tier a cache event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// The optimized-plan cache (skips the optimize phase on hit).
    Plan,
    /// The result cache (skips execution entirely on hit).
    Result,
}

impl CacheKind {
    /// Both tiers, in exposition order.
    pub const ALL: [CacheKind; 2] = [CacheKind::Plan, CacheKind::Result];

    /// The label value rendered for this tier.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheKind::Plan => "plan",
            CacheKind::Result => "result",
        }
    }
}

/// A search operation kind of the adaptive probe (Algorithm 1 plus the
/// ID-to-Position index of §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// Sequential search from the per-step cursor (includes galloping).
    Sequential,
    /// Whole-array binary search.
    Binary,
    /// ID-to-Position index lookup.
    Index,
}

impl SearchKind {
    /// All kinds, in exposition order.
    pub const ALL: [SearchKind; 3] =
        [SearchKind::Sequential, SearchKind::Binary, SearchKind::Index];

    /// The label value rendered for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            SearchKind::Sequential => "sequential",
            SearchKind::Binary => "binary",
            SearchKind::Index => "index",
        }
    }
}

/// Search-mix totals for one query, already summed across workers.
/// Plain data so recorders stay decoupled from the executor's types.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchTotals {
    /// Sequential searches chosen.
    pub sequential: u64,
    /// Binary searches chosen.
    pub binary: u64,
    /// ID-to-Position lookups chosen.
    pub index: u64,
    /// Array words touched by sequential searches.
    pub sequential_steps: u64,
    /// Array words touched by binary searches.
    pub binary_steps: u64,
    /// Bitmap/anchor words touched by index lookups.
    pub index_words: u64,
    /// Group membership probes (second-column checks).
    pub group_probes: u64,
}

/// Cumulative totals of the engine's persistent worker pool, as plain
/// data so the registry stays decoupled from the executor's types.
/// All figures except `workers` and `queue_depth` are monotone
/// counters maintained by the pool itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolTotals {
    /// Worker threads the pool owns (constant for its lifetime).
    pub workers: u64,
    /// Jobs submitted across the pool's lifetime.
    pub jobs: u64,
    /// Times an idle worker joined a job as a helper.
    pub helper_joins: u64,
    /// Microseconds workers spent running job bodies.
    pub busy_micros: u64,
    /// Microseconds workers spent parked waiting for work.
    pub park_micros: u64,
    /// Jobs currently queued and accepting helpers.
    pub queue_depth: u64,
    /// Participant panics contained by the worker loop's backstop.
    pub panics_contained: u64,
}

/// Histogram bounds for query durations, in microseconds.
const DURATION_BOUNDS: [u64; 7] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000];
/// Histogram bounds for result rows per query.
const ROWS_BOUNDS: [u64; 7] = [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];
/// Histogram bounds for the shard-load imbalance factor ×1000
/// (1000 = perfectly balanced).
const IMBALANCE_BOUNDS: [u64; 7] = [1_000, 1_100, 1_250, 1_500, 2_000, 4_000, 8_000];

/// Every metric family the engine records. One instance is shared
/// (behind an `Arc`) by an engine, its [`SharedParj`]-style wrappers,
/// and any exposition endpoint.
///
/// [`SharedParj`]: https://docs.rs/parj-core
#[derive(Debug)]
pub struct EngineMetrics {
    // -- query lifecycle --------------------------------------------------
    /// `parj_queries_total{outcome}`.
    queries_total: [Counter; 6],
    /// `parj_queries_inflight`.
    queries_inflight: Gauge,
    /// `parj_query_phase_micros_total{phase}`.
    phase_micros: [Counter; 6],
    /// `parj_query_duration_micros` histogram.
    query_duration: Histogram,
    /// `parj_query_rows` histogram.
    query_rows: Histogram,
    /// `parj_result_rows_total`.
    result_rows_total: Counter,
    // -- plan/result cache --------------------------------------------------
    /// `parj_cache_hits_total{cache}`.
    cache_hits: [Counter; 2],
    /// `parj_cache_misses_total{cache}`.
    cache_misses: [Counter; 2],
    /// `parj_cache_evictions_total{cache}`.
    cache_evictions: [Counter; 2],
    /// `parj_cache_resident_bytes{cache}`.
    cache_resident_bytes: [Gauge; 2],
    /// `parj_cache_time_saved_micros_total{phase}` — wall time the
    /// populating run spent in phases a cache hit skipped.
    cache_time_saved: [Counter; 6],
    // -- executor internals -----------------------------------------------
    /// `parj_searches_total{kind}`.
    searches_total: [Counter; 3],
    /// `parj_search_words_total{kind}`.
    search_words_total: [Counter; 3],
    /// `parj_group_probes_total`.
    group_probes_total: Counter,
    /// `parj_probe_rows_total`.
    probe_rows_total: Counter,
    /// `parj_exec_morsels_total`.
    morsels_total: Counter,
    /// `parj_shard_imbalance_x1000` histogram (imbalance across the
    /// per-participant totals of the morsel distribution).
    shard_imbalance: Histogram,
    // -- worker pool --------------------------------------------------------
    /// `parj_pool_workers` gauge.
    pool_workers: Gauge,
    /// `parj_pool_queue_depth` gauge.
    pool_queue_depth: Gauge,
    /// `parj_pool_jobs_total`. Gauge storage: the pool maintains the
    /// cumulative total itself; publishing replaces the value.
    pool_jobs: Gauge,
    /// `parj_pool_helper_joins_total` (gauge storage, see above).
    pool_helper_joins: Gauge,
    /// `parj_pool_busy_micros_total` (gauge storage, see above).
    pool_busy_micros: Gauge,
    /// `parj_pool_park_micros_total` (gauge storage, see above).
    pool_park_micros: Gauge,
    /// `parj_pool_panics_contained_total` (gauge storage, see above).
    pool_panics_contained: Gauge,
    /// `parj_lock_wait_micros{level}` — cumulative time threads spent
    /// blocked acquiring ordered locks, per hierarchy level (gauge
    /// storage: `parj-sync` owns the counters; publishing replaces).
    lock_wait_micros: GaugeVec,
    // -- load pipeline -----------------------------------------------------
    /// `parj_load_statements_total{result}` (loaded / skipped).
    load_statements: [Counter; 2],
    /// `parj_load_micros_total`.
    load_micros_total: Counter,
    /// `parj_load_bytes_total`.
    load_bytes_total: Counter,
    // -- mutation delta ----------------------------------------------------
    /// `parj_delta_resident_triples`.
    delta_resident_triples: Gauge,
    /// `parj_delta_resident_bytes`.
    delta_resident_bytes: Gauge,
    /// `parj_delta_compactions_total`.
    delta_compactions_total: Counter,
    /// `parj_delta_compaction_micros`.
    delta_compaction_micros: Counter,
    /// `parj_cache_invalidations_total`.
    cache_invalidations_total: Counter,
    // -- store / dictionary memory ----------------------------------------
    /// `parj_store_triples`.
    store_triples: Gauge,
    /// `parj_store_partition_bytes`.
    store_partition_bytes: Gauge,
    /// `parj_store_replica_bytes{predicate}`.
    replica_bytes: GaugeVec,
    /// `parj_dict_bytes{section}` (resources / predicates).
    dict_bytes: [Gauge; 2],
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        EngineMetrics {
            queries_total: Default::default(),
            queries_inflight: Gauge::new(),
            phase_micros: Default::default(),
            query_duration: Histogram::new(&DURATION_BOUNDS),
            query_rows: Histogram::new(&ROWS_BOUNDS),
            result_rows_total: Counter::new(),
            cache_hits: Default::default(),
            cache_misses: Default::default(),
            cache_evictions: Default::default(),
            cache_resident_bytes: Default::default(),
            cache_time_saved: Default::default(),
            searches_total: Default::default(),
            search_words_total: Default::default(),
            group_probes_total: Counter::new(),
            probe_rows_total: Counter::new(),
            morsels_total: Counter::new(),
            shard_imbalance: Histogram::new(&IMBALANCE_BOUNDS),
            pool_workers: Gauge::new(),
            pool_queue_depth: Gauge::new(),
            pool_jobs: Gauge::new(),
            pool_helper_joins: Gauge::new(),
            pool_busy_micros: Gauge::new(),
            pool_park_micros: Gauge::new(),
            pool_panics_contained: Gauge::new(),
            lock_wait_micros: GaugeVec::new(),
            load_statements: Default::default(),
            load_micros_total: Counter::new(),
            load_bytes_total: Counter::new(),
            delta_resident_triples: Gauge::new(),
            delta_resident_bytes: Gauge::new(),
            delta_compactions_total: Counter::new(),
            delta_compaction_micros: Counter::new(),
            cache_invalidations_total: Counter::new(),
            store_triples: Gauge::new(),
            store_partition_bytes: Gauge::new(),
            replica_bytes: GaugeVec::new(),
            dict_bytes: Default::default(),
        }
    }

    /// Marks a query as started; pair with [`EngineMetrics::query_finished`].
    pub fn query_started(&self) {
        self.queries_inflight.add(1);
    }

    /// Marks a query as finished (any outcome).
    pub fn query_finished(&self) {
        self.queries_inflight.sub(1);
    }

    /// Records one completed query run: its outcome class, per-phase
    /// wall times (µs), total wall time, result rows, and the merged
    /// search mix of its workers (partial progress for failed runs).
    pub fn record_query(
        &self,
        outcome: QueryOutcomeClass,
        phases: &[(QueryPhase, u64)],
        total_micros: u64,
        rows: u64,
        search: &SearchTotals,
    ) {
        self.queries_total[outcome as usize].inc();
        for &(phase, micros) in phases {
            self.phase_micros[phase as usize].add(micros);
        }
        self.query_duration.observe(total_micros);
        self.query_rows.observe(rows);
        self.result_rows_total.add(rows);
        self.searches_total[SearchKind::Sequential as usize].add(search.sequential);
        self.searches_total[SearchKind::Binary as usize].add(search.binary);
        self.searches_total[SearchKind::Index as usize].add(search.index);
        self.search_words_total[SearchKind::Sequential as usize].add(search.sequential_steps);
        self.search_words_total[SearchKind::Binary as usize].add(search.binary_steps);
        self.search_words_total[SearchKind::Index as usize].add(search.index_words);
        self.group_probes_total.add(search.group_probes);
    }

    /// Records one cache probe: a hit or a miss against the given tier.
    /// Bypassed requests record nothing (they never probed).
    pub fn record_cache_lookup(&self, kind: CacheKind, hit: bool) {
        if hit {
            self.cache_hits[kind as usize].inc();
        } else {
            self.cache_misses[kind as usize].inc();
        }
    }

    /// Records `n` entries evicted from the given tier by byte-budget
    /// pressure.
    pub fn record_cache_evictions(&self, kind: CacheKind, n: u64) {
        self.cache_evictions[kind as usize].add(n);
    }

    /// Replaces the resident-bytes gauge of the given tier.
    pub fn set_cache_resident(&self, kind: CacheKind, bytes: u64) {
        self.cache_resident_bytes[kind as usize].set(bytes);
    }

    /// Records wall time a cache hit skipped: the time the populating
    /// run spent in `phase` (optimize for plan hits; execute for
    /// result hits).
    pub fn record_cache_time_saved(&self, phase: QueryPhase, micros: u64) {
        self.cache_time_saved[phase as usize].add(micros);
    }

    /// Records one plan execution's internals: binding tuples that
    /// entered probe steps, the load-imbalance factor ×1000 across
    /// participant totals (`max_units × participants / total_units`;
    /// 1000 = balanced), and the driver morsels executed.
    pub fn record_plan_exec(&self, probe_rows: u64, imbalance_x1000: u64, morsels: u64) {
        self.probe_rows_total.add(probe_rows);
        self.shard_imbalance.observe(imbalance_x1000);
        self.morsels_total.add(morsels);
    }

    /// Replaces the worker-pool families from the pool's own cumulative
    /// totals (the pool is the source of truth; every figure except the
    /// gauges is monotone).
    pub fn publish_pool(&self, t: &PoolTotals) {
        self.pool_workers.set(t.workers);
        self.pool_queue_depth.set(t.queue_depth);
        self.pool_jobs.set(t.jobs);
        self.pool_helper_joins.set(t.helper_joins);
        self.pool_busy_micros.set(t.busy_micros);
        self.pool_park_micros.set(t.park_micros);
        self.pool_panics_contained.set(t.panics_contained);
    }

    /// Replaces the per-level lock-contention family from `parj-sync`'s
    /// process-global wait counters (`lock_wait_totals()`); like the
    /// pool families, the source owns the cumulative totals and a
    /// snapshot publishes the latest view.
    pub fn publish_lock_waits<'a>(&self, totals: impl IntoIterator<Item = (&'a str, u64)>) {
        self.lock_wait_micros
            .replace(totals.into_iter().map(|(level, v)| (level.to_string(), v)));
    }

    /// Records one bulk-load: statements kept, statements skipped
    /// (lossy mode), wall time, and input bytes.
    pub fn record_load(&self, loaded: u64, skipped: u64, micros: u64, bytes: u64) {
        self.load_statements[0].add(loaded);
        self.load_statements[1].add(skipped);
        self.load_micros_total.add(micros);
        self.load_bytes_total.add(bytes);
    }

    /// Replaces the mutation-delta residency gauges after a mutation
    /// batch or a rebuild: uncompacted add/delete pairs still resident
    /// in the overlay, and overlay heap bytes (runs, compacted
    /// partitions, dictionary extension).
    pub fn set_delta_resident(&self, triples: u64, bytes: u64) {
        self.delta_resident_triples.set(triples);
        self.delta_resident_bytes.set(bytes);
    }

    /// Records delta compactions: how many predicates were compacted and
    /// the wall time they took together.
    pub fn record_compaction(&self, count: u64, micros: u64) {
        self.delta_compactions_total.add(count);
        self.delta_compaction_micros.add(micros);
    }

    /// Records `n` per-predicate cache epoch bumps performed by a
    /// mutation batch (each bump invalidates every entry referencing
    /// that predicate).
    pub fn record_cache_invalidations(&self, n: u64) {
        self.cache_invalidations_total.add(n);
    }

    /// Replaces the store/dictionary memory gauges after a (re)build:
    /// resident triples, total partition bytes, per-predicate replica
    /// bytes, and dictionary arena bytes split by section.
    pub fn set_store_memory(
        &self,
        triples: u64,
        partition_bytes: u64,
        per_predicate_bytes: impl IntoIterator<Item = (String, u64)>,
        dict_resource_bytes: u64,
        dict_predicate_bytes: u64,
    ) {
        self.store_triples.set(triples);
        self.store_partition_bytes.set(partition_bytes);
        self.replica_bytes.replace(per_predicate_bytes);
        self.dict_bytes[0].set(dict_resource_bytes);
        self.dict_bytes[1].set(dict_predicate_bytes);
    }

    /// Captures every family. Cheap (relaxed loads) and safe to call
    /// while queries are recording.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counter_fam = |name: &str, help: &str, samples: Vec<Sample>| FamilySnapshot {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Counter,
            samples,
        };
        let gauge_fam = |name: &str, help: &str, samples: Vec<Sample>| FamilySnapshot {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Gauge,
            samples,
        };
        let hist_fam = |name: &str, help: &str, h: &Histogram| FamilySnapshot {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            samples: vec![Sample {
                labels: Vec::new(),
                value: SampleValue::Histogram(HistogramSnapshot {
                    buckets: h.cumulative_buckets(),
                    sum: h.sum(),
                    count: h.count(),
                }),
            }],
        };
        let plain = |v: u64| Sample {
            labels: Vec::new(),
            value: SampleValue::Integer(v),
        };
        let labelled = |k: &str, v: &str, value: u64| Sample {
            labels: vec![(k.to_string(), v.to_string())],
            value: SampleValue::Integer(value),
        };

        MetricsSnapshot {
            families: vec![
                counter_fam(
                    "parj_queries_total",
                    "Queries run, by outcome class.",
                    QueryOutcomeClass::ALL
                        .iter()
                        .map(|&c| {
                            labelled("outcome", c.as_str(), self.queries_total[c as usize].get())
                        })
                        .collect(),
                ),
                gauge_fam(
                    "parj_queries_inflight",
                    "Queries currently executing.",
                    vec![plain(self.queries_inflight.get())],
                ),
                counter_fam(
                    "parj_query_phase_micros_total",
                    "Wall time spent per query phase, microseconds.",
                    QueryPhase::ALL
                        .iter()
                        .map(|&p| labelled("phase", p.as_str(), self.phase_micros[p as usize].get()))
                        .collect(),
                ),
                hist_fam(
                    "parj_query_duration_micros",
                    "Total wall time per query, microseconds.",
                    &self.query_duration,
                ),
                hist_fam(
                    "parj_query_rows",
                    "Result rows per query.",
                    &self.query_rows,
                ),
                counter_fam(
                    "parj_result_rows_total",
                    "Result rows produced across all queries.",
                    vec![plain(self.result_rows_total.get())],
                ),
                counter_fam(
                    "parj_cache_hits_total",
                    "Cache probes answered from the cache, by tier.",
                    CacheKind::ALL
                        .iter()
                        .map(|&k| labelled("cache", k.as_str(), self.cache_hits[k as usize].get()))
                        .collect(),
                ),
                counter_fam(
                    "parj_cache_misses_total",
                    "Cache probes that missed (including stale-generation removals), by tier.",
                    CacheKind::ALL
                        .iter()
                        .map(|&k| labelled("cache", k.as_str(), self.cache_misses[k as usize].get()))
                        .collect(),
                ),
                counter_fam(
                    "parj_cache_evictions_total",
                    "Entries evicted by byte-budget pressure, by tier.",
                    CacheKind::ALL
                        .iter()
                        .map(|&k| {
                            labelled("cache", k.as_str(), self.cache_evictions[k as usize].get())
                        })
                        .collect(),
                ),
                gauge_fam(
                    "parj_cache_resident_bytes",
                    "Bytes charged against the cache byte budget, by tier.",
                    CacheKind::ALL
                        .iter()
                        .map(|&k| {
                            labelled(
                                "cache",
                                k.as_str(),
                                self.cache_resident_bytes[k as usize].get(),
                            )
                        })
                        .collect(),
                ),
                counter_fam(
                    "parj_cache_time_saved_micros_total",
                    "Wall time cache hits skipped, by the phase they skipped.",
                    QueryPhase::ALL
                        .iter()
                        .map(|&p| {
                            labelled("phase", p.as_str(), self.cache_time_saved[p as usize].get())
                        })
                        .collect(),
                ),
                counter_fam(
                    "parj_searches_total",
                    "Probe searches by kind (the adaptive mix of Algorithm 1).",
                    SearchKind::ALL
                        .iter()
                        .map(|&k| labelled("kind", k.as_str(), self.searches_total[k as usize].get()))
                        .collect(),
                ),
                counter_fam(
                    "parj_search_words_total",
                    "Array words touched by probe searches, by kind.",
                    SearchKind::ALL
                        .iter()
                        .map(|&k| {
                            labelled("kind", k.as_str(), self.search_words_total[k as usize].get())
                        })
                        .collect(),
                ),
                counter_fam(
                    "parj_group_probes_total",
                    "Membership checks inside value groups.",
                    vec![plain(self.group_probes_total.get())],
                ),
                counter_fam(
                    "parj_probe_rows_total",
                    "Binding tuples that entered probe steps.",
                    vec![plain(self.probe_rows_total.get())],
                ),
                counter_fam(
                    "parj_exec_morsels_total",
                    "Driver morsels dispatched to executor participants.",
                    vec![plain(self.morsels_total.get())],
                ),
                hist_fam(
                    "parj_shard_imbalance_x1000",
                    "Participant load imbalance per plan execution over the morsel \
                     distribution, x1000 (1000 = balanced).",
                    &self.shard_imbalance,
                ),
                gauge_fam(
                    "parj_pool_workers",
                    "Worker threads owned by the persistent pool.",
                    vec![plain(self.pool_workers.get())],
                ),
                gauge_fam(
                    "parj_pool_queue_depth",
                    "Pool jobs currently queued and accepting helpers.",
                    vec![plain(self.pool_queue_depth.get())],
                ),
                counter_fam(
                    "parj_pool_jobs_total",
                    "Jobs submitted to the persistent pool.",
                    vec![plain(self.pool_jobs.get())],
                ),
                counter_fam(
                    "parj_pool_helper_joins_total",
                    "Times an idle pool worker joined a job as a helper.",
                    vec![plain(self.pool_helper_joins.get())],
                ),
                counter_fam(
                    "parj_pool_busy_micros_total",
                    "Microseconds pool workers spent running job bodies.",
                    vec![plain(self.pool_busy_micros.get())],
                ),
                counter_fam(
                    "parj_pool_park_micros_total",
                    "Microseconds pool workers spent parked waiting for work.",
                    vec![plain(self.pool_park_micros.get())],
                ),
                counter_fam(
                    "parj_pool_panics_contained_total",
                    "Participant panics contained by the pool worker loop.",
                    vec![plain(self.pool_panics_contained.get())],
                ),
                counter_fam(
                    "parj_lock_wait_micros",
                    "Microseconds threads spent blocked acquiring ordered locks, \
                     by hierarchy level.",
                    self.lock_wait_micros
                        .get_all()
                        .into_iter()
                        .map(|(level, v)| labelled("level", &level, v))
                        .collect(),
                ),
                counter_fam(
                    "parj_load_statements_total",
                    "Statements processed by bulk loads, by result.",
                    vec![
                        labelled("result", "loaded", self.load_statements[0].get()),
                        labelled("result", "skipped", self.load_statements[1].get()),
                    ],
                ),
                counter_fam(
                    "parj_load_micros_total",
                    "Wall time spent in bulk loads, microseconds.",
                    vec![plain(self.load_micros_total.get())],
                ),
                counter_fam(
                    "parj_load_bytes_total",
                    "Input bytes consumed by bulk loads.",
                    vec![plain(self.load_bytes_total.get())],
                ),
                gauge_fam(
                    "parj_delta_resident_triples",
                    "Uncompacted add/delete pairs resident in the mutation delta.",
                    vec![plain(self.delta_resident_triples.get())],
                ),
                gauge_fam(
                    "parj_delta_resident_bytes",
                    "Heap bytes held by the mutation delta overlay.",
                    vec![plain(self.delta_resident_bytes.get())],
                ),
                counter_fam(
                    "parj_delta_compactions_total",
                    "Per-predicate delta compactions performed.",
                    vec![plain(self.delta_compactions_total.get())],
                ),
                counter_fam(
                    "parj_delta_compaction_micros",
                    "Wall time spent compacting delta runs, microseconds.",
                    vec![plain(self.delta_compaction_micros.get())],
                ),
                counter_fam(
                    "parj_cache_invalidations_total",
                    "Per-predicate cache epoch bumps performed by mutation batches.",
                    vec![plain(self.cache_invalidations_total.get())],
                ),
                gauge_fam(
                    "parj_store_triples",
                    "Triples resident in the finalized store.",
                    vec![plain(self.store_triples.get())],
                ),
                gauge_fam(
                    "parj_store_partition_bytes",
                    "Bytes held by vertical partitions (both replica orders).",
                    vec![plain(self.store_partition_bytes.get())],
                ),
                gauge_fam(
                    "parj_store_replica_bytes",
                    "Bytes held by the partition of each predicate.",
                    self.replica_bytes
                        .get_all()
                        .into_iter()
                        .map(|(pred, v)| labelled("predicate", &pred, v))
                        .collect(),
                ),
                gauge_fam(
                    "parj_dict_bytes",
                    "Dictionary arena bytes, by section.",
                    vec![
                        labelled("section", "resources", self.dict_bytes[0].get()),
                        labelled("section", "predicates", self.dict_bytes[1].get()),
                    ],
                ),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_every_family_once() {
        let m = EngineMetrics::new();
        let snap = m.snapshot();
        let mut names: Vec<_> = snap.families.iter().map(|f| f.name.clone()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate family names");
        assert!(total >= 12, "expected >= 12 families, got {total}");
    }

    #[test]
    fn record_query_feeds_families() {
        let m = EngineMetrics::new();
        m.record_query(
            QueryOutcomeClass::Ok,
            &[(QueryPhase::Parse, 10), (QueryPhase::Execute, 200)],
            250,
            42,
            &SearchTotals {
                sequential: 5,
                binary: 3,
                index: 1,
                ..SearchTotals::default()
            },
        );
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_queries_total", &[("outcome", "ok")]), Some(1));
        assert_eq!(
            snap.value("parj_query_phase_micros_total", &[("phase", "execute")]),
            Some(200)
        );
        assert_eq!(snap.value("parj_result_rows_total", &[]), Some(42));
        assert_eq!(snap.value("parj_searches_total", &[("kind", "sequential")]), Some(5));
    }

    #[test]
    fn cache_events_feed_families() {
        let m = EngineMetrics::new();
        m.record_cache_lookup(CacheKind::Plan, false);
        m.record_cache_lookup(CacheKind::Plan, true);
        m.record_cache_lookup(CacheKind::Result, true);
        m.record_cache_evictions(CacheKind::Result, 3);
        m.set_cache_resident(CacheKind::Result, 4096);
        m.record_cache_time_saved(QueryPhase::Execute, 500);
        m.record_cache_time_saved(QueryPhase::Optimize, 40);
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_cache_hits_total", &[("cache", "plan")]), Some(1));
        assert_eq!(snap.value("parj_cache_hits_total", &[("cache", "result")]), Some(1));
        assert_eq!(snap.value("parj_cache_misses_total", &[("cache", "plan")]), Some(1));
        assert_eq!(snap.value("parj_cache_evictions_total", &[("cache", "result")]), Some(3));
        assert_eq!(
            snap.value("parj_cache_resident_bytes", &[("cache", "result")]),
            Some(4096)
        );
        assert_eq!(
            snap.value("parj_cache_time_saved_micros_total", &[("phase", "execute")]),
            Some(500)
        );
        assert_eq!(
            snap.value("parj_cache_time_saved_micros_total", &[("phase", "cache_lookup")]),
            Some(0)
        );
    }

    #[test]
    fn plan_exec_and_pool_feed_families() {
        let m = EngineMetrics::new();
        m.record_plan_exec(100, 1250, 7);
        m.record_plan_exec(50, 1000, 3);
        m.publish_pool(&PoolTotals {
            workers: 4,
            jobs: 9,
            helper_joins: 20,
            busy_micros: 1234,
            park_micros: 5678,
            queue_depth: 1,
            panics_contained: 2,
        });
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_probe_rows_total", &[]), Some(150));
        assert_eq!(snap.value("parj_exec_morsels_total", &[]), Some(10));
        assert_eq!(snap.value("parj_pool_workers", &[]), Some(4));
        assert_eq!(snap.value("parj_pool_jobs_total", &[]), Some(9));
        assert_eq!(snap.value("parj_pool_helper_joins_total", &[]), Some(20));
        assert_eq!(snap.value("parj_pool_busy_micros_total", &[]), Some(1234));
        assert_eq!(snap.value("parj_pool_park_micros_total", &[]), Some(5678));
        assert_eq!(snap.value("parj_pool_queue_depth", &[]), Some(1));
        assert_eq!(snap.value("parj_pool_panics_contained_total", &[]), Some(2));
        // Re-publishing replaces (the pool's totals are authoritative).
        m.publish_pool(&PoolTotals {
            workers: 4,
            jobs: 11,
            ..PoolTotals::default()
        });
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_pool_jobs_total", &[]), Some(11));
    }

    #[test]
    fn delta_and_invalidation_events_feed_families() {
        let m = EngineMetrics::new();
        m.set_delta_resident(120, 4096);
        m.record_compaction(2, 350);
        m.record_compaction(1, 150);
        m.record_cache_invalidations(3);
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_delta_resident_triples", &[]), Some(120));
        assert_eq!(snap.value("parj_delta_resident_bytes", &[]), Some(4096));
        assert_eq!(snap.value("parj_delta_compactions_total", &[]), Some(3));
        assert_eq!(snap.value("parj_delta_compaction_micros", &[]), Some(500));
        assert_eq!(snap.value("parj_cache_invalidations_total", &[]), Some(3));
        // Residency gauges replace; counters accumulate.
        m.set_delta_resident(0, 0);
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_delta_resident_triples", &[]), Some(0));
        assert_eq!(snap.value("parj_delta_compactions_total", &[]), Some(3));
        // Pinned exposition: every delta family renders by name.
        let prom = snap.to_prometheus();
        for fam in [
            "parj_delta_resident_triples",
            "parj_delta_resident_bytes",
            "parj_delta_compactions_total",
            "parj_delta_compaction_micros",
            "parj_cache_invalidations_total",
        ] {
            assert!(prom.contains(fam), "{fam} missing from exposition:\n{prom}");
        }
    }

    #[test]
    fn store_memory_replaces_predicate_labels() {
        let m = EngineMetrics::new();
        m.set_store_memory(10, 800, [("p1".to_string(), 500)], 300, 40);
        m.set_store_memory(12, 900, [("p2".to_string(), 600)], 310, 41);
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_store_replica_bytes", &[("predicate", "p1")]), None);
        assert_eq!(
            snap.value("parj_store_replica_bytes", &[("predicate", "p2")]),
            Some(600)
        );
        assert_eq!(snap.value("parj_store_triples", &[]), Some(12));
    }
}
