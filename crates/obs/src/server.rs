//! Serving-layer metric families (`parj_server_*`).
//!
//! [`ServerMetrics`] is the HTTP front door's registry: admission
//! decisions (in-flight gauge, sheds, quota rejects), response counts
//! by status, and request latency. It is owned by the server, not the
//! engine — an engine can outlive many servers and a server can front a
//! replicated engine — and its snapshot merges with the engine's via
//! [`MetricsSnapshot::merge`] for one `/metrics` exposition.
//!
//! The same recording rules as [`crate::EngineMetrics`] apply: fixed
//! label sets are arrays of atomics indexed by enum, so the per-request
//! cost is a handful of relaxed `fetch_add`s.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{
    FamilySnapshot, HistogramSnapshot, MetricKind, MetricsSnapshot, Sample, SampleValue,
};

/// The HTTP statuses the server emits, as a closed label set.
///
/// Closed so the per-status counters stay allocation-free arrays; a
/// status outside the set records under `other` instead of growing the
/// label space (a hostile client must not be able to inflate it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpStatusClass {
    /// 200 OK — query answered.
    Ok200,
    /// 400 Bad Request — malformed HTTP or SPARQL.
    BadRequest400,
    /// 404 Not Found — unknown path.
    NotFound404,
    /// 405 Method Not Allowed.
    MethodNotAllowed405,
    /// 408 Request Timeout — client too slow sending its request.
    RequestTimeout408,
    /// 411 Length Required — POST without Content-Length.
    LengthRequired411,
    /// 413 Payload Too Large — oversized body or row budget exceeded.
    PayloadTooLarge413,
    /// 429 Too Many Requests — shed by admission control or quota.
    TooManyRequests429,
    /// 431 Request Header Fields Too Large.
    HeadersTooLarge431,
    /// 500 Internal Server Error — contained panic or invariant breach.
    Internal500,
    /// 503 Service Unavailable — corrupt store, not ready, or draining.
    Unavailable503,
    /// 504 Gateway Timeout — query deadline exceeded.
    GatewayTimeout504,
    /// Anything else (should not happen; kept so counters never lose a
    /// response).
    Other,
}

impl HttpStatusClass {
    /// All classes, in exposition order.
    pub const ALL: [HttpStatusClass; 13] = [
        HttpStatusClass::Ok200,
        HttpStatusClass::BadRequest400,
        HttpStatusClass::NotFound404,
        HttpStatusClass::MethodNotAllowed405,
        HttpStatusClass::RequestTimeout408,
        HttpStatusClass::LengthRequired411,
        HttpStatusClass::PayloadTooLarge413,
        HttpStatusClass::TooManyRequests429,
        HttpStatusClass::HeadersTooLarge431,
        HttpStatusClass::Internal500,
        HttpStatusClass::Unavailable503,
        HttpStatusClass::GatewayTimeout504,
        HttpStatusClass::Other,
    ];

    /// Classifies a numeric status.
    pub fn from_status(status: u16) -> Self {
        match status {
            200 => HttpStatusClass::Ok200,
            400 => HttpStatusClass::BadRequest400,
            404 => HttpStatusClass::NotFound404,
            405 => HttpStatusClass::MethodNotAllowed405,
            408 => HttpStatusClass::RequestTimeout408,
            411 => HttpStatusClass::LengthRequired411,
            413 => HttpStatusClass::PayloadTooLarge413,
            429 => HttpStatusClass::TooManyRequests429,
            431 => HttpStatusClass::HeadersTooLarge431,
            500 => HttpStatusClass::Internal500,
            503 => HttpStatusClass::Unavailable503,
            504 => HttpStatusClass::GatewayTimeout504,
            _ => HttpStatusClass::Other,
        }
    }

    /// The label value rendered for this class.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpStatusClass::Ok200 => "200",
            HttpStatusClass::BadRequest400 => "400",
            HttpStatusClass::NotFound404 => "404",
            HttpStatusClass::MethodNotAllowed405 => "405",
            HttpStatusClass::RequestTimeout408 => "408",
            HttpStatusClass::LengthRequired411 => "411",
            HttpStatusClass::PayloadTooLarge413 => "413",
            HttpStatusClass::TooManyRequests429 => "429",
            HttpStatusClass::HeadersTooLarge431 => "431",
            HttpStatusClass::Internal500 => "500",
            HttpStatusClass::Unavailable503 => "503",
            HttpStatusClass::GatewayTimeout504 => "504",
            HttpStatusClass::Other => "other",
        }
    }
}

/// Request-latency histogram bounds, microseconds (same scale as the
/// engine's query-duration histogram so the two are comparable).
const REQUEST_BOUNDS: [u64; 7] = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000];

/// Every metric family the serving layer records.
#[derive(Debug)]
pub struct ServerMetrics {
    /// `parj_server_inflight` — queries holding an admission permit.
    inflight: Gauge,
    /// `parj_server_shed_total` — requests shed because every permit
    /// was taken.
    shed: Counter,
    /// `parj_server_quota_rejects_total` — requests rejected by a
    /// per-client token bucket.
    quota_rejects: Counter,
    /// `parj_server_responses_total{status}`.
    responses: [Counter; 13],
    /// `parj_server_request_micros` histogram (admission to last byte).
    request_micros: Histogram,
    /// `parj_server_connections_total`.
    connections: Counter,
    /// `parj_server_panics_total` — handler panics contained by
    /// `catch_unwind` (each also counts a 500 response).
    panics: Counter,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        ServerMetrics {
            inflight: Gauge::new(),
            shed: Counter::new(),
            quota_rejects: Counter::new(),
            responses: Default::default(),
            request_micros: Histogram::new(&REQUEST_BOUNDS),
            connections: Counter::new(),
            panics: Counter::new(),
        }
    }

    /// A query acquired an admission permit.
    pub fn permit_acquired(&self) {
        self.inflight.add(1);
    }

    /// A query released its admission permit (any outcome).
    pub fn permit_released(&self) {
        self.inflight.sub(1);
    }

    /// Queries currently holding a permit.
    pub fn inflight(&self) -> u64 {
        self.inflight.get()
    }

    /// A request was shed because all permits were in use.
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// A request was rejected by its client's token bucket.
    pub fn record_quota_reject(&self) {
        self.quota_rejects.inc();
    }

    /// A connection was accepted.
    pub fn record_connection(&self) {
        self.connections.inc();
    }

    /// A handler panic was contained.
    pub fn record_panic(&self) {
        self.panics.inc();
    }

    /// One response was written: its status and the request's wall time
    /// in microseconds.
    pub fn record_response(&self, status: u16, micros: u64) {
        self.responses[HttpStatusClass::from_status(status) as usize].inc();
        self.request_micros.observe(micros);
    }

    /// Captures every serving family (cheap relaxed loads; safe while
    /// requests are recording).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let plain = |v: u64| Sample {
            labels: Vec::new(),
            value: SampleValue::Integer(v),
        };
        MetricsSnapshot {
            families: vec![
                FamilySnapshot {
                    name: "parj_server_inflight".into(),
                    help: "Queries currently holding an admission permit.".into(),
                    kind: MetricKind::Gauge,
                    samples: vec![plain(self.inflight.get())],
                },
                FamilySnapshot {
                    name: "parj_server_shed_total".into(),
                    help: "Requests shed with 429 because every permit was taken.".into(),
                    kind: MetricKind::Counter,
                    samples: vec![plain(self.shed.get())],
                },
                FamilySnapshot {
                    name: "parj_server_quota_rejects_total".into(),
                    help: "Requests rejected with 429 by a per-client token bucket.".into(),
                    kind: MetricKind::Counter,
                    samples: vec![plain(self.quota_rejects.get())],
                },
                FamilySnapshot {
                    name: "parj_server_responses_total".into(),
                    help: "Responses written, by HTTP status.".into(),
                    kind: MetricKind::Counter,
                    samples: HttpStatusClass::ALL
                        .iter()
                        .map(|&c| Sample {
                            labels: vec![("status".into(), c.as_str().into())],
                            value: SampleValue::Integer(self.responses[c as usize].get()),
                        })
                        .collect(),
                },
                FamilySnapshot {
                    name: "parj_server_request_micros".into(),
                    help: "Request wall time from admission to last byte, microseconds.".into(),
                    kind: MetricKind::Histogram,
                    samples: vec![Sample {
                        labels: Vec::new(),
                        value: SampleValue::Histogram(HistogramSnapshot {
                            buckets: self.request_micros.cumulative_buckets(),
                            sum: self.request_micros.sum(),
                            count: self.request_micros.count(),
                        }),
                    }],
                },
                FamilySnapshot {
                    name: "parj_server_connections_total".into(),
                    help: "TCP connections accepted.".into(),
                    kind: MetricKind::Counter,
                    samples: vec![plain(self.connections.get())],
                },
                FamilySnapshot {
                    name: "parj_server_panics_total".into(),
                    help: "Handler panics contained by catch_unwind.".into(),
                    kind: MetricKind::Counter,
                    samples: vec![plain(self.panics.get())],
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_and_status_labels() {
        let m = ServerMetrics::new();
        m.record_connection();
        m.permit_acquired();
        m.record_response(200, 1500);
        m.record_shed();
        m.record_response(429, 30);
        m.permit_released();
        let snap = m.snapshot();
        assert_eq!(snap.value("parj_server_inflight", &[]), Some(0));
        assert_eq!(snap.value("parj_server_shed_total", &[]), Some(1));
        assert_eq!(
            snap.value("parj_server_responses_total", &[("status", "200")]),
            Some(1)
        );
        assert_eq!(
            snap.value("parj_server_responses_total", &[("status", "429")]),
            Some(1)
        );
        assert_eq!(snap.value("parj_server_connections_total", &[]), Some(1));
    }

    #[test]
    fn unknown_statuses_fold_into_other() {
        let m = ServerMetrics::new();
        m.record_response(418, 5);
        let snap = m.snapshot();
        assert_eq!(
            snap.value("parj_server_responses_total", &[("status", "other")]),
            Some(1)
        );
    }
}
