//! Point-in-time metric snapshots and their exposition formats.
//!
//! A [`MetricsSnapshot`] is plain data — taking one costs a relaxed
//! load per atomic and never blocks recorders. It renders to the
//! Prometheus text exposition format ([`MetricsSnapshot::to_prometheus`])
//! or to a JSON document ([`MetricsSnapshot::to_json`]); both are
//! deterministic given the same underlying values.

use std::fmt::Write;

/// Metric family type, mirroring the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Free-moving gauge.
    Gauge,
    /// Bucketed histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A captured histogram: cumulative `le` buckets plus sum and count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)`; `None` is the `+Inf` bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
    /// Sum of observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// One sample value inside a family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter or gauge reading.
    Integer(u64),
    /// Histogram reading.
    Histogram(HistogramSnapshot),
}

/// One sample of a family: a label set (possibly empty) and a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// `(label_name, label_value)` pairs, already in render order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// A captured metric family: name, help text, kind, and its samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilySnapshot {
    /// Family name (e.g. `parj_queries_total`).
    pub name: String,
    /// One-line help text for the `# HELP` comment.
    pub help: String,
    /// Family type.
    pub kind: MetricKind,
    /// Samples, in deterministic order.
    pub samples: Vec<Sample>,
}

/// A point-in-time capture of every family in a registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Families in registration order.
    pub families: Vec<FamilySnapshot>,
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        write!(out, "{k}=\"{}\"", prometheus_escape(v)).expect("write");
    }
    out.push('}');
}

/// Escapes a label value per the Prometheus text format.
fn prometheus_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write"),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` comments followed by one
    /// line per sample; histograms expand into `_bucket`/`_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            writeln!(out, "# HELP {} {}", fam.name, fam.help).expect("write");
            writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str()).expect("write");
            for sample in &fam.samples {
                match &sample.value {
                    SampleValue::Integer(v) => {
                        out.push_str(&fam.name);
                        render_labels(&mut out, &sample.labels, None);
                        writeln!(out, " {v}").expect("write");
                    }
                    SampleValue::Histogram(h) => {
                        for (bound, count) in &h.buckets {
                            let le = match bound {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            write!(out, "{}_bucket", fam.name).expect("write");
                            render_labels(&mut out, &sample.labels, Some(("le", &le)));
                            writeln!(out, " {count}").expect("write");
                        }
                        write!(out, "{}_sum", fam.name).expect("write");
                        render_labels(&mut out, &sample.labels, None);
                        writeln!(out, " {}", h.sum).expect("write");
                        write!(out, "{}_count", fam.name).expect("write");
                        render_labels(&mut out, &sample.labels, None);
                        writeln!(out, " {}", h.count).expect("write");
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON document:
    /// `{"families": [{"name": ..., "kind": ..., "samples": [...]}]}`.
    /// Hand-rolled so the crate stays dependency-free.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"families\":[");
        for (fi, fam) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"name\":\"{}\",\"help\":\"{}\",\"kind\":\"{}\",\"samples\":[",
                json_escape(&fam.name),
                json_escape(&fam.help),
                fam.kind.as_str()
            )
            .expect("write");
            for (si, sample) in fam.samples.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in sample.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v)).expect("write");
                }
                out.push_str("},");
                match &sample.value {
                    SampleValue::Integer(v) => {
                        write!(out, "\"value\":{v}").expect("write");
                    }
                    SampleValue::Histogram(h) => {
                        out.push_str("\"buckets\":[");
                        for (bi, (bound, count)) in h.buckets.iter().enumerate() {
                            if bi > 0 {
                                out.push(',');
                            }
                            match bound {
                                Some(b) => write!(out, "{{\"le\":{b},\"count\":{count}}}"),
                                None => write!(out, "{{\"le\":null,\"count\":{count}}}"),
                            }
                            .expect("write");
                        }
                        write!(out, "],\"sum\":{},\"count\":{}", h.sum, h.count).expect("write");
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Appends another snapshot's families after this one's, producing
    /// a single exposition document (e.g. engine + server families on
    /// one `/metrics` page). Families are assumed disjoint by name —
    /// registries use distinct prefixes — so no de-duplication happens.
    pub fn merge(mut self, other: MetricsSnapshot) -> MetricsSnapshot {
        self.families.extend(other.families);
        self
    }

    /// Looks up a family by name.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The integer value of `name`'s sample whose labels equal
    /// `labels` (order-sensitive); `None` for histograms / misses.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let fam = self.family(name)?;
        let sample = fam.samples.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })?;
        match &sample.value {
            SampleValue::Integer(v) => Some(*v),
            SampleValue::Histogram(_) => None,
        }
    }
}
