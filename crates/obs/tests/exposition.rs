//! Golden tests for the exposition formats: the Prometheus text output
//! must stay parseable by standard scrapers, so its shape is pinned
//! here line-by-line for a registry with known contents.

use parj_obs::{EngineMetrics, QueryOutcomeClass, QueryPhase, SearchTotals};

fn populated() -> EngineMetrics {
    let m = EngineMetrics::new();
    m.record_query(
        QueryOutcomeClass::Ok,
        &[
            (QueryPhase::Parse, 10),
            (QueryPhase::Translate, 5),
            (QueryPhase::Optimize, 7),
            (QueryPhase::Execute, 200),
            (QueryPhase::Decode, 3),
        ],
        225,
        42,
        &SearchTotals {
            sequential: 30,
            binary: 10,
            index: 2,
            sequential_steps: 90,
            binary_steps: 70,
            index_words: 6,
            group_probes: 4,
        },
    );
    m.record_query(
        QueryOutcomeClass::Timeout,
        &[(QueryPhase::Parse, 8), (QueryPhase::Execute, 5_000)],
        5_008,
        0,
        &SearchTotals::default(),
    );
    m.record_plan_exec(1_000, 1_250, 5);
    m.record_load(500, 3, 2_000, 65_536);
    m.set_store_memory(
        500,
        40_960,
        [
            ("http://e/teaches".to_string(), 24_576),
            ("http://e/worksFor".to_string(), 16_384),
        ],
        30_000,
        2_000,
    );
    m
}

#[test]
fn prometheus_exposition_is_pinned() {
    let text = populated().snapshot().to_prometheus();

    // Every family announces itself with HELP and TYPE comments.
    for fam in [
        ("parj_queries_total", "counter"),
        ("parj_queries_inflight", "gauge"),
        ("parj_query_phase_micros_total", "counter"),
        ("parj_query_duration_micros", "histogram"),
        ("parj_query_rows", "histogram"),
        ("parj_result_rows_total", "counter"),
        ("parj_searches_total", "counter"),
        ("parj_search_words_total", "counter"),
        ("parj_group_probes_total", "counter"),
        ("parj_probe_rows_total", "counter"),
        ("parj_shard_imbalance_x1000", "histogram"),
        ("parj_exec_morsels_total", "counter"),
        ("parj_pool_workers", "gauge"),
        ("parj_pool_queue_depth", "gauge"),
        ("parj_pool_jobs_total", "counter"),
        ("parj_pool_helper_joins_total", "counter"),
        ("parj_pool_busy_micros_total", "counter"),
        ("parj_pool_park_micros_total", "counter"),
        ("parj_pool_panics_contained_total", "counter"),
        ("parj_load_statements_total", "counter"),
        ("parj_load_micros_total", "counter"),
        ("parj_load_bytes_total", "counter"),
        ("parj_store_triples", "gauge"),
        ("parj_store_partition_bytes", "gauge"),
        ("parj_store_replica_bytes", "gauge"),
        ("parj_dict_bytes", "gauge"),
    ] {
        assert!(
            text.contains(&format!("# TYPE {} {}", fam.0, fam.1)),
            "missing TYPE line for {}: \n{text}",
            fam.0
        );
    }

    // Exact sample lines for the populated values.
    for line in [
        "parj_queries_total{outcome=\"ok\"} 1",
        "parj_queries_total{outcome=\"timeout\"} 1",
        "parj_queries_total{outcome=\"panicked\"} 0",
        "parj_queries_inflight 0",
        "parj_query_phase_micros_total{phase=\"parse\"} 18",
        "parj_query_phase_micros_total{phase=\"execute\"} 5200",
        "parj_query_duration_micros_bucket{le=\"1000\"} 1",
        "parj_query_duration_micros_bucket{le=\"10000\"} 2",
        "parj_query_duration_micros_bucket{le=\"+Inf\"} 2",
        "parj_query_duration_micros_sum 5233",
        "parj_query_duration_micros_count 2",
        "parj_query_rows_bucket{le=\"100\"} 2",
        "parj_result_rows_total 42",
        "parj_searches_total{kind=\"sequential\"} 30",
        "parj_searches_total{kind=\"binary\"} 10",
        "parj_searches_total{kind=\"index\"} 2",
        "parj_search_words_total{kind=\"sequential\"} 90",
        "parj_group_probes_total 4",
        "parj_probe_rows_total 1000",
        "parj_shard_imbalance_x1000_bucket{le=\"1250\"} 1",
        "parj_exec_morsels_total 5",
        "parj_load_statements_total{result=\"loaded\"} 500",
        "parj_load_statements_total{result=\"skipped\"} 3",
        "parj_load_micros_total 2000",
        "parj_load_bytes_total 65536",
        "parj_store_triples 500",
        "parj_store_partition_bytes 40960",
        "parj_store_replica_bytes{predicate=\"http://e/teaches\"} 24576",
        "parj_store_replica_bytes{predicate=\"http://e/worksFor\"} 16384",
        "parj_dict_bytes{section=\"resources\"} 30000",
        "parj_dict_bytes{section=\"predicates\"} 2000",
    ] {
        assert!(text.lines().any(|l| l == line), "missing line {line:?} in:\n{text}");
    }
}

#[test]
fn json_exposition_round_trips_key_values() {
    let json = populated().snapshot().to_json();
    assert!(json.starts_with("{\"families\":["));
    assert!(json.ends_with("]}"));
    for frag in [
        "\"name\":\"parj_queries_total\"",
        "\"labels\":{\"outcome\":\"ok\"},\"value\":1",
        "\"kind\":\"histogram\"",
        "{\"le\":null,\"count\":2}",
        "\"labels\":{\"predicate\":\"http://e/teaches\"},\"value\":24576",
    ] {
        assert!(json.contains(frag), "missing {frag:?} in:\n{json}");
    }
    // Braces balance (cheap well-formedness check without a parser).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes);
}

#[test]
fn label_values_are_escaped() {
    let m = EngineMetrics::new();
    m.set_store_memory(1, 1, [("a\"b\\c\nd".to_string(), 7)], 0, 0);
    let text = m.snapshot().to_prometheus();
    assert!(
        text.contains("parj_store_replica_bytes{predicate=\"a\\\"b\\\\c\\nd\"} 7"),
        "unescaped label in:\n{text}"
    );
    let json = m.snapshot().to_json();
    assert!(json.contains("a\\\"b\\\\c\\nd"));
}

#[test]
fn at_least_twelve_families() {
    assert!(EngineMetrics::new().snapshot().families.len() >= 12);
}
