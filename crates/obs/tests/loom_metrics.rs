//! Loom model of the lock-light metric primitives.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. Checks the contracts
//! the `// ordering: Relaxed` comments in `metrics.rs` lean on:
//!
//! * counters and histogram words are individually exact — no schedule
//!   loses an increment;
//! * a concurrent snapshot reader observes each counter monotonically
//!   and never reads a value above what has been recorded;
//! * `Gauge::sub` saturates at zero under races instead of wrapping.
#![cfg(loom)]

use parj_obs::{Counter, Gauge, Histogram};
use parj_sync::thread;
use parj_sync::Arc;

#[test]
fn loom_concurrent_counter_is_exact() {
    loom::model(|| {
        let c = Arc::new(Counter::new());
        thread::scope(|s| {
            for _ in 0..2 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..3 {
                        c.inc();
                    }
                });
            }
            // A concurrent reader sees a monotone, never-ahead view.
            let c2 = Arc::clone(&c);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..4 {
                    let now = c2.get();
                    assert!(now >= last, "counter went backwards: {last} -> {now}");
                    assert!(now <= 6, "counter ahead of recorded events: {now}");
                    last = now;
                }
            });
        });
        assert_eq!(c.get(), 6);
    });
}

#[test]
fn loom_gauge_sub_saturates_under_races() {
    loom::model(|| {
        let g = Arc::new(Gauge::new());
        g.add(1);
        thread::scope(|s| {
            // Two decrements race with one increment: whatever the
            // schedule, the gauge must stay in [0, 2] — wrapping to
            // ~2^64 would trip the upper bound instantly.
            for _ in 0..2 {
                let g = Arc::clone(&g);
                s.spawn(move || g.sub(1));
            }
            let g2 = Arc::clone(&g);
            s.spawn(move || g2.add(1));
            let g3 = Arc::clone(&g);
            s.spawn(move || {
                let v = g3.get();
                assert!(v <= 2, "gauge wrapped: {v}");
            });
        });
        assert!(g.get() <= 2);
    });
}

#[test]
fn loom_histogram_words_stay_exact() {
    loom::model(|| {
        let h = Arc::new(Histogram::new(&[10]));
        thread::scope(|s| {
            for v in [1u64, 50] {
                let h = Arc::clone(&h);
                s.spawn(move || h.observe(v));
            }
            // Snapshot concurrently: cumulative counts never exceed
            // the number of observations started.
            let h2 = Arc::clone(&h);
            s.spawn(move || {
                let buckets = h2.cumulative_buckets();
                let total = buckets.last().map(|&(_, n)| n).unwrap_or(0);
                assert!(total <= 2, "phantom observation: {total}");
            });
        });
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 51);
        assert_eq!(h.cumulative_buckets(), vec![(Some(10), 1), (None, 2)]);
    });
}
