//! Equi-depth histograms over a replica's key column.
//!
//! Built from the `(key, group_size)` stream a CSR replica exposes: each
//! bucket covers a contiguous key range holding roughly `total/buckets`
//! triples. `estimate_freq(id)` answers "how many triples have this
//! key?" — the per-constant selectivity the optimizer needs — as the
//! bucket's average frequency. §4.3 notes such histograms "may not be
//! accurate especially in the case of RDF data", which is why pair
//! cardinalities correct join estimates separately.

use parj_dict::Id;

/// One bucket: keys in `[lo, hi]`, `triples` total values, `distinct`
/// distinct keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    lo: Id,
    hi: Id,
    triples: u64,
    distinct: u64,
}

/// An equi-depth histogram over one key column of one replica.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EquiDepthHistogram {
    buckets: Vec<Bucket>,
    total_triples: u64,
    total_distinct: u64,
}

impl EquiDepthHistogram {
    /// Builds from `(key, group_size)` pairs in ascending key order,
    /// targeting `num_buckets` buckets (the store default is 64).
    pub fn build<I>(groups: I, num_buckets: usize) -> Self
    where
        I: IntoIterator<Item = (Id, u64)> + Clone,
    {
        let total: u64 = groups.clone().into_iter().map(|(_, c)| c).sum();
        let depth = (total / num_buckets.max(1) as u64).max(1);
        let mut buckets = Vec::with_capacity(num_buckets + 1);
        let mut cur: Option<Bucket> = None;
        let mut total_distinct = 0u64;
        for (key, count) in groups {
            total_distinct += 1;
            // End-biased handling of heavy hitters: a key that alone
            // meets the depth gets its own bucket, so its frequency does
            // not bleed into the estimates of its neighbours.
            if count >= depth {
                if let Some(b) = cur.take() {
                    buckets.push(b);
                }
                buckets.push(Bucket {
                    lo: key,
                    hi: key,
                    triples: count,
                    distinct: 1,
                });
                continue;
            }
            match cur.as_mut() {
                None => {
                    cur = Some(Bucket {
                        lo: key,
                        hi: key,
                        triples: count,
                        distinct: 1,
                    });
                }
                Some(b) => {
                    b.hi = key;
                    b.triples += count;
                    b.distinct += 1;
                }
            }
            if cur.as_ref().is_some_and(|b| b.triples >= depth) {
                buckets.push(cur.take().expect("bucket exists"));
            }
        }
        if let Some(b) = cur {
            buckets.push(b);
        }
        EquiDepthHistogram {
            buckets,
            total_triples: total,
            total_distinct,
        }
    }

    /// Estimated number of triples whose key equals `id` (the average
    /// frequency of the containing bucket; 0 if `id` lies outside every
    /// bucket's range).
    pub fn estimate_freq(&self, id: Id) -> f64 {
        let idx = self.buckets.partition_point(|b| b.hi < id);
        match self.buckets.get(idx) {
            Some(b) if b.lo <= id => b.triples as f64 / b.distinct as f64,
            _ => 0.0,
        }
    }

    /// True if `id` could be a key (inside some bucket's range). A
    /// `false` is definite absence.
    pub fn may_contain(&self, id: Id) -> bool {
        let idx = self.buckets.partition_point(|b| b.hi < id);
        matches!(self.buckets.get(idx), Some(b) if b.lo <= id)
    }

    /// Total triples summarized.
    pub fn total_triples(&self) -> u64 {
        self.total_triples
    }

    /// Total distinct keys summarized.
    pub fn total_distinct(&self) -> u64 {
        self.total_distinct
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Average triples per distinct key (global fan-out).
    pub fn avg_fanout(&self) -> f64 {
        if self.total_distinct == 0 {
            0.0
        } else {
            self.total_triples as f64 / self.total_distinct as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let h = EquiDepthHistogram::build(Vec::<(Id, u64)>::new(), 8);
        assert_eq!(h.estimate_freq(5), 0.0);
        assert_eq!(h.total_triples(), 0);
        assert_eq!(h.avg_fanout(), 0.0);
        assert!(!h.may_contain(0));
    }

    #[test]
    fn uniform_distribution() {
        let groups: Vec<(Id, u64)> = (0..1000).map(|k| (k, 3)).collect();
        let h = EquiDepthHistogram::build(groups, 10);
        assert_eq!(h.total_triples(), 3000);
        assert_eq!(h.total_distinct(), 1000);
        assert!(h.num_buckets() >= 9 && h.num_buckets() <= 11, "{}", h.num_buckets());
        // Every key estimates its true frequency exactly under uniformity.
        for k in [0, 99, 500, 999] {
            assert!((h.estimate_freq(k) - 3.0).abs() < 1e-9);
        }
        assert_eq!(h.estimate_freq(1000), 0.0);
    }

    #[test]
    fn skew_isolated_by_depth() {
        // One hot key (10_000 triples) among 100 cold keys (1 each):
        // equi-depth puts the hot key (nearly) alone in its buckets, so
        // cold keys are not over-estimated by orders of magnitude.
        let mut groups: Vec<(Id, u64)> = (0..50).map(|k| (k, 1)).collect();
        groups.push((50, 10_000));
        groups.extend((51..101).map(|k| (k, 1)));
        let h = EquiDepthHistogram::build(groups, 16);
        let cold = h.estimate_freq(10);
        let hot = h.estimate_freq(50);
        assert!(hot > 100.0 * cold, "hot {hot} cold {cold}");
        assert!(cold < 50.0, "cold keys overestimated: {cold}");
    }

    #[test]
    fn range_gaps_estimate_inside_bucket() {
        // Keys 0,10,20,...: ids between keys fall inside bucket ranges
        // and get the bucket average (histograms cannot prove absence
        // within a covered range).
        let groups: Vec<(Id, u64)> = (0..100).map(|k| (k * 10, 5)).collect();
        let h = EquiDepthHistogram::build(groups, 8);
        assert!(h.estimate_freq(15) > 0.0);
        // Outside the global range is definite absence.
        assert_eq!(h.estimate_freq(99999), 0.0);
        assert!(!h.may_contain(99999));
    }

    #[test]
    fn single_key() {
        let h = EquiDepthHistogram::build(vec![(42u32, 7u64)], 8);
        assert_eq!(h.estimate_freq(42), 7.0);
        assert_eq!(h.estimate_freq(41), 0.0);
        assert_eq!(h.num_buckets(), 1);
    }
}
