//! # parj-optimizer — join ordering and cost estimation for PARJ
//!
//! Implements §4.3 of the paper: a **bottom-up dynamic-programming
//! optimizer over left-deep join orders** that
//!
//! * ignores parallelism ("we assume that the benefit of each possible
//!   join order from parallelism will be a fixed proportion of its
//!   centralized cost ... we disregard parallelism during optimization"),
//! * assumes one probe method per join during costing ("we assume that a
//!   specific choice will be followed for all tuples of a join, either
//!   binary search or scanning"; run-time adaptivity then only improves
//!   on the estimate),
//! * estimates intermediate sizes with **equi-depth histograms** over
//!   each partition's subject and object columns, corrected by
//!   **precomputed predicate-pair cardinalities** ("we precompute some
//!   cardinalities between pairs of properties during data loading and
//!   use these as a corrective step"), and
//! * per join "choose\[s\] to use the replica that leads to more selective
//!   results".
//!
//! Statistics are built once after load ([`Stats::build`]) and shared by
//! all queries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod optimize;
mod stats;

pub use histogram::EquiDepthHistogram;
pub use optimize::{optimize, OptimizeError, Pattern};
pub use stats::{PairCard, PredStats, Stats};
