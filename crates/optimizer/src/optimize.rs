//! Bottom-up dynamic programming over left-deep join orders (§4.3).

use parj_dict::Id;
use parj_join::{Atom, PhysicalPlan, PlanStep, VarId};
use parj_store::SortOrder;

use crate::stats::Stats;

/// A dictionary-encoded triple pattern with a concrete predicate.
/// Variable predicates are expanded into unions by the engine before
/// optimization (§3: "a union over all properties will be needed, but
/// this is rarely encountered in real world queries").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// Subject atom.
    pub s: Atom,
    /// Predicate id.
    pub p: Id,
    /// Object atom.
    pub o: Atom,
}

/// Optimization failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimizeError {
    /// No patterns.
    Empty,
    /// The BGP contains a pattern that can never be keyed: it has no
    /// constant and shares no variable with the rest of the query, so a
    /// left-deep pipeline would need a cartesian product, which PARJ
    /// does not evaluate.
    Disconnected,
    /// Produced plan failed validation (indicates an internal bug; the
    /// message is preserved).
    Internal(String),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Empty => write!(f, "empty basic graph pattern"),
            OptimizeError::Disconnected => write!(
                f,
                "disconnected basic graph pattern requires a cartesian product, \
                 which the left-deep pipeline does not support"
            ),
            OptimizeError::Internal(m) => write!(f, "optimizer internal error: {m}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Which column of a pattern serves as the probe/scan key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeySide {
    Subject,
    Object,
}

/// Where a bound variable's values come from (for pair-statistics
/// lookups) plus the domain size.
#[derive(Debug, Clone, Copy)]
struct VarSource {
    pred: Id,
    side: KeySide,
    distinct: f64,
}

/// Estimation context shared by DP and greedy.
struct Est<'a> {
    stats: &'a Stats,
    patterns: &'a [Pattern],
}

/// Outcome of costing one candidate step.
#[derive(Debug, Clone, Copy)]
struct StepEst {
    key: KeySide,
    out_rows: f64,
    cost: f64,
}

impl Est<'_> {
    fn pred_triples(&self, p: Id) -> f64 {
        self.stats.pred(p).map_or(0.0, |s| s.triples as f64)
    }

    /// Cardinality of a pattern evaluated alone (driver estimate).
    fn pattern_card(&self, pat: &Pattern) -> f64 {
        let Some(ps) = self.stats.pred(pat.p) else {
            return 0.0;
        };
        match (pat.s, pat.o) {
            (Atom::Var(a), Atom::Var(b)) if a == b => {
                // Self-loop: bounded by subjects that are also objects.
                self.stats
                    .pair(pat.p, pat.p)
                    .map_or(1.0, |c| c.so as f64)
                    .min(ps.triples as f64)
            }
            (Atom::Var(_), Atom::Var(_)) => ps.triples as f64,
            (Atom::Const(c), Atom::Var(_)) => ps.subject_hist.estimate_freq(c),
            (Atom::Var(_), Atom::Const(c)) => ps.object_hist.estimate_freq(c),
            (Atom::Const(cs), Atom::Const(co)) => {
                if ps.subject_hist.may_contain(cs) && ps.object_hist.may_contain(co) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Overlap between a bound variable's source column and the key
    /// column of `pred` — the pair-cardinality corrective step, with a
    /// containment fallback.
    fn overlap(&self, src: &VarSource, pred: Id, key: KeySide) -> f64 {
        let key_distinct = self.key_distinct(pred, key);
        match self.stats.pair(src.pred, pred) {
            Some(pc) => {
                let ov = match (src.side, key) {
                    (KeySide::Subject, KeySide::Subject) => pc.ss,
                    (KeySide::Subject, KeySide::Object) => pc.so,
                    (KeySide::Object, KeySide::Subject) => pc.os,
                    (KeySide::Object, KeySide::Object) => pc.oo,
                } as f64;
                ov.min(src.distinct).min(key_distinct)
            }
            None => src.distinct.min(key_distinct),
        }
    }

    fn key_distinct(&self, pred: Id, key: KeySide) -> f64 {
        self.stats.pred(pred).map_or(0.0, |s| match key {
            KeySide::Subject => s.distinct_subjects as f64,
            KeySide::Object => s.distinct_objects as f64,
        })
    }

    fn key_freq(&self, pred: Id, key: KeySide, c: Id) -> f64 {
        self.stats.pred(pred).map_or(0.0, |s| match key {
            KeySide::Subject => s.subject_hist.estimate_freq(c),
            KeySide::Object => s.object_hist.estimate_freq(c),
        })
    }

    /// Estimates output rows per input tuple when probing pattern `j`
    /// keyed on `key`, given the bound-variable sources.
    fn probe_est(
        &self,
        pat: &Pattern,
        key: KeySide,
        sources: &[Option<VarSource>],
    ) -> Option<f64> {
        let triples = self.pred_triples(pat.p);
        if triples == 0.0 {
            return Some(0.0);
        }
        let nk = self.key_distinct(pat.p, key).max(1.0);
        let (key_atom, val_atom) = match key {
            KeySide::Subject => (pat.s, pat.o),
            KeySide::Object => (pat.o, pat.s),
        };
        let val_side = match key {
            KeySide::Subject => KeySide::Object,
            KeySide::Object => KeySide::Subject,
        };
        let nv = self.key_distinct(pat.p, val_side).max(1.0);

        // Probability a probe hits a key, and the group size when it does.
        let (match_prob, group_size) = match key_atom {
            Atom::Const(c) => {
                let f = self.key_freq(pat.p, key, c);
                if f <= 0.0 {
                    return Some(0.0);
                }
                (1.0, f)
            }
            Atom::Var(v) => {
                let src = sources[v as usize]?; // must be bound
                let ov = self.overlap(&src, pat.p, key);
                ((ov / src.distinct.max(1.0)).min(1.0), triples / nk)
            }
        };
        // Expected matching values within the group.
        let value_part = match val_atom {
            Atom::Var(v) if Some(v) == key_atom_var(key_atom) => {
                // `?x p ?x`: one membership test per group.
                (group_size / nv).min(1.0)
            }
            Atom::Var(v) => match sources[v as usize] {
                None => group_size, // fresh: take the whole group
                Some(src) => {
                    let ov = self.overlap(&src, pat.p, val_side);
                    (group_size * ov / (src.distinct.max(1.0) * nv)).min(1.0)
                }
            },
            Atom::Const(c) => {
                let fv = self.key_freq(pat.p, val_side, c);
                (fv / nk).min(1.0)
            }
        };
        Some(match_prob * value_part)
    }

    /// Costs the best key choice for probing pattern `j` given bound
    /// variables; `None` if the pattern is not probeable yet.
    fn best_probe(
        &self,
        pat: &Pattern,
        sources: &[Option<VarSource>],
        in_rows: f64,
    ) -> Option<StepEst> {
        let mut best: Option<StepEst> = None;
        for key in [KeySide::Subject, KeySide::Object] {
            let key_atom = match key {
                KeySide::Subject => pat.s,
                KeySide::Object => pat.o,
            };
            let usable = match key_atom {
                Atom::Const(_) => true,
                Atom::Var(v) => sources[v as usize].is_some(),
            };
            if !usable {
                continue;
            }
            let Some(per_input) = self.probe_est(pat, key, sources) else {
                continue;
            };
            let out_rows = in_rows * per_input;
            let nk = self.key_distinct(pat.p, key).max(2.0);
            // C_out-style cost: intermediate size dominates; probing adds
            // a logarithmic per-tuple term (binary-search model, §4.3 —
            // adaptivity only improves on this).
            let cost = out_rows + 0.1 * in_rows * nk.log2();
            if best.is_none_or(|b| cost < b.cost) {
                best = Some(StepEst {
                    key,
                    out_rows,
                    cost,
                });
            }
        }
        best
    }
}

fn key_atom_var(a: Atom) -> Option<VarId> {
    match a {
        Atom::Var(v) => Some(v),
        Atom::Const(_) => None,
    }
}

/// Updates variable sources after evaluating `pat` keyed on `key`.
fn bind_sources(est: &Est<'_>, pat: &Pattern, sources: &mut [Option<VarSource>]) {
    for (atom, side) in [(pat.s, KeySide::Subject), (pat.o, KeySide::Object)] {
        if let Atom::Var(v) = atom {
            let distinct = est.key_distinct(pat.p, side).max(1.0);
            let slot = &mut sources[v as usize];
            // Keep the most selective known source for the variable.
            if slot.is_none_or(|s| distinct < s.distinct) {
                *slot = Some(VarSource {
                    pred: pat.p,
                    side,
                    distinct,
                });
            }
        }
    }
}

/// Builds the [`PlanStep`] for a pattern given its chosen key side.
fn make_step(pat: &Pattern, key: KeySide) -> PlanStep {
    match key {
        KeySide::Subject => PlanStep {
            predicate: pat.p,
            order: SortOrder::SO,
            key: pat.s,
            value: pat.o,
        },
        KeySide::Object => PlanStep {
            predicate: pat.p,
            order: SortOrder::OS,
            key: pat.o,
            value: pat.s,
        },
    }
}

/// Driver key-side choice: constants win (Example 3.2), otherwise key on
/// the subject.
fn driver_key(pat: &Pattern) -> KeySide {
    match (pat.s, pat.o) {
        (Atom::Const(_), _) => KeySide::Subject,
        (_, Atom::Const(_)) => KeySide::Object,
        _ => KeySide::Subject,
    }
}

#[derive(Debug, Clone, Copy)]
struct DpEntry {
    cost: f64,
    rows: f64,
    /// Pattern added last and its key side.
    last: usize,
    last_key: KeySide,
    prev_mask: u32,
}

/// Exhaustive DP is exact up to this many patterns; beyond it a greedy
/// pass runs (WatDiv's largest evaluated query has 10).
const DP_LIMIT: usize = 12;

/// Chooses a left-deep join order and replica per step, returning a
/// validated [`PhysicalPlan`].
pub fn optimize(
    stats: &Stats,
    patterns: &[Pattern],
    num_vars: usize,
    projection: Vec<VarId>,
) -> Result<PhysicalPlan, OptimizeError> {
    let (order, keys) = choose_order(stats, patterns, num_vars)?;
    let steps: Vec<PlanStep> = order
        .iter()
        .zip(&keys)
        .map(|(&i, &k)| make_step(&patterns[i], k))
        .collect();
    PhysicalPlan::new(steps, num_vars, projection)
        .map_err(|e| OptimizeError::Internal(e.to_string()))
}

/// The ordering core, exposed for tests: returns pattern indexes in
/// execution order and the key side per step.
fn choose_order(
    stats: &Stats,
    patterns: &[Pattern],
    num_vars: usize,
) -> Result<(Vec<usize>, Vec<KeySide>), OptimizeError> {
    if patterns.is_empty() {
        return Err(OptimizeError::Empty);
    }
    let est = Est { stats, patterns };
    if patterns.len() > DP_LIMIT {
        return greedy(&est, num_vars);
    }

    let n = patterns.len();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut table: Vec<Option<DpEntry>> = vec![None; 1usize << n];

    // Seed single-pattern states (drivers).
    for (i, pat) in patterns.iter().enumerate() {
        let rows = est.pattern_card(pat);
        let entry = DpEntry {
            cost: rows,
            rows,
            last: i,
            last_key: driver_key(pat),
            prev_mask: 0,
        };
        table[1usize << i] = Some(entry);
    }

    // Expand masks in increasing popcount order (index order suffices:
    // any subset < superset numerically when adding a bit? No — iterate
    // all masks ascending; every proper subset of m is < m, so its entry
    // is final by the time m is processed).
    for mask in 1u32..=full {
        let Some(entry) = table[mask as usize] else {
            continue;
        };
        // Reconstruct variable sources along this state's best path.
        let sources = sources_for(&est, &table, mask, num_vars);
        for (j, pat) in patterns.iter().enumerate() {
            if mask & (1 << j) != 0 {
                continue;
            }
            let Some(step) = est.best_probe(pat, &sources, entry.rows) else {
                continue;
            };
            let nm = mask | (1 << j);
            let cand = DpEntry {
                cost: entry.cost + step.cost,
                rows: step.out_rows,
                last: j,
                last_key: step.key,
                prev_mask: mask,
            };
            if table[nm as usize].is_none_or(|e| cand.cost < e.cost) {
                table[nm as usize] = Some(cand);
            }
        }
    }

    let Some(_) = table[full as usize] else {
        return Err(OptimizeError::Disconnected);
    };
    // Walk back the best path.
    let mut order = Vec::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let e = table[mask as usize].expect("path exists");
        order.push(e.last);
        keys.push(e.last_key);
        mask = e.prev_mask;
    }
    order.reverse();
    keys.reverse();
    Ok((order, keys))
}

/// Recomputes the variable sources for the best path leading to `mask`.
fn sources_for(
    est: &Est<'_>,
    table: &[Option<DpEntry>],
    mask: u32,
    num_vars: usize,
) -> Vec<Option<VarSource>> {
    let mut path = Vec::new();
    let mut m = mask;
    while m != 0 {
        let e = table[m as usize].expect("subset entries are final");
        path.push(e.last);
        m = e.prev_mask;
    }
    let mut sources = vec![None; num_vars];
    for &i in path.iter().rev() {
        bind_sources(est, &est.patterns[i], &mut sources);
    }
    sources
}

/// Greedy fallback for very large BGPs: cheapest driver, then repeatedly
/// the cheapest probeable pattern.
fn greedy(
    est: &Est<'_>,
    num_vars: usize,
) -> Result<(Vec<usize>, Vec<KeySide>), OptimizeError> {
    let n = est.patterns.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    // Driver: smallest estimated cardinality.
    let (di, _) = remaining
        .iter()
        .map(|&i| (i, est.pattern_card(&est.patterns[i])))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    remaining.retain(|&i| i != di);
    let mut order = vec![di];
    let mut keys = vec![driver_key(&est.patterns[di])];
    let mut sources = vec![None; num_vars];
    bind_sources(est, &est.patterns[di], &mut sources);
    let mut rows = est.pattern_card(&est.patterns[di]);

    while !remaining.is_empty() {
        let mut best: Option<(usize, StepEst)> = None;
        for &j in &remaining {
            if let Some(s) = est.best_probe(&est.patterns[j], &sources, rows) {
                if best.as_ref().is_none_or(|(_, b)| s.cost < b.cost) {
                    best = Some((j, s));
                }
            }
        }
        let Some((j, s)) = best else {
            return Err(OptimizeError::Disconnected);
        };
        remaining.retain(|&i| i != j);
        order.push(j);
        keys.push(s.key);
        bind_sources(est, &est.patterns[j], &mut sources);
        rows = s.out_rows;
    }
    Ok((order, keys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parj_dict::Term;
    use parj_store::StoreBuilder;
    use parj_store::TripleStore;

    /// worksFor is selective per-object; teaches is broad. The optimizer
    /// should drive Example 3.2's query from the constant-object
    /// worksFor pattern.
    fn store() -> TripleStore {
        let mut b = StoreBuilder::new();
        for i in 0..100u32 {
            b.add_term_triple(
                &Term::iri(format!("prof{i}")),
                &Term::iri("teaches"),
                &Term::iri(format!("course{}", i % 40)),
            );
            b.add_term_triple(
                &Term::iri(format!("prof{i}")),
                &Term::iri("worksFor"),
                &Term::iri(format!("uni{}", i % 10)),
            );
        }
        b.build()
    }

    fn ids(s: &TripleStore) -> (Id, Id, Id) {
        (
            s.dict().predicate_id(&Term::iri("teaches")).unwrap(),
            s.dict().predicate_id(&Term::iri("worksFor")).unwrap(),
            s.dict().resource_id(&Term::iri("uni3")).unwrap(),
        )
    }

    #[test]
    fn example32_filter_drives_the_plan() {
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, uni3) = ids(&s);
        // ?x teaches ?z . ?x worksFor uni3
        let patterns = [
            Pattern {
                s: Atom::Var(0),
                p: teaches,
                o: Atom::Var(1),
            },
            Pattern {
                s: Atom::Var(0),
                p: works,
                o: Atom::Const(uni3),
            },
        ];
        let plan = optimize(&stats, &patterns, 2, vec![0, 1]).unwrap();
        // Driver must be the selective worksFor pattern on its O-S
        // replica, keyed by the constant.
        assert_eq!(plan.steps[0].predicate, works);
        assert_eq!(plan.steps[0].order, SortOrder::OS);
        assert_eq!(plan.steps[0].key, Atom::Const(uni3));
        assert_eq!(plan.steps[1].predicate, teaches);
    }

    #[test]
    fn unconstrained_pair_keeps_both() {
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, _) = ids(&s);
        let patterns = [
            Pattern {
                s: Atom::Var(0),
                p: teaches,
                o: Atom::Var(1),
            },
            Pattern {
                s: Atom::Var(0),
                p: works,
                o: Atom::Var(2),
            },
        ];
        let plan = optimize(&stats, &patterns, 3, vec![0, 1, 2]).unwrap();
        assert_eq!(plan.steps.len(), 2);
        // Probe step must key on the shared variable ?0 (subject side of
        // either predicate → SO replica).
        assert_eq!(plan.steps[1].order, SortOrder::SO);
        assert_eq!(plan.steps[1].key, Atom::Var(0));
    }

    #[test]
    fn disconnected_rejected() {
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, _) = ids(&s);
        let patterns = [
            Pattern {
                s: Atom::Var(0),
                p: teaches,
                o: Atom::Var(1),
            },
            Pattern {
                s: Atom::Var(2),
                p: works,
                o: Atom::Var(3),
            },
        ];
        assert_eq!(
            optimize(&stats, &patterns, 4, vec![0]).unwrap_err(),
            OptimizeError::Disconnected
        );
    }

    #[test]
    fn empty_rejected() {
        let s = store();
        let stats = Stats::build(&s);
        assert_eq!(
            optimize(&stats, &[], 0, vec![]).unwrap_err(),
            OptimizeError::Empty
        );
    }

    #[test]
    fn constant_only_pattern_is_probeable_even_disconnected() {
        // An existence-check pattern with constants needs no shared var.
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, uni3) = ids(&s);
        let prof = s.dict().resource_id(&Term::iri("prof3")).unwrap();
        let patterns = [
            Pattern {
                s: Atom::Var(0),
                p: teaches,
                o: Atom::Var(1),
            },
            Pattern {
                s: Atom::Const(prof),
                p: works,
                o: Atom::Const(uni3),
            },
        ];
        let plan = optimize(&stats, &patterns, 2, vec![0]).unwrap();
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn greedy_handles_large_bgps() {
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, _) = ids(&s);
        // A 14-pattern chain alternating predicates: ?v0-?v1-?v2-…
        let mut patterns = Vec::new();
        for i in 0..14u16 {
            patterns.push(Pattern {
                s: Atom::Var(i),
                p: if i % 2 == 0 { teaches } else { works },
                o: Atom::Var(i + 1),
            });
        }
        let plan = optimize(&stats, &patterns, 15, vec![0, 14]).unwrap();
        assert_eq!(plan.steps.len(), 14);
    }

    #[test]
    fn self_loop_pattern() {
        let mut b = StoreBuilder::new();
        b.add_term_triple(&Term::iri("n1"), &Term::iri("link"), &Term::iri("n1"));
        b.add_term_triple(&Term::iri("n1"), &Term::iri("link"), &Term::iri("n2"));
        let s = b.build();
        let stats = Stats::build(&s);
        let link = s.dict().predicate_id(&Term::iri("link")).unwrap();
        let patterns = [Pattern {
            s: Atom::Var(0),
            p: link,
            o: Atom::Var(0),
        }];
        let plan = optimize(&stats, &patterns, 1, vec![0]).unwrap();
        assert_eq!(plan.steps.len(), 1);
    }

    #[test]
    fn empty_predicate_partitions_are_planned() {
        // A predicate with a dictionary entry but no triples has zero
        // estimated cardinality; the plan must still be valid (and the
        // executor will produce zero rows).
        let mut b = StoreBuilder::new();
        b.dict_mut().encode_predicate(&Term::iri("ghost"));
        b.add_term_triple(&Term::iri("a"), &Term::iri("real"), &Term::iri("b"));
        let s = b.build();
        let stats = Stats::build(&s);
        let ghost = s.dict().predicate_id(&Term::iri("ghost")).unwrap();
        let real = s.dict().predicate_id(&Term::iri("real")).unwrap();
        let patterns = [
            Pattern { s: Atom::Var(0), p: real, o: Atom::Var(1) },
            Pattern { s: Atom::Var(1), p: ghost, o: Atom::Var(2) },
        ];
        let plan = optimize(&stats, &patterns, 3, vec![0, 1, 2]).unwrap();
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn object_bound_probe_uses_os_replica() {
        // When only the object side of a pattern is bound, the probe
        // must key on the O-S replica.
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, _) = ids(&s);
        // ?a teaches ?x . ?b worksFor ?x — second step can only be keyed
        // on ?x, the object of worksFor? No: worksFor's object is ?x in
        // pattern 2? Construct: ?a teaches ?x (binds ?x as object), then
        // ?b worksFor ?x probes worksFor keyed on its object.
        let patterns = [
            Pattern { s: Atom::Var(0), p: teaches, o: Atom::Var(1) },
            Pattern { s: Atom::Var(2), p: works, o: Atom::Var(1) },
        ];
        let plan = optimize(&stats, &patterns, 3, vec![0, 1, 2]).unwrap();
        let probe = &plan.steps[1];
        assert_eq!(probe.key, Atom::Var(1));
        // Whichever pattern probes second must key on the bound ?1 side.
        match probe.predicate {
            p if p == works => assert_eq!(probe.order, SortOrder::OS),
            p if p == teaches => assert_eq!(probe.order, SortOrder::OS),
            _ => panic!("unexpected predicate"),
        }
    }

    #[test]
    fn chain_query_orders_by_selectivity() {
        // A 3-chain where the middle pattern has a constant: the plan
        // must start from a constant-keyed pattern, not the broad scan.
        let s = store();
        let stats = Stats::build(&s);
        let (teaches, works, uni3) = ids(&s);
        let patterns = [
            Pattern {
                s: Atom::Var(0),
                p: teaches,
                o: Atom::Var(1),
            },
            Pattern {
                s: Atom::Var(0),
                p: works,
                o: Atom::Const(uni3),
            },
            Pattern {
                s: Atom::Var(2),
                p: works,
                o: Atom::Var(3),
            },
        ];
        // ?2/?3 share no variable with the rest, but the constant-keyed
        // worksFor pattern bridges the pipeline: the cross product is
        // executable (each component keyed independently), so this must
        // optimize successfully.
        let plan = optimize(&stats, &patterns, 4, vec![0]).unwrap();
        assert_eq!(plan.steps.len(), 3);
        // Connected version: ?2 replaced by ?1.
        let patterns = [
            patterns[0],
            patterns[1],
            Pattern {
                s: Atom::Var(1),
                p: works,
                o: Atom::Var(3),
            },
        ];
        let plan = optimize(&stats, &patterns, 4, vec![0, 1, 3]).unwrap();
        assert_eq!(plan.steps[0].key, Atom::Const(uni3));
    }
}
